// AVX2 instantiations of the batched chain kernel. This TU is compiled with
// -mavx2 -mfma -ffp-contract=off (see src/CMakeLists.txt): the stride-1 lane
// loops in chain_batch_kernel.hpp vectorize to 4-wide packed-double ymm ops,
// and contraction stays off so no mul+sub fuses into an FMA the scalar path
// would round differently. Only these uniquely named wrappers have external
// linkage; the kernel template itself is internal to this TU.
#include "markov/chain_batch_kernel.hpp"

namespace clrearly::markov {

void batch_kernel_avx2_w4(ChainBatch& batch, bool with_second_moment) {
  kernel_detail::batch_kernel<4>(batch, with_second_moment);
}

// Width-8 batches on AVX2-only hardware: two ymm ops per statement still
// beat the portable baseline, so AVX-512-preferred batches degrade here
// rather than falling all the way back.
void batch_kernel_avx2_w8(ChainBatch& batch, bool with_second_moment) {
  kernel_detail::batch_kernel<8>(batch, with_second_moment);
}

}  // namespace clrearly::markov
