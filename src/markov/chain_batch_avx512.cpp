// AVX-512F instantiation of the batched chain kernel. Compiled with
// -mavx512f -ffp-contract=off (see src/CMakeLists.txt): the 8-lane stride-1
// loops in chain_batch_kernel.hpp vectorize to packed-double zmm ops with
// contraction off, so results stay bit-identical to every other dispatch
// path. Only this uniquely named wrapper has external linkage.
#include "markov/chain_batch_kernel.hpp"

namespace clrearly::markov {

void batch_kernel_avx512_w8(ChainBatch& batch, bool with_second_moment) {
  kernel_detail::batch_kernel<8>(batch, with_second_moment);
}

}  // namespace clrearly::markov
