// Absorbing discrete-time Markov chains.
//
// This is the analytical engine behind the paper's task-level reliability
// models (Section IV, Fig. 3): a task's execution under a cross-layer
// reliability configuration is a chain whose transient states carry residence
// times (useful execution, detection, tolerance, checkpointing) and whose
// absorbing states encode the outcome (End for the timing chain; Error /
// noError for the functional chain).
//
// With Q the transient-to-transient block and R the transient-to-absorbing
// block of the transition matrix, the fundamental matrix N = (I - Q)^{-1}
// gives (Kemeny & Snell):
//   * expected visits to each transient state:      N(start, j)
//   * expected time to absorption:                  (N r)(start), r = residence
//   * absorption probabilities per absorbing state: B = N R
//
// The DSE flows only ever read *row 0* of those quantities (every chain
// starts in its first Exec state), so the construction path factors I - Q
// once and performs a single adjoint solve (I - Q)^T x = e_0 — x is row 0 of
// N, and every row-0 metric is a dot product against it. The full N, B and
// second-moment vectors are computed lazily, on first access, for the tests
// and Monte-Carlo oracles that still want them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/linsolve.hpp"
#include "util/matrix.hpp"

namespace clrearly::markov {

/// How much input checking an AbsorbingChain constructor performs.
///
/// kFull validates every probability entry and every row sum — O(t^2) per
/// construction, the right default for chains assembled from arbitrary
/// input. kTrusted skips those scans (release builds only; debug builds
/// still run them and assert) for callers that construct chains from
/// already-validated parameters, e.g. the CLR chain builder whose
/// ClrChainParams::validate() bounds every probability and whose topology
/// makes rows sum to 1 by construction.
enum class ValidationMode { kFull, kTrusted };

class AbsorbingChain {
 public:
  /// Construct from the transient block Q (t x t), the absorbing block R
  /// (t x a, a >= 1) and per-transient-state residence times (length t,
  /// all >= 0). Under ValidationMode::kFull, validates that all
  /// probabilities lie in [0, 1] and that each row of [Q | R] sums to 1
  /// within `row_sum_tol`; throws std::invalid_argument otherwise. I - Q is
  /// LU-factored eagerly (throws std::domain_error if it is singular, i.e.
  /// the chain has a transient subset that can never reach absorption) and
  /// row-0 metrics are extracted with one adjoint solve; everything else is
  /// computed lazily.
  AbsorbingChain(util::Matrix q, util::Matrix r,
                 std::vector<double> residence_times,
                 double row_sum_tol = 1e-9,
                 ValidationMode validation = ValidationMode::kFull);

  // Copies restart with a fresh (empty) lazy state; moves transfer it.
  // All special members are out of line — Lazy is incomplete here.
  AbsorbingChain(const AbsorbingChain& other);
  AbsorbingChain& operator=(const AbsorbingChain& other);
  AbsorbingChain(AbsorbingChain&&) noexcept;
  AbsorbingChain& operator=(AbsorbingChain&&) noexcept;
  ~AbsorbingChain();

  std::size_t num_transient() const noexcept { return q_.rows(); }
  std::size_t num_absorbing() const noexcept { return r_.cols(); }

  const util::Matrix& q() const noexcept { return q_; }
  const util::Matrix& r() const noexcept { return r_; }
  const std::vector<double>& residence_times() const noexcept {
    return residence_;
  }

  /// Fundamental matrix N = (I - Q)^{-1}. Computed lazily on first call
  /// (t column solves against the stored LU factors); thread-safe.
  const util::Matrix& fundamental() const;

  /// Expected number of visits to each transient state, starting from
  /// transient state `start` (a row of N). Row 0 comes from the eager
  /// adjoint solve; other rows materialize the fundamental matrix.
  std::vector<double> expected_visits(std::size_t start) const;

  /// Expected accumulated residence time until absorption from `start`.
  double expected_time(std::size_t start) const;

  /// Expected time to absorption under an initial distribution over the
  /// transient states (must have length num_transient(); weights may sum to
  /// anything — they are applied as given, matching a sub-stochastic start).
  double expected_time(const std::vector<double>& start_distribution) const;

  /// Expected number of steps (state transitions) until absorption.
  double expected_steps(std::size_t start) const;

  /// B = N R: B(i, k) = probability of ending in absorbing state k when
  /// starting from transient state i. Lazy (a column solves); thread-safe.
  const util::Matrix& absorption_probabilities() const;

  /// Probability of ending in absorbing state `absorbing` from `start`.
  /// Row 0 is served from the eager adjoint solve; other rows materialize
  /// absorption_probabilities().
  double absorption_probability(std::size_t start,
                                std::size_t absorbing) const;

  /// Variance of the number of visits is not needed by the paper's models,
  /// but the variance of time-to-absorption is useful for validating against
  /// Monte-Carlo simulation in tests. We expose the exact second-moment
  /// recursion evaluated from the chain (see chain.cpp for the derivation);
  /// the moment vectors are computed lazily on first call.
  double time_variance(std::size_t start) const;

 private:
  struct Lazy;  // deferred full-matrix/moment state, see chain.cpp

  const std::vector<double>& full_times() const;
  const std::vector<double>& second_moments() const;

  util::Matrix q_;
  util::Matrix r_;
  std::vector<double> residence_;
  util::LuDecomposition lu_;       // factors of I - Q, solve-on-demand
  std::vector<double> row0_;       // row 0 of N, from one adjoint solve
  std::vector<double> b0_;         // row 0 of B = N R
  double t0_ = 0.0;                // expected time to absorption from 0
  double steps0_ = 0.0;            // expected steps to absorption from 0
  std::unique_ptr<Lazy> lazy_;     // never null after construction
};

/// Reusable buffers for the allocation-free chain-analysis kernel. One
/// workspace serves one thread; grab the calling thread's instance with
/// local_chain_workspace(). After the first few evaluations every buffer has
/// reached its high-water size and a cache-miss chain solve performs no heap
/// allocation at all.
struct ChainWorkspace {
  // Chain under analysis — filled by an assembler (see
  // reliability::assemble_timing_chain / assemble_functional_chain).
  util::Matrix q;                 ///< transient block (t x t)
  util::Matrix r;                 ///< absorbing block (t x a)
  std::vector<double> residence;  ///< per-transient residence times

  // Kernel state and outputs.
  util::Matrix a;                 ///< I - Q, the LU factor input
  util::LuDecomposition lu;       ///< refactored in place per solve
  std::vector<double> row0;       ///< row 0 of N (adjoint solve result)
  std::vector<double> b0;         ///< row 0 of B, per absorbing state
  std::vector<double> t;          ///< expected time per state (2nd moment)
  std::vector<double> qt;         ///< Q * t scratch
  std::vector<double> rhs;        ///< right-hand-side scratch
  std::vector<double> scratch;    ///< triangular-solve scratch

  /// Shrink-policy accounting: call before assembling a chain of `t`
  /// transient / `a` absorbing states. A workspace that served a large-t
  /// burst otherwise holds its high-water capacity for the life of the
  /// thread; after kShrinkPatience consecutive uses each needing at most
  /// 1/kShrinkDivisor of the high-water footprint, all buffers are
  /// released and the high-water restarts from the current need. Small
  /// workspaces (< kShrinkMinDoubles) are never churned. Also maintains the
  /// chain.workspace_hwm_doubles gauge.
  void note_configure(std::size_t t, std::size_t a);

  /// Doubles currently held across every buffer (capacity, not size).
  std::size_t footprint_doubles() const noexcept;

  /// Release all buffer capacity (the shrink action).
  void release();

  static constexpr std::size_t kShrinkPatience = 64;
  static constexpr std::size_t kShrinkDivisor = 4;
  static constexpr std::size_t kShrinkMinDoubles = 1 << 14;  // 128 KiB
  std::size_t high_water_doubles = 0;  ///< max footprint need seen
  std::size_t small_streak = 0;        ///< consecutive far-below-HWM uses
};

/// The calling thread's chain workspace (thread_local — each thread-pool
/// worker owns exactly one, so parallel cache-miss evaluations never
/// contend or share buffers).
ChainWorkspace& local_chain_workspace();

/// Row-0 chain metrics from the single-solve kernel.
struct Row0Solve {
  double expected_time = 0.0;    ///< E[time to absorption] from state 0
  double expected_steps = 0.0;   ///< E[steps to absorption] from state 0
  double second_moment = 0.0;    ///< E[T^2] from state 0 (if requested)
};

/// Solve the chain currently assembled in `ws` (q, r, residence) for its
/// row-0 metrics: factor I - Q once, run one adjoint solve
/// (I - Q)^T x = e_0, and reduce x against the residence vector and the
/// columns of R (absorption probabilities land in ws.b0). When
/// `with_second_moment` is set, one additional forward solve yields the
/// full expected-time vector needed for E[T^2]. Throws std::domain_error
/// when I - Q is singular (non-absorbing chain). No allocation once `ws`
/// is warm.
Row0Solve solve_row0(ChainWorkspace& ws, bool with_second_moment);

/// Monte-Carlo roll of an absorbing chain: simulate `trials` walks from
/// transient state `start`, returning (mean time to absorption, per-absorbing
/// state hit frequencies). Used by tests to cross-validate the analytical
/// results; deterministic given the seed.
///
/// A walk that has not absorbed after `max_steps` transitions is *truncated*:
/// it is excluded from every aggregate (mean_time, mean_steps,
/// absorption_frequency) and counted in truncated_trials instead, so a
/// pathological chain skews the report visibly rather than silently. Throws
/// std::runtime_error if every trial truncates.
struct SimulationResult {
  double mean_time = 0.0;
  double mean_steps = 0.0;
  std::vector<double> absorption_frequency;
  std::size_t truncated_trials = 0;  ///< walks that hit max_steps unabsorbed
};
SimulationResult simulate(const AbsorbingChain& chain, std::size_t start,
                          std::size_t trials, std::uint64_t seed,
                          std::size_t max_steps = 10'000'000);

}  // namespace clrearly::markov
