// Absorbing discrete-time Markov chains.
//
// This is the analytical engine behind the paper's task-level reliability
// models (Section IV, Fig. 3): a task's execution under a cross-layer
// reliability configuration is a chain whose transient states carry residence
// times (useful execution, detection, tolerance, checkpointing) and whose
// absorbing states encode the outcome (End for the timing chain; Error /
// noError for the functional chain).
//
// With Q the transient-to-transient block and R the transient-to-absorbing
// block of the transition matrix, the fundamental matrix N = (I - Q)^{-1}
// gives (Kemeny & Snell):
//   * expected visits to each transient state:      N(start, j)
//   * expected time to absorption:                  (N r)(start), r = residence
//   * absorption probabilities per absorbing state: B = N R
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace clrearly::markov {

class AbsorbingChain {
 public:
  /// Construct from the transient block Q (t x t), the absorbing block R
  /// (t x a, a >= 1) and per-transient-state residence times (length t,
  /// all >= 0). Validates that all probabilities lie in [0, 1] and that each
  /// row of [Q | R] sums to 1 within `row_sum_tol`; throws
  /// std::invalid_argument otherwise. The fundamental matrix is computed
  /// eagerly (throws std::domain_error if I - Q is singular, i.e. the chain
  /// has a transient subset that can never reach absorption).
  AbsorbingChain(util::Matrix q, util::Matrix r,
                 std::vector<double> residence_times,
                 double row_sum_tol = 1e-9);

  std::size_t num_transient() const noexcept { return q_.rows(); }
  std::size_t num_absorbing() const noexcept { return r_.cols(); }

  const util::Matrix& q() const noexcept { return q_; }
  const util::Matrix& r() const noexcept { return r_; }
  const std::vector<double>& residence_times() const noexcept {
    return residence_;
  }

  /// Fundamental matrix N = (I - Q)^{-1}.
  const util::Matrix& fundamental() const noexcept { return n_; }

  /// Expected number of visits to each transient state, starting from
  /// transient state `start` (a row of N).
  std::vector<double> expected_visits(std::size_t start) const;

  /// Expected accumulated residence time until absorption from `start`.
  double expected_time(std::size_t start) const;

  /// Expected time to absorption under an initial distribution over the
  /// transient states (must have length num_transient(); weights may sum to
  /// anything — they are applied as given, matching a sub-stochastic start).
  double expected_time(const std::vector<double>& start_distribution) const;

  /// Expected number of steps (state transitions) until absorption.
  double expected_steps(std::size_t start) const;

  /// B = N R: B(i, k) = probability of ending in absorbing state k when
  /// starting from transient state i.
  const util::Matrix& absorption_probabilities() const noexcept { return b_; }

  /// Convenience accessor into absorption_probabilities().
  double absorption_probability(std::size_t start,
                                std::size_t absorbing) const;

  /// Variance of the number of visits is not needed by the paper's models,
  /// but the variance of time-to-absorption is useful for validating against
  /// Monte-Carlo simulation in tests:
  ///   Var[T] = (2N - I) t_hat - t .* t   with t = N r, t_hat = N (r .* t)...
  /// We expose instead the exact second-moment recursion evaluated from the
  /// chain (see chain.cpp for the derivation).
  double time_variance(std::size_t start) const;

 private:
  util::Matrix q_;
  util::Matrix r_;
  std::vector<double> residence_;
  util::Matrix n_;                 // fundamental matrix
  util::Matrix b_;                 // absorption probabilities
  std::vector<double> t_;          // expected time-to-absorption per state
  std::vector<double> second_moment_;  // E[T^2] per start state
};

/// Monte-Carlo roll of an absorbing chain: simulate `trials` walks from
/// transient state `start`, returning (mean time to absorption, per-absorbing
/// state hit frequencies). Used by tests to cross-validate the analytical
/// results; deterministic given the seed.
struct SimulationResult {
  double mean_time = 0.0;
  double mean_steps = 0.0;
  std::vector<double> absorption_frequency;
};
SimulationResult simulate(const AbsorbingChain& chain, std::size_t start,
                          std::size_t trials, std::uint64_t seed);

}  // namespace clrearly::markov
