// Incremental, name-based construction of absorbing chains.
//
// The CLR chain topologies in the paper (Fig. 3) are assembled state-by-state
// per inter-checkpoint interval; juggling raw matrix indices there would be
// error-prone. ChainBuilder lets callers declare named states and
// probability-weighted edges, then validates and freezes the chain.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "markov/chain.hpp"

namespace clrearly::markov {

/// Opaque handle to a state registered with a ChainBuilder.
struct StateId {
  std::size_t index = 0;
  bool absorbing = false;

  bool operator==(const StateId&) const noexcept = default;
};

class ChainBuilder {
 public:
  /// Register a transient state with a residence time (>= 0). Names must be
  /// unique across transient and absorbing states; throws on duplicates.
  StateId transient(std::string name, double residence_time);

  /// Register an absorbing state.
  StateId absorbing(std::string name);

  /// Add a transition edge with probability p in [0, 1]. Parallel edges to
  /// the same target accumulate. Source must be transient.
  void edge(StateId from, StateId to, double probability);

  /// Probability mass still unassigned on `from`'s row (1 - sum of edges).
  /// Useful for "the rest goes to X" constructions.
  double remaining(StateId from) const;

  /// Shorthand: route all remaining mass of `from` to `to`. No-op if the row
  /// is already complete (within tolerance).
  void edge_remaining(StateId from, StateId to);

  std::size_t num_transient() const noexcept { return residence_.size(); }
  std::size_t num_absorbing() const noexcept { return absorbing_names_.size(); }

  /// Look up a previously registered state by name; throws if unknown.
  StateId lookup(const std::string& name) const;

  /// Validate and construct the chain. Throws std::invalid_argument if any
  /// transient row does not sum to 1 within `row_sum_tol` or the chain is not
  /// absorbing from every transient state. `validation` is forwarded to the
  /// AbsorbingChain constructor; pass ValidationMode::kTrusted only when the
  /// edges were derived from already-validated probabilities.
  AbsorbingChain build(double row_sum_tol = 1e-9,
                       ValidationMode validation = ValidationMode::kFull) const;

 private:
  struct Edge {
    StateId to;
    double probability;
  };

  std::vector<std::string> transient_names_;
  std::vector<double> residence_;
  std::vector<std::vector<Edge>> edges_;  // indexed by transient state
  std::vector<std::string> absorbing_names_;
  std::unordered_map<std::string, StateId> by_name_;
};

}  // namespace clrearly::markov
