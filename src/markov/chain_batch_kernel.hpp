// Width-templated batched row-0 chain kernel — the SIMD body behind
// markov::solve_row0_batch.
//
// THIS FILE IS INCLUDED INTO MULTIPLE TRANSLATION UNITS compiled with
// different -m flags (portable / -mavx2 / -mavx512f). Everything here is
// `static` (internal linkage) so each TU keeps its own copy and the linker
// can never merge a portable instantiation into an AVX one. All those TUs
// build with -ffp-contract=off, so no variant fuses a multiply-subtract the
// others round separately.
//
// Bit-identity contract: for every lane l, the sequence of floating-point
// operations applied to chain l is *exactly* the sequence the scalar path
// applies — assemble_i_minus_q + LuDecomposition::factorize +
// solve_transposed_into + the dot/sum/absorption reductions of
// markov::solve_row0, and (for the second moment) solve_into +
// Matrix::apply_into + second_moment_rhs. The scalar code's data-dependent
// branches (`if (factor == 0.0) continue`, the `x == 0.0` skip in
// row0_absorption) are reproduced as per-lane selects, which are
// bit-equivalent to the skips (including the -0.0 edge cases the skips
// protect) and keep the lane loops branch-free for the vectorizer. Loop
// order, pivot tie-breaking (`>` keeps the first maximum) and the
// singularity tolerance are copied from util/linsolve.cpp verbatim.
//
// A lane whose I - Q is numerically singular is flagged and its arithmetic
// keeps running on garbage (IEEE non-trapping inf/NaN) — elementwise ops
// never leak across lanes, so batch-mates are unaffected. The caller zeroes
// flagged lanes' outputs.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "markov/chain_batch.hpp"
#include "util/linsolve.hpp"

namespace clrearly::markov {
namespace kernel_detail {

template <std::size_t W>
static void batch_kernel(ChainBatch& ws, bool with_second_moment) {
  const std::size_t t = ws.t;
  const std::size_t a = ws.a;
  double* __restrict lu = ws.lu.data();
  const double* __restrict q = ws.q.data();
  const double* __restrict r = ws.r.data();
  const double* __restrict res = ws.residence.data();
  double* __restrict row0 = ws.row0.data();
  double* __restrict b0 = ws.b0.data();
  double* __restrict tv = ws.tvec.data();
  double* __restrict qt = ws.qt.data();
  double* __restrict rhs = ws.rhs.data();
  double* __restrict scr = ws.scratch.data();
  std::size_t* __restrict perm = ws.perm.data();

  // ---- I - Q over the LU buffer (assemble_i_minus_q), fused with the
  // max-|entry| scan of factorize's tolerance. The scalar code runs them as
  // two passes in the same flat order, so folding the max into the assembly
  // loop applies the identical op sequence per lane while touching the
  // 2 t^2 W doubles once instead of twice.
  //
  // The same pass builds a per-column bitmask of possibly-nonzero rows
  // (bit i of col_mask[j] <=> cell (i, j) is nonzero in SOME lane). These
  // chains couple only neighboring checkpoint intervals, so each column has
  // a handful of nonzero rows out of t; the factorization below walks set
  // bits instead of scanning all t rows per step. A clear bit guarantees
  // the cell is +0.0 in every lane — bits are only ever set, never cleared,
  // and fill-in unions the masks — so skipping a clear row is exact
  // whenever the scalar op on it would be a no-op store of +0.0.
  const bool use_masks = (t <= 64);
  std::uint64_t col_mask[64];  ///< bit i of [j]: cell (i, j) maybe non-(+-0)
  std::uint64_t row_mask[64];  ///< bit j of [i]: cell (i, j) maybe non-(+-0)
  double tol[W];
  {
    if (use_masks) {
      for (std::size_t j = 0; j < t; ++j) col_mask[j] = 0;
      for (std::size_t i = 0; i < t; ++i) row_mask[i] = 0;
    }
    double max_entry[W];
    for (std::size_t l = 0; l < W; ++l) max_entry[l] = 0.0;
    if (ws.q_zero_outside_pattern && ws.q_pattern_t == t) {
      // q is +0.0 off the recorded assembly pattern, so I - Q is 1.0 on the
      // unlisted diagonal and +0.0 on every unlisted off-diagonal cell:
      // memset + diagonal + pattern walk writes the bit-identical matrix
      // while touching ~12 cells per row instead of t. Unlisted diagonals
      // contribute exactly 1.0 to the max-|entry| scan, which the tolerance
      // clamp below already supplies, so tol is unchanged too.
      for (std::size_t e = 0; e < t * t * W; ++e) lu[e] = 0.0;
      for (std::size_t i = 0; i < t; ++i) {
        const std::size_t ii = (i * t + i) * W;
        for (std::size_t l = 0; l < W; ++l) lu[ii + l] = 1.0;
        if (use_masks) {
          col_mask[i] |= std::uint64_t{1} << i;
          row_mask[i] |= std::uint64_t{1} << i;
        }
      }
      for (const std::uint32_t cell : ws.q_pattern) {
        const std::size_t i = cell / t;
        const std::size_t j = cell % t;
        const double diag = (i == j) ? 1.0 : 0.0;
        const std::size_t ij = static_cast<std::size_t>(cell) * W;
        bool nz = false;
        for (std::size_t l = 0; l < W; ++l) {
          const double v = diag - q[ij + l];
          lu[ij + l] = v;
          max_entry[l] = std::max(max_entry[l], std::abs(v));
          nz |= (v != 0.0);
        }
        if (use_masks) {
          col_mask[j] |= static_cast<std::uint64_t>(nz) << i;
          row_mask[i] |= static_cast<std::uint64_t>(nz) << j;
        }
      }
    } else {
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = 0; j < t; ++j) {
          const double diag = (i == j) ? 1.0 : 0.0;
          const std::size_t ij = (i * t + j) * W;
          bool nz = false;
          for (std::size_t l = 0; l < W; ++l) {
            const double v = diag - q[ij + l];
            lu[ij + l] = v;
            max_entry[l] = std::max(max_entry[l], std::abs(v));
            nz |= (v != 0.0);
          }
          if (use_masks) {
            col_mask[j] |= static_cast<std::uint64_t>(nz) << i;
            row_mask[i] |= static_cast<std::uint64_t>(nz) << j;
          }
        }
      }
    }
    for (std::size_t l = 0; l < W; ++l) {
      tol[l] = util::kLuSingularTol * std::max(max_entry[l], 1.0);
    }
  }

  // Snapshot of the assembly-time row masks for the qt = Q t apply below:
  // off the diagonal, a cell of Q is nonzero exactly where I - Q is, and the
  // diagonal bit is forced on because q_ii = 1 makes I - Q zero there while
  // Q itself is not. The factorization mutates row_mask in place (fill-in,
  // swaps), so the apply needs this pre-elimination copy.
  std::uint64_t q_row_mask[64];
  if (use_masks) {
    for (std::size_t i = 0; i < t; ++i) {
      q_row_mask[i] = row_mask[i] | (std::uint64_t{1} << i);
    }
  }

  // ---- LU factorization (LuDecomposition::factorize).
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t l = 0; l < W; ++l) perm[i * W + l] = i;
  }

  for (std::size_t k = 0; k < t; ++k) {
    std::size_t pivot_row[W];
    double pivot_mag[W];
    const std::size_t kk = (k * t + k) * W;
    for (std::size_t l = 0; l < W; ++l) {
      pivot_row[l] = k;
      pivot_mag[l] = std::abs(lu[kk + l]);
    }
    // Rows below the diagonal that can hold a nonzero in column k. A clear
    // bit is +0.0 in every lane: |+0| beats nothing under the strict `>` of
    // the pivot search, and its scalar elimination step stores
    // +0/pivot — a no-op whenever the pivot is non-negative. So the pivot
    // scan always walks set bits only, and the elimination below does too
    // unless a lane's pivot has its sign bit set (then the no-op argument
    // breaks and that step falls back to the full scan).
    const std::uint64_t below =
        (use_masks && k + 1 < 64) ? col_mask[k] >> (k + 1) : 0;
    const auto pivot_probe = [&](std::size_t i) {
      const std::size_t ik = (i * t + k) * W;
      // Branchless form of the scalar `if (mag > pivot_mag)` update so the
      // lane loop turns into compare + two blends instead of W branches.
      for (std::size_t l = 0; l < W; ++l) {
        const double mag = std::abs(lu[ik + l]);
        const bool gt = mag > pivot_mag[l];
        pivot_mag[l] = gt ? mag : pivot_mag[l];
        pivot_row[l] = gt ? i : pivot_row[l];
      }
    };
    if (use_masks) {
      for (std::uint64_t m = below; m != 0; m &= m - 1) {
        pivot_probe(k + 1 + static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t i = k + 1; i < t; ++i) pivot_probe(i);
    }
    for (std::size_t l = 0; l < W; ++l) {
      // Where the scalar path throws std::domain_error, a lane is flagged
      // and keeps computing garbage that never crosses lanes.
      if (pivot_mag[l] <= tol[l]) ws.singular[l] = 1;
    }
    // Per-lane row swaps — scalar bookkeeping, O(W t) against the vector
    // elimination below. A swap exchanges rows k and pr in every column, so
    // the column masks union the two rows' bits (union, not swap: lanes can
    // pick different pivot rows, and a superset bit is always safe).
    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t pr = pivot_row[l];
      if (pr != k) {
        for (std::size_t j = 0; j < t; ++j) {
          std::swap(lu[(k * t + j) * W + l], lu[(pr * t + j) * W + l]);
        }
        std::swap(perm[k * W + l], perm[pr * W + l]);
        if (use_masks) {
          for (std::size_t j = 0; j < t; ++j) {
            const std::uint64_t m = col_mask[j];
            const std::uint64_t both = ((m >> k) | (m >> pr)) & 1u;
            col_mask[j] = m | (both << k) | (both << pr);
          }
          // The two rows exchanged contents in this lane only; the shared
          // row masks take the union (superset — always safe).
          const std::uint64_t u = row_mask[k] | row_mask[pr];
          row_mask[k] = u;
          row_mask[pr] = u;
        }
      }
    }
    bool fast = use_masks;
    for (std::size_t l = 0; l < W; ++l) {
      fast &= !std::signbit(lu[kk + l]);
    }
    const auto eliminate_row = [&](std::size_t i) {
      const std::size_t ik = (i * t + k) * W;
      bool all_zero = true;
      for (std::size_t l = 0; l < W; ++l) all_zero &= (lu[ik + l] == 0.0);
      if (all_zero) {
        // Every lane's multiplier is (+-0)/pivot — a signed zero, sign of
        // the numerator XOR sign of the pivot, with no divider involved.
        // Stored only when some lane's bit pattern actually changes, which
        // keeps untouched cache lines clean.
        bool flip = false;
        for (std::size_t l = 0; l < W; ++l) {
          flip |= (std::signbit(lu[ik + l]) != std::signbit(lu[kk + l]));
        }
        if (flip) {
          for (std::size_t l = 0; l < W; ++l) {
            const bool neg =
                std::signbit(lu[ik + l]) != std::signbit(lu[kk + l]);
            lu[ik + l] = neg ? -0.0 : 0.0;  // bit-identical to the division
          }
        }
        return;
      }
      double factor[W];
      bool any_nonzero = false;
      for (std::size_t l = 0; l < W; ++l) {
        factor[l] = lu[ik + l] / lu[kk + l];
        lu[ik + l] = factor[l];  // store L's multiplier in place
        any_nonzero |= (factor[l] != 0.0);
      }
      // When every lane's multiplier is zero, every lane's scalar path takes
      // its `if (factor == 0.0) continue;` — the whole row is untouched in
      // all lanes, so skip it.
      if (!any_nonzero) return;
      if (use_masks) {
        // Fill-in: row i inherits row k's upper pattern (and its factor at
        // column k, covered by row k's own diagonal bit).
        for (std::size_t j = k + 1; j < t; ++j) {
          col_mask[j] |= ((col_mask[j] >> k) & 1u) << i;
        }
        row_mask[i] |= row_mask[k];
      }
      for (std::size_t j = k + 1; j < t; ++j) {
        const std::size_t ij = (i * t + j) * W;
        const std::size_t kj = (k * t + j) * W;
        // Select replicates the scalar `if (factor == 0.0) continue;`.
        for (std::size_t l = 0; l < W; ++l) {
          const double upd = lu[ij + l] - factor[l] * lu[kj + l];
          lu[ij + l] = (factor[l] == 0.0) ? lu[ij + l] : upd;
        }
      }
    };
    if (fast) {
      // Re-read the mask: a swap unions bits into column k (the old diagonal
      // lands on row pr), so the pre-swap `below` would miss that row.
      const std::uint64_t below_after =
          (k + 1 < 64) ? col_mask[k] >> (k + 1) : 0;
      for (std::uint64_t m = below_after; m != 0; m &= m - 1) {
        eliminate_row(k + 1 + static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t i = k + 1; i < t; ++i) eliminate_row(i);
    }
  }

  // ---- Adjoint solve (I - Q)^T x = e_0 (solve_transposed_into with the
  // rhs the scalar kernel builds: 1.0 at index 0, zeros elsewhere).
  //
  // The forward pass is written right-looking: once scr[j] is final, its
  // contribution is pushed into every later element by walking row j of the
  // LU buffer contiguously, instead of each element pulling its terms down
  // a strided column. Element i still accumulates the same terms in the
  // same ascending-j order as the scalar left-looking loop, so the sums are
  // bit-identical — only the memory walk changes.
  // Masked-skip exactness for the triangular solves: a clear mask bit means
  // the cell is +-0.0 in every lane (assembly sets bits by value; the
  // elimination's zero paths only ever store signed zeros into clear-bit
  // cells), so a skipped term is (+-0) * finite = +-0. Subtracting +-0 from
  // an accumulator changes nothing unless the accumulator is exactly -0.0
  // (-0 - -0 = +0). Accumulators that start at a non-negative value and
  // evolve by subtraction can never reach -0.0 (round-to-nearest gives +0
  // on exact cancellation), so those walks skip unconditionally. The
  // adjoint backward accumulator starts at a *divided* value, which can be
  // -0.0 if some pivot is negative — that pass checks every diagonal's sign
  // bit first and falls back to the dense walk in that (never-in-practice)
  // case. Singular lanes can diverge under a skip (scalar would propagate
  // inf/NaN through the skipped product); their outputs are zeroed anyway.
  bool diag_nonneg = use_masks;
  for (std::size_t i = 0; i < t && diag_nonneg; ++i) {
    const std::size_t ii = (i * t + i) * W;
    for (std::size_t l = 0; l < W; ++l) {
      diag_nonneg &= !std::signbit(lu[ii + l]);
    }
  }

  for (std::size_t i = 0; i < t; ++i) {
    const double bi = (i == 0) ? 1.0 : 0.0;
    for (std::size_t l = 0; l < W; ++l) scr[i * W + l] = bi;
  }
  for (std::size_t j = 0; j < t; ++j) {
    const std::size_t jj = (j * t + j) * W;
    for (std::size_t l = 0; l < W; ++l) {
      scr[j * W + l] = scr[j * W + l] / lu[jj + l];
    }
    const auto push = [&](std::size_t i) {
      const std::size_t ji = (j * t + i) * W;
      for (std::size_t l = 0; l < W; ++l) {
        scr[i * W + l] -= lu[ji + l] * scr[j * W + l];
      }
    };
    // Each push targets a distinct accumulator, so walking only the set
    // bits preserves every element's term order.
    if (use_masks) {
      const std::uint64_t upper = (j + 1 < 64) ? row_mask[j] >> (j + 1) : 0;
      for (std::uint64_t m = upper; m != 0; m &= m - 1) {
        push(j + 1 + static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t i = j + 1; i < t; ++i) push(i);
    }
  }
  // The backward pass must keep its descending-i, ascending-j order (a
  // right-looking form would reverse each element's summation order and
  // change the rounding). The set-bit walk is ascending-j, so it keeps that
  // order while skipping the strided +-0 loads that dominate this pass.
  for (std::size_t i2 = t; i2-- > 0;) {
    double acc[W];
    for (std::size_t l = 0; l < W; ++l) acc[l] = scr[i2 * W + l];
    const auto pull = [&](std::size_t j) {
      const std::size_t ji = (j * t + i2) * W;
      for (std::size_t l = 0; l < W; ++l) {
        acc[l] -= lu[ji + l] * scr[j * W + l];
      }
    };
    if (diag_nonneg) {
      const std::uint64_t below =
          (i2 + 1 < 64) ? col_mask[i2] >> (i2 + 1) : 0;
      for (std::uint64_t m = below; m != 0; m &= m - 1) {
        pull(i2 + 1 + static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t j = i2 + 1; j < t; ++j) pull(j);
    }
    for (std::size_t l = 0; l < W; ++l) scr[i2 * W + l] = acc[l];
  }
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t l = 0; l < W; ++l) {
      row0[perm[i * W + l] * W + l] = scr[i * W + l];
    }
  }

  // ---- Row-0 reductions, one loop per scalar reduction (dot, sum,
  // row0_absorption) so each per-lane accumulator sees the scalar order.
  double acc[W];
  for (std::size_t l = 0; l < W; ++l) acc[l] = 0.0;
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t l = 0; l < W; ++l) {
      acc[l] += row0[i * W + l] * res[i * W + l];
    }
  }
  for (std::size_t l = 0; l < W; ++l) ws.expected_time[l] = acc[l];

  for (std::size_t l = 0; l < W; ++l) acc[l] = 0.0;
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t l = 0; l < W; ++l) acc[l] += row0[i * W + l];
  }
  for (std::size_t l = 0; l < W; ++l) ws.expected_steps[l] = acc[l];

  for (std::size_t e = 0; e < a * W; ++e) b0[e] = 0.0;
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t k = 0; k < a; ++k) {
      const std::size_t rik = (i * a + k) * W;
      const std::size_t bk = k * W;
      // Select replicates row0_absorption's `if (x == 0.0) continue;`.
      for (std::size_t l = 0; l < W; ++l) {
        const double x = row0[i * W + l];
        const double upd = b0[bk + l] + x * r[rik + l];
        b0[bk + l] = (x == 0.0) ? b0[bk + l] : upd;
      }
    }
  }

  if (!with_second_moment) return;

  // ---- E[T^2]: forward/backward solve of (I - Q) t = residence
  // (solve_into), qt = Q t (apply_into), the second-moment rhs, and the
  // row-0 dot — each mirroring its scalar counterpart.
  // Both accumulators start from non-negative values (a residence time, a
  // forward-substitution result seeded from one) and evolve by subtraction,
  // so the masked set-bit walks skip only exact +-0 terms — see the
  // exactness note above the adjoint solve. Ascending-j bit order matches
  // the scalar term order.
  for (std::size_t i = 0; i < t; ++i) {
    double facc[W];
    for (std::size_t l = 0; l < W; ++l) {
      facc[l] = res[perm[i * W + l] * W + l];
    }
    const auto fpull = [&](std::size_t j) {
      const std::size_t ij = (i * t + j) * W;
      for (std::size_t l = 0; l < W; ++l) {
        facc[l] -= lu[ij + l] * tv[j * W + l];
      }
    };
    if (use_masks) {
      const std::uint64_t lower =
          row_mask[i] & ((std::uint64_t{1} << i) - 1);
      for (std::uint64_t m = lower; m != 0; m &= m - 1) {
        fpull(static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t j = 0; j < i; ++j) fpull(j);
    }
    for (std::size_t l = 0; l < W; ++l) tv[i * W + l] = facc[l];
  }
  for (std::size_t i2 = t; i2-- > 0;) {
    double bacc[W];
    for (std::size_t l = 0; l < W; ++l) bacc[l] = tv[i2 * W + l];
    const auto bpull = [&](std::size_t j) {
      const std::size_t ij = (i2 * t + j) * W;
      for (std::size_t l = 0; l < W; ++l) {
        bacc[l] -= lu[ij + l] * tv[j * W + l];
      }
    };
    if (use_masks) {
      const std::uint64_t upper =
          (i2 + 1 < 64) ? row_mask[i2] >> (i2 + 1) : 0;
      for (std::uint64_t m = upper; m != 0; m &= m - 1) {
        bpull(i2 + 1 + static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t j = i2 + 1; j < t; ++j) bpull(j);
    }
    const std::size_t ii = (i2 * t + i2) * W;
    for (std::size_t l = 0; l < W; ++l) {
      tv[i2 * W + l] = bacc[l] / lu[ii + l];
    }
  }

  // qt = Q t: cells off the pre-elimination pattern are exactly +0.0 in
  // every lane, and an accumulator growing from +0 by addition can never be
  // -0.0, so adding their (+-0) products is a no-op the scalar loop also
  // performs — skipping them is exact.
  for (std::size_t i = 0; i < t; ++i) {
    double qacc[W];
    for (std::size_t l = 0; l < W; ++l) qacc[l] = 0.0;
    const auto qpull = [&](std::size_t j) {
      const std::size_t ij = (i * t + j) * W;
      for (std::size_t l = 0; l < W; ++l) {
        qacc[l] += q[ij + l] * tv[j * W + l];
      }
    };
    if (use_masks) {
      for (std::uint64_t m = q_row_mask[i]; m != 0; m &= m - 1) {
        qpull(static_cast<std::size_t>(__builtin_ctzll(m)));
      }
    } else {
      for (std::size_t j = 0; j < t; ++j) qpull(j);
    }
    for (std::size_t l = 0; l < W; ++l) qt[i * W + l] = qacc[l];
  }

  for (std::size_t i = 0; i < t; ++i) {
    const std::size_t iw = i * W;
    for (std::size_t l = 0; l < W; ++l) {
      rhs[iw + l] =
          res[iw + l] * res[iw + l] + 2.0 * res[iw + l] * qt[iw + l];
    }
  }

  for (std::size_t l = 0; l < W; ++l) acc[l] = 0.0;
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t l = 0; l < W; ++l) {
      acc[l] += row0[i * W + l] * rhs[i * W + l];
    }
  }
  for (std::size_t l = 0; l < W; ++l) ws.second_moment[l] = acc[l];
}

}  // namespace kernel_detail
}  // namespace clrearly::markov
