// Batched structure-of-arrays chain workspace and the vectorized row-0
// kernel that runs on it.
//
// One ChainBatch holds W ("lane width") same-size absorbing chains packed
// lane-major: element (i, j) of chain l lives at (i*t + j)*W + l, so the W
// copies of every matrix entry are contiguous. The batched kernel
// (solve_row0_batch) then performs *exactly* the scalar solve_row0 operation
// sequence — assemble I - Q, partially pivoted LU, one adjoint solve, dot
// reductions, and optionally the second-moment forward/backward solves — with
// each scalar operation widened to W lanes. Because the per-lane arithmetic
// (operation order, pivot selection, tie-breaking, the skip-on-zero branches)
// mirrors util::LuDecomposition and markov::solve_row0 instruction for
// instruction, every lane's results are bit-identical to a scalar solve of
// the same chain — at every lane width and on every dispatch path (pinned by
// chain_batch_test and the bench_chain_kernel divergence gate).
//
// Dispatch: the kernel body is a width-templated header
// (chain_batch_kernel.hpp) instantiated in three translation units — a
// portable one (widths 1/4/8, baseline ISA) and two compiled with -mavx2 /
// -mavx512f — selected at runtime from util::active_simd_level(). The lane
// loops are stride-1 over the W contiguous copies, which the vectorizer
// turns into 4-wide (AVX2) or 8-wide (AVX-512) packed-double instructions;
// all kernel TUs build with -ffp-contract=off so no path fuses a multiply
// and subtract the others would round separately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/cpu_features.hpp"

namespace clrearly::markov {

/// Structure-of-arrays workspace for W same-size chains. All buffers are
/// lane-major (lane index innermost); configure() reshapes and zeroes the
/// assembly buffers (q, r, residence) while reusing capacity, so a warm
/// batch solve performs no heap allocation.
struct ChainBatch {
  std::size_t t = 0;      ///< transient states per chain
  std::size_t a = 0;      ///< absorbing states per chain
  std::size_t width = 0;  ///< lanes W

  // Chain under analysis — filled by the batched assembler
  // (reliability::assemble_clr_chain_batch).
  std::vector<double> q;          ///< t*t*W, (i*t + j)*W + l
  std::vector<double> r;          ///< t*a*W, (i*a + k)*W + l
  std::vector<double> residence;  ///< t*W,   i*W + l

  // Kernel state and outputs.
  std::vector<double> lu;            ///< I - Q, LU-factored in place (t*t*W)
  std::vector<std::size_t> perm;     ///< per-lane row permutation (t*W)
  std::vector<double> row0;          ///< row 0 of N per lane (t*W)
  std::vector<double> b0;            ///< row 0 of B per lane (a*W, k*W + l)
  std::vector<double> tvec;          ///< expected time per state (t*W)
  std::vector<double> qt;            ///< Q * tvec scratch (t*W)
  std::vector<double> rhs;           ///< right-hand-side scratch (t*W)
  std::vector<double> scratch;       ///< triangular-solve scratch (t*W)
  std::vector<double> expected_time;   ///< per-lane E[time] (W)
  std::vector<double> expected_steps;  ///< per-lane E[steps] (W)
  std::vector<double> second_moment;   ///< per-lane E[T^2] (W, if requested)
  std::vector<std::uint8_t> singular;  ///< per-lane I - Q singularity flag

  // Sparse assembly pattern. The CLR chain topology touches only ~12 of the
  // t cells per Q row, so an assembler that writes the same cell set every
  // time can record it once (cell index i*t + j, lane-invariant) and let
  // configure() re-zero just those cells instead of streaming the whole
  // t*t*W buffer. While `q_zero_outside_pattern` holds, the kernel likewise
  // builds I - Q by memset + diagonal + pattern walk instead of a dense
  // pass — bit-identical, because every unlisted off-diagonal cell is
  // exactly +0.0 in every lane and the singularity tolerance already clamps
  // at 1.0 (the value of every unlisted diagonal).
  //
  // Protocol: configure() clears `q_zero_outside_pattern` (an arbitrary
  // caller may write anywhere); an assembler that wrote only pattern cells
  // re-asserts it, and records the pattern first when `q_pattern_t != t`.
  std::vector<std::uint32_t> q_pattern;  ///< cells of q written by assembly
  std::size_t q_pattern_t = 0;           ///< t the pattern describes (0=none)
  bool q_zero_outside_pattern = false;   ///< q holds +0.0 off the pattern

  /// Reshape for W chains of t transient / a absorbing states: zeroes the
  /// assembly buffers (q, r, residence), sizes the kernel buffers, clears
  /// the singular flags. Reuses capacity — allocation-free once warm.
  /// Also feeds the bounded shrink policy (see below).
  void configure(std::size_t t, std::size_t a, std::size_t width);

  /// Doubles currently held across every buffer (capacity, not size) — the
  /// quantity the high-water gauge and the shrink test observe.
  std::size_t footprint_doubles() const noexcept;

  /// Release all buffer capacity (the shrink action). Results are
  /// unaffected; the next configure() simply reallocates.
  void release();

  // Bounded shrink policy: a workspace that served a large-t burst holds
  // its high-water capacity forever unless told otherwise. After
  // kShrinkPatience consecutive configure() calls each needing at most
  // 1/kShrinkDivisor of the high-water footprint, release() runs and the
  // high-water restarts from the current need. Small workspaces
  // (< kShrinkMinDoubles) never churn.
  static constexpr std::size_t kShrinkPatience = 64;
  static constexpr std::size_t kShrinkDivisor = 4;
  static constexpr std::size_t kShrinkMinDoubles = 1 << 14;  // 128 KiB
  std::size_t high_water_doubles = 0;  ///< max footprint need seen
  std::size_t small_streak = 0;        ///< consecutive far-below-HWM configs
};

/// The calling thread's batch workspace (thread_local — parallel sweeps
/// batch independently without contention, mirroring local_chain_workspace).
ChainBatch& local_chain_batch();

/// Lane width the active dispatch level prefers: 8 under AVX-512 and AVX2
/// (two 4-wide ops per step amortize the per-batch bookkeeping better than
/// one), 4 for the portable fallback (SSE2 auto-vectorizes 2-wide and the
/// SoA layout still amortizes loop overhead).
std::size_t preferred_batch_width(util::SimdLevel level) noexcept;
std::size_t preferred_batch_width() noexcept;

/// Solve all W chains assembled in `batch` for their row-0 metrics, exactly
/// as W calls to markov::solve_row0 would: per-lane results land in
/// expected_time / expected_steps / b0 (and second_moment when requested).
/// A lane whose I - Q is singular gets its `singular` flag set and
/// value-initialized outputs instead of throwing — one bad chain must not
/// poison its batch-mates; the caller decides whether that is an error.
/// Dispatches to the widest kernel the runtime level supports for
/// batch.width; any width runs everywhere (portable instantiations cover
/// 1/4/8, other widths fall back to a per-lane scalar loop).
void solve_row0_batch(ChainBatch& batch, bool with_second_moment);

}  // namespace clrearly::markov
