#include "markov/chain_builder.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace clrearly::markov {

StateId ChainBuilder::transient(std::string name, double residence_time) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("ChainBuilder: duplicate state name " + name);
  }
  if (residence_time < 0.0 || std::isnan(residence_time)) {
    throw std::invalid_argument("ChainBuilder: negative residence time for " +
                                name);
  }
  const StateId id{transient_names_.size(), /*absorbing=*/false};
  transient_names_.push_back(name);
  residence_.push_back(residence_time);
  edges_.emplace_back();
  by_name_.emplace(std::move(name), id);
  return id;
}

StateId ChainBuilder::absorbing(std::string name) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("ChainBuilder: duplicate state name " + name);
  }
  const StateId id{absorbing_names_.size(), /*absorbing=*/true};
  absorbing_names_.push_back(name);
  by_name_.emplace(std::move(name), id);
  return id;
}

void ChainBuilder::edge(StateId from, StateId to, double probability) {
  if (from.absorbing) {
    throw std::invalid_argument("ChainBuilder: edges must start at a transient state");
  }
  if (from.index >= edges_.size()) {
    throw std::out_of_range("ChainBuilder: unknown source state");
  }
  const std::size_t target_count = to.absorbing ? absorbing_names_.size()
                                                : transient_names_.size();
  if (to.index >= target_count) {
    throw std::out_of_range("ChainBuilder: unknown target state");
  }
  if (probability < 0.0 || probability > 1.0 || std::isnan(probability)) {
    throw std::invalid_argument("ChainBuilder: probability outside [0,1]");
  }
  if (probability == 0.0) return;  // zero edges are no-ops
  edges_[from.index].push_back(Edge{to, probability});
}

double ChainBuilder::remaining(StateId from) const {
  if (from.absorbing || from.index >= edges_.size()) {
    throw std::out_of_range("ChainBuilder::remaining: bad state");
  }
  double used = 0.0;
  for (const Edge& e : edges_[from.index]) used += e.probability;
  return 1.0 - used;
}

void ChainBuilder::edge_remaining(StateId from, StateId to) {
  const double rest = remaining(from);
  if (rest > 1e-12) edge(from, to, std::min(rest, 1.0));
}

StateId ChainBuilder::lookup(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::invalid_argument("ChainBuilder: unknown state " + name);
  }
  return it->second;
}

AbsorbingChain ChainBuilder::build(double row_sum_tol,
                                   ValidationMode validation) const {
  const std::size_t t = transient_names_.size();
  const std::size_t a = absorbing_names_.size();
  util::Matrix q(t, t);
  util::Matrix r(t, a);
  for (std::size_t i = 0; i < t; ++i) {
    for (const Edge& e : edges_[i]) {
      if (e.to.absorbing) {
        r(i, e.to.index) += e.probability;
      } else {
        q(i, e.to.index) += e.probability;
      }
    }
  }
  return AbsorbingChain(std::move(q), std::move(r), residence_, row_sum_tol,
                        validation);
}

}  // namespace clrearly::markov
