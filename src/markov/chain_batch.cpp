#include "markov/chain_batch.hpp"

#include <algorithm>

#include "markov/chain_batch_kernel.hpp"
#include "util/metrics.hpp"

namespace clrearly::markov {

namespace {

// Update a monotonic high-water gauge. Gauge only offers set(), so this is a
// read-max-set; a lost race can only under-report transiently and the gauge
// converges once writers drain (same tolerance as every other gauge here).
void raise_gauge(clrearly::util::Gauge& gauge, double value) {
  if (value > gauge.value()) gauge.set(value);
}

}  // namespace

void ChainBatch::configure(std::size_t t_, std::size_t a_,
                           std::size_t width_) {
  // The shrink decision looks at what this configure *needs* versus the
  // largest need ever served, before any buffer is touched.
  const std::size_t need =
      (2 * t_ * t_ + t_ * a_ + 6 * t_ + a_ + 3) * width_;
  if (high_water_doubles >= kShrinkMinDoubles &&
      need <= high_water_doubles / kShrinkDivisor) {
    if (++small_streak >= kShrinkPatience) {
      release();  // resets high_water_doubles and small_streak
      static util::Counter& shrinks =
          util::metric_counter("chain.batch.workspace_shrinks");
      shrinks.add(1);
    }
  } else {
    small_streak = 0;
  }

  t = t_;
  a = a_;
  width = width_;
  const std::size_t w = width_;
  if (q_pattern_t == t_ && q_zero_outside_pattern && q.size() == t * t * w) {
    // q is +0.0 everywhere off the recorded pattern, so zeroing the pattern
    // cells restores an all-zero buffer without streaming all t*t*w doubles.
    for (const std::uint32_t cell : q_pattern) {
      double* lanes = q.data() + static_cast<std::size_t>(cell) * w;
      for (std::size_t l = 0; l < w; ++l) lanes[l] = 0.0;
    }
  } else {
    q.assign(t * t * w, 0.0);
    if (q_pattern_t != t_) {
      q_pattern.clear();
      q_pattern_t = 0;
    }
  }
  // Until an assembler re-asserts it, assume the caller may write anywhere.
  q_zero_outside_pattern = false;
  r.assign(t * a * w, 0.0);
  residence.assign(t * w, 0.0);
  lu.resize(t * t * w);
  perm.resize(t * w);
  row0.resize(t * w);
  b0.resize(a * w);
  tvec.resize(t * w);
  qt.resize(t * w);
  rhs.resize(t * w);
  scratch.resize(t * w);
  expected_time.resize(w);
  expected_steps.resize(w);
  second_moment.resize(w);
  singular.assign(w, 0);

  const std::size_t footprint = footprint_doubles();
  if (footprint > high_water_doubles) high_water_doubles = footprint;
  static util::Gauge& hwm = util::metric_gauge("chain.batch.workspace_hwm_doubles");
  raise_gauge(hwm, static_cast<double>(high_water_doubles));
}

std::size_t ChainBatch::footprint_doubles() const noexcept {
  // perm (size_t) and singular (u8) are folded in as double-equivalents so
  // the gauge tracks total bytes / 8.
  std::size_t doubles = q.capacity() + r.capacity() + residence.capacity() +
                        lu.capacity() + row0.capacity() + b0.capacity() +
                        tvec.capacity() + qt.capacity() + rhs.capacity() +
                        scratch.capacity() + expected_time.capacity() +
                        expected_steps.capacity() + second_moment.capacity();
  doubles += perm.capacity() * sizeof(std::size_t) / sizeof(double);
  doubles += (singular.capacity() + sizeof(double) - 1) / sizeof(double);
  doubles += q_pattern.capacity() * sizeof(std::uint32_t) / sizeof(double);
  return doubles;
}

void ChainBatch::release() {
  // Move-assign fresh vectors: `v = {}` would pick the initializer_list
  // overload, which clears but is allowed to (and does) keep capacity.
  q = std::vector<double>();
  r = std::vector<double>();
  residence = std::vector<double>();
  lu = std::vector<double>();
  perm = std::vector<std::size_t>();
  row0 = std::vector<double>();
  b0 = std::vector<double>();
  tvec = std::vector<double>();
  qt = std::vector<double>();
  rhs = std::vector<double>();
  scratch = std::vector<double>();
  expected_time = std::vector<double>();
  expected_steps = std::vector<double>();
  second_moment = std::vector<double>();
  singular = std::vector<std::uint8_t>();
  q_pattern = std::vector<std::uint32_t>();
  q_pattern_t = 0;
  q_zero_outside_pattern = false;
  t = a = width = 0;
  high_water_doubles = 0;
  small_streak = 0;
}

ChainBatch& local_chain_batch() {
  thread_local ChainBatch batch;
  return batch;
}

std::size_t preferred_batch_width(util::SimdLevel level) noexcept {
  switch (level) {
    case util::SimdLevel::kAvx512: return 8;
    // 8 lanes beat 4 under AVX2 too (two 4-wide ops per step, and the
    // per-batch bookkeeping — masks, pivots, reductions — amortizes over
    // twice the chains); measured faster at every size class t = 6..34.
    case util::SimdLevel::kAvx2: return 8;
    case util::SimdLevel::kScalar: return 4;
  }
  return 4;
}

std::size_t preferred_batch_width() noexcept {
  return preferred_batch_width(util::active_simd_level());
}

#if defined(CLREARLY_HAVE_AVX_TUS)
// Implemented in chain_batch_avx2.cpp (-mavx2 -mfma -ffp-contract=off).
void batch_kernel_avx2_w4(ChainBatch& batch, bool with_second_moment);
void batch_kernel_avx2_w8(ChainBatch& batch, bool with_second_moment);
#endif
#if defined(CLREARLY_HAVE_AVX512_TU)
// Implemented in chain_batch_avx512.cpp (-mavx512f -ffp-contract=off).
void batch_kernel_avx512_w8(ChainBatch& batch, bool with_second_moment);
#endif

void solve_row0_batch(ChainBatch& batch, bool with_second_moment) {
  static util::Counter& solves =
      util::metric_counter("chain.batch.kernel_solves");
  solves.add(1);

  std::fill(batch.singular.begin(), batch.singular.end(), 0);

  const util::SimdLevel level = util::active_simd_level();
  switch (batch.width) {
    case 1:
      kernel_detail::batch_kernel<1>(batch, with_second_moment);
      break;
    case 4:
#if defined(CLREARLY_HAVE_AVX_TUS)
      if (level >= util::SimdLevel::kAvx2) {
        batch_kernel_avx2_w4(batch, with_second_moment);
        break;
      }
#endif
      (void)level;
      kernel_detail::batch_kernel<4>(batch, with_second_moment);
      break;
    case 8:
#if defined(CLREARLY_HAVE_AVX512_TU)
      if (level >= util::SimdLevel::kAvx512) {
        batch_kernel_avx512_w8(batch, with_second_moment);
        break;
      }
#endif
#if defined(CLREARLY_HAVE_AVX_TUS)
      if (level >= util::SimdLevel::kAvx2) {
        batch_kernel_avx2_w8(batch, with_second_moment);
        break;
      }
#endif
      kernel_detail::batch_kernel<8>(batch, with_second_moment);
      break;
    default:
      // Unsupported width: solve each lane through the width-1 kernel via a
      // staging batch. Correct for any width, never the fast path.
      {
        ChainBatch lane;
        for (std::size_t l = 0; l < batch.width; ++l) {
          lane.configure(batch.t, batch.a, 1);
          for (std::size_t e = 0; e < batch.t * batch.t; ++e) {
            lane.q[e] = batch.q[e * batch.width + l];
          }
          for (std::size_t e = 0; e < batch.t * batch.a; ++e) {
            lane.r[e] = batch.r[e * batch.width + l];
          }
          for (std::size_t e = 0; e < batch.t; ++e) {
            lane.residence[e] = batch.residence[e * batch.width + l];
          }
          kernel_detail::batch_kernel<1>(lane, with_second_moment);
          batch.singular[l] = lane.singular[0];
          batch.expected_time[l] = lane.expected_time[0];
          batch.expected_steps[l] = lane.expected_steps[0];
          batch.second_moment[l] = lane.second_moment[0];
          for (std::size_t k = 0; k < batch.a; ++k) {
            batch.b0[k * batch.width + l] = lane.b0[k];
          }
          for (std::size_t e = 0; e < batch.t; ++e) {
            batch.row0[e * batch.width + l] = lane.row0[e];
          }
        }
        // Lane outputs were scattered above; the zeroing below still applies.
      }
      break;
  }

  // A singular lane computed garbage past its failing pivot; hand the caller
  // value-initialized outputs instead (the scalar path would have thrown).
  for (std::size_t l = 0; l < batch.width; ++l) {
    if (!batch.singular[l]) continue;
    batch.expected_time[l] = 0.0;
    batch.expected_steps[l] = 0.0;
    batch.second_moment[l] = 0.0;
    for (std::size_t k = 0; k < batch.a; ++k) {
      batch.b0[k * batch.width + l] = 0.0;
    }
    for (std::size_t e = 0; e < batch.t; ++e) {
      batch.row0[e * batch.width + l] = 0.0;
    }
  }
}

}  // namespace clrearly::markov
