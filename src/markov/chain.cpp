#include "markov/chain.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace clrearly::markov {

namespace {

void check_probability_block(const util::Matrix& m, const char* what) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double p = m(i, j);
      if (!(p >= 0.0 && p <= 1.0) || std::isnan(p)) {
        throw std::invalid_argument(
            std::string("AbsorbingChain: ") + what +
            " entry outside [0,1]");
      }
    }
  }
}

/// The O(t^2) probability scans gated by ValidationMode.
void check_probabilities(const util::Matrix& q, const util::Matrix& r,
                         double row_sum_tol) {
  check_probability_block(q, "Q");
  check_probability_block(r, "R");
  for (std::size_t i = 0; i < q.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < q.cols(); ++j) row_sum += q(i, j);
    for (std::size_t k = 0; k < r.cols(); ++k) row_sum += r(i, k);
    if (std::abs(row_sum - 1.0) > row_sum_tol) {
      throw std::invalid_argument(
          "AbsorbingChain: transition row does not sum to 1");
    }
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double sum(const std::vector<double>& a) {
  double acc = 0.0;
  for (double x : a) acc += x;
  return acc;
}

/// b0[k] = sum_i row0[i] * r(i, k) — row 0 of B = N R without forming B.
void row0_absorption(const std::vector<double>& row0, const util::Matrix& r,
                     std::vector<double>& b0) {
  b0.assign(r.cols(), 0.0);
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double x = row0[i];
    if (x == 0.0) continue;
    for (std::size_t k = 0; k < r.cols(); ++k) b0[k] += x * r(i, k);
  }
}

/// a = I - q, written over a's existing storage.
void assemble_i_minus_q(const util::Matrix& q, util::Matrix& a) {
  const std::size_t t = q.rows();
  a.assign(t, t);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      a(i, j) = (i == j ? 1.0 : 0.0) - q(i, j);
    }
  }
}

/// rhs for the second moment of time-to-absorption. With deterministic
/// residence r_i and T_i = r_i + T_next:
///   E[T_i^2] = r_i^2 + 2 r_i (Q t)_i + (Q s)_i
///     =>  s = N (r.^2 + 2 r .* (Q t))   with t = N r.
void second_moment_rhs(const std::vector<double>& residence,
                       const std::vector<double>& qt,
                       std::vector<double>& rhs) {
  rhs.resize(residence.size());
  for (std::size_t i = 0; i < residence.size(); ++i) {
    rhs[i] = residence[i] * residence[i] + 2.0 * residence[i] * qt[i];
  }
}

}  // namespace

/// Deferred analysis state: the full fundamental matrix, absorption matrix
/// and moment vectors, each materialized at most once, on first access.
struct AbsorbingChain::Lazy {
  std::once_flag n_once, b_once, t_once, m_once;
  util::Matrix n;               // fundamental matrix N = (I - Q)^{-1}
  util::Matrix b;               // absorption probabilities B = N R
  std::vector<double> t;        // expected time-to-absorption per state
  std::vector<double> m;        // E[T^2] per start state
};

AbsorbingChain::AbsorbingChain(util::Matrix q, util::Matrix r,
                               std::vector<double> residence_times,
                               double row_sum_tol, ValidationMode validation)
    : q_(std::move(q)), r_(std::move(r)),
      residence_(std::move(residence_times)),
      lazy_(std::make_unique<Lazy>()) {
  if (!q_.square()) {
    throw std::invalid_argument("AbsorbingChain: Q must be square");
  }
  const std::size_t t = q_.rows();
  if (t == 0) {
    throw std::invalid_argument("AbsorbingChain: need at least one transient state");
  }
  if (r_.rows() != t) {
    throw std::invalid_argument("AbsorbingChain: R row count must match Q");
  }
  if (r_.cols() == 0) {
    throw std::invalid_argument("AbsorbingChain: need at least one absorbing state");
  }
  if (residence_.size() != t) {
    throw std::invalid_argument(
        "AbsorbingChain: residence time vector length must match Q");
  }
  for (double rt : residence_) {
    if (rt < 0.0 || std::isnan(rt)) {
      throw std::invalid_argument("AbsorbingChain: negative residence time");
    }
  }
  if (validation == ValidationMode::kFull) {
    check_probabilities(q_, r_, row_sum_tol);
  } else {
#ifndef NDEBUG
    // Trusted callers promise pre-validated input; debug builds verify the
    // promise once so a bad caller is caught before it ships.
    check_probabilities(q_, r_, row_sum_tol);
#endif
  }

  // Factor I - Q once; singular means some transient state cannot be
  // absorbed. One adjoint solve (I - Q)^T x = e_0 yields row 0 of the
  // fundamental matrix, from which every row-0 metric is a dot product.
  util::Matrix i_minus_q = util::Matrix::identity(t);
  i_minus_q -= q_;
  lu_.factor(std::move(i_minus_q));

  std::vector<double> e0(t, 0.0);
  e0[0] = 1.0;
  std::vector<double> scratch;
  lu_.solve_transposed_into(e0, row0_, scratch);
  t0_ = dot(row0_, residence_);
  steps0_ = sum(row0_);
  row0_absorption(row0_, r_, b0_);
}

AbsorbingChain::AbsorbingChain(const AbsorbingChain& other)
    : q_(other.q_), r_(other.r_), residence_(other.residence_),
      lu_(other.lu_), row0_(other.row0_), b0_(other.b0_), t0_(other.t0_),
      steps0_(other.steps0_), lazy_(std::make_unique<Lazy>()) {}

AbsorbingChain::AbsorbingChain(AbsorbingChain&&) noexcept = default;
AbsorbingChain& AbsorbingChain::operator=(AbsorbingChain&&) noexcept = default;
AbsorbingChain::~AbsorbingChain() = default;

AbsorbingChain& AbsorbingChain::operator=(const AbsorbingChain& other) {
  if (this != &other) {
    q_ = other.q_;
    r_ = other.r_;
    residence_ = other.residence_;
    lu_ = other.lu_;
    row0_ = other.row0_;
    b0_ = other.b0_;
    t0_ = other.t0_;
    steps0_ = other.steps0_;
    lazy_ = std::make_unique<Lazy>();
  }
  return *this;
}

const util::Matrix& AbsorbingChain::fundamental() const {
  std::call_once(lazy_->n_once, [this] {
    lazy_->n = lu_.inverse();
  });
  return lazy_->n;
}

const util::Matrix& AbsorbingChain::absorption_probabilities() const {
  std::call_once(lazy_->b_once, [this] {
    lazy_->b = lu_.solve(r_);
  });
  return lazy_->b;
}

const std::vector<double>& AbsorbingChain::full_times() const {
  std::call_once(lazy_->t_once, [this] {
    lazy_->t = lu_.solve(residence_);
  });
  return lazy_->t;
}

const std::vector<double>& AbsorbingChain::second_moments() const {
  std::call_once(lazy_->m_once, [this] {
    const std::vector<double>& t = full_times();
    const std::vector<double> qt = q_.apply(t);
    std::vector<double> rhs;
    second_moment_rhs(residence_, qt, rhs);
    lazy_->m = lu_.solve(rhs);
  });
  return lazy_->m;
}

std::vector<double> AbsorbingChain::expected_visits(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::expected_visits");
  }
  if (start == 0) return row0_;
  const util::Matrix& n = fundamental();
  std::vector<double> visits(num_transient());
  for (std::size_t j = 0; j < num_transient(); ++j) visits[j] = n(start, j);
  return visits;
}

double AbsorbingChain::expected_time(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::expected_time");
  }
  if (start == 0) return t0_;
  return full_times()[start];
}

double AbsorbingChain::expected_time(
    const std::vector<double>& start_distribution) const {
  if (start_distribution.size() != num_transient()) {
    throw std::invalid_argument(
        "AbsorbingChain::expected_time: distribution length mismatch");
  }
  const std::vector<double>& t = full_times();
  double acc = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    acc += start_distribution[i] * t[i];
  }
  return acc;
}

double AbsorbingChain::expected_steps(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::expected_steps");
  }
  if (start == 0) return steps0_;
  const util::Matrix& n = fundamental();
  double acc = 0.0;
  for (std::size_t j = 0; j < num_transient(); ++j) acc += n(start, j);
  return acc;
}

double AbsorbingChain::absorption_probability(std::size_t start,
                                              std::size_t absorbing) const {
  if (start >= num_transient() || absorbing >= num_absorbing()) {
    throw std::out_of_range("AbsorbingChain::absorption_probability");
  }
  if (start == 0) return b0_[absorbing];
  return absorption_probabilities()(start, absorbing);
}

double AbsorbingChain::time_variance(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::time_variance");
  }
  const double m1 = full_times()[start];
  return second_moments()[start] - m1 * m1;
}

ChainWorkspace& local_chain_workspace() {
  thread_local ChainWorkspace workspace;
  return workspace;
}

void ChainWorkspace::note_configure(std::size_t t_, std::size_t a_) {
  // What this chain needs, in doubles: q (t*t), a (t*t), lu (t*t + perm),
  // r (t*a), b0 (a), and six t-length vectors.
  const std::size_t need = 3 * t_ * t_ + t_ * a_ + 6 * t_ + a_;
  if (high_water_doubles >= kShrinkMinDoubles &&
      need <= high_water_doubles / kShrinkDivisor) {
    if (++small_streak >= kShrinkPatience) {
      release();  // resets high_water_doubles and small_streak
      static util::Counter& shrinks =
          util::metric_counter("chain.workspace_shrinks");
      shrinks.add(1);
    }
  } else {
    small_streak = 0;
  }
  if (need > high_water_doubles) high_water_doubles = need;
  static util::Gauge& hwm =
      util::metric_gauge("chain.workspace_hwm_doubles");
  if (static_cast<double>(high_water_doubles) > hwm.value()) {
    hwm.set(static_cast<double>(high_water_doubles));
  }
}

std::size_t ChainWorkspace::footprint_doubles() const noexcept {
  return q.capacity() + r.capacity() + a.capacity() + lu.capacity_doubles() +
         residence.capacity() + row0.capacity() + b0.capacity() +
         t.capacity() + qt.capacity() + rhs.capacity() + scratch.capacity();
}

void ChainWorkspace::release() {
  q.release();
  r.release();
  a.release();
  lu.release();
  // Move-assign fresh vectors — `v = {}` would keep the capacity alive.
  residence = std::vector<double>();
  row0 = std::vector<double>();
  b0 = std::vector<double>();
  t = std::vector<double>();
  qt = std::vector<double>();
  rhs = std::vector<double>();
  scratch = std::vector<double>();
  high_water_doubles = 0;
  small_streak = 0;
}

Row0Solve solve_row0(ChainWorkspace& ws, bool with_second_moment) {
  // ~2ns striped add vs a µs-scale factor+solve — negligible, and it is
  // the ground truth for cache-effectiveness analysis (solve_row0 calls
  // are exactly the chain-cache misses plus uncached callers).
  static util::Counter& calls_metric =
      util::metric_counter("chain.solve_row0_calls");
  calls_metric.add();

  const std::size_t t = ws.q.rows();
  assert(ws.q.square() && ws.r.rows() == t && ws.residence.size() == t &&
         t > 0 && ws.r.cols() > 0);
#ifndef NDEBUG
  // Trusted-path invariant: assemblers produce stochastic rows.
  check_probabilities(ws.q, ws.r, 1e-9);
#endif

  assemble_i_minus_q(ws.q, ws.a);
  ws.lu.factor(ws.a);

  ws.rhs.assign(t, 0.0);
  ws.rhs[0] = 1.0;
  ws.lu.solve_transposed_into(ws.rhs, ws.row0, ws.scratch);

  Row0Solve out;
  out.expected_time = dot(ws.row0, ws.residence);
  out.expected_steps = sum(ws.row0);
  row0_absorption(ws.row0, ws.r, ws.b0);

  if (with_second_moment) {
    // E[T^2] from state 0 is e_0^T N rhs = row0 . rhs — the already-solved
    // adjoint row replaces the second full solve of the eager path.
    ws.lu.solve_into(ws.residence, ws.t);
    ws.q.apply_into(ws.t, ws.qt);
    second_moment_rhs(ws.residence, ws.qt, ws.rhs);
    out.second_moment = dot(ws.row0, ws.rhs);
  }
  return out;
}

SimulationResult simulate(const AbsorbingChain& chain, std::size_t start,
                          std::size_t trials, std::uint64_t seed,
                          std::size_t max_steps) {
  if (start >= chain.num_transient()) {
    throw std::out_of_range("simulate: bad start state");
  }
  if (trials == 0) {
    throw std::invalid_argument("simulate: trials must be positive");
  }
  util::Rng rng(seed);
  SimulationResult result;
  result.absorption_frequency.assign(chain.num_absorbing(), 0.0);

  const std::size_t t = chain.num_transient();
  double total_time = 0.0;
  double total_steps = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::size_t state = start;
    double time = 0.0;
    double steps = 0.0;
    bool absorbed = false;
    // The step cap guards against pathological (near-singular) chains; the
    // constructor already rejected truly non-absorbing ones. A capped walk
    // is reported as truncated, never folded into the aggregates.
    for (std::size_t step = 0; step < max_steps && !absorbed; ++step) {
      time += chain.residence_times()[state];
      steps += 1.0;
      double u = rng.uniform();
      bool moved = false;
      for (std::size_t j = 0; j < t; ++j) {
        u -= chain.q()(state, j);
        if (u < 0.0) {
          state = j;
          moved = true;
          break;
        }
      }
      if (moved) continue;
      for (std::size_t k = 0; k < chain.num_absorbing(); ++k) {
        u -= chain.r()(state, k);
        if (u < 0.0 || k + 1 == chain.num_absorbing()) {
          result.absorption_frequency[k] += 1.0;
          absorbed = true;
          break;
        }
      }
    }
    if (!absorbed) {
      ++result.truncated_trials;
      continue;  // contributes to no aggregate
    }
    total_time += time;
    total_steps += steps;
  }
  static util::Counter& trials_metric =
      util::metric_counter("markov.sim.trials");
  static util::Counter& truncated_metric =
      util::metric_counter("markov.sim.truncated");
  trials_metric.add(trials);
  truncated_metric.add(result.truncated_trials);

  const std::size_t completed = trials - result.truncated_trials;
  if (completed == 0) {
    throw std::runtime_error(
        "simulate: every trial hit the step cap without absorbing");
  }
  result.mean_time = total_time / static_cast<double>(completed);
  result.mean_steps = total_steps / static_cast<double>(completed);
  for (double& f : result.absorption_frequency) {
    f /= static_cast<double>(completed);
  }
  return result;
}

}  // namespace clrearly::markov
