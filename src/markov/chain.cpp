#include "markov/chain.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/linsolve.hpp"
#include "util/rng.hpp"

namespace clrearly::markov {

namespace {

void check_probability_block(const util::Matrix& m, const char* what) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double p = m(i, j);
      if (!(p >= 0.0 && p <= 1.0) || std::isnan(p)) {
        throw std::invalid_argument(
            std::string("AbsorbingChain: ") + what +
            " entry outside [0,1]");
      }
    }
  }
}

}  // namespace

AbsorbingChain::AbsorbingChain(util::Matrix q, util::Matrix r,
                               std::vector<double> residence_times,
                               double row_sum_tol)
    : q_(std::move(q)), r_(std::move(r)), residence_(std::move(residence_times)) {
  if (!q_.square()) {
    throw std::invalid_argument("AbsorbingChain: Q must be square");
  }
  const std::size_t t = q_.rows();
  if (t == 0) {
    throw std::invalid_argument("AbsorbingChain: need at least one transient state");
  }
  if (r_.rows() != t) {
    throw std::invalid_argument("AbsorbingChain: R row count must match Q");
  }
  if (r_.cols() == 0) {
    throw std::invalid_argument("AbsorbingChain: need at least one absorbing state");
  }
  if (residence_.size() != t) {
    throw std::invalid_argument(
        "AbsorbingChain: residence time vector length must match Q");
  }
  for (double rt : residence_) {
    if (rt < 0.0 || std::isnan(rt)) {
      throw std::invalid_argument("AbsorbingChain: negative residence time");
    }
  }
  check_probability_block(q_, "Q");
  check_probability_block(r_, "R");
  for (std::size_t i = 0; i < t; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < t; ++j) row_sum += q_(i, j);
    for (std::size_t k = 0; k < r_.cols(); ++k) row_sum += r_(i, k);
    if (std::abs(row_sum - 1.0) > row_sum_tol) {
      throw std::invalid_argument(
          "AbsorbingChain: transition row does not sum to 1");
    }
  }

  // N = (I - Q)^{-1}; singular means some transient state cannot be absorbed.
  util::Matrix i_minus_q = util::Matrix::identity(t);
  i_minus_q -= q_;
  util::LuDecomposition lu(std::move(i_minus_q));
  n_ = lu.inverse();
  b_ = n_ * r_;
  t_ = n_.apply(residence_);

  // Second moment of time-to-absorption. With deterministic residence r_i and
  // T_i = r_i + T_next:
  //   E[T_i^2] = r_i^2 + 2 r_i (Q t)_i + (Q s)_i  =>  s = N (r.^2 + 2 r .* Qt)
  const std::vector<double> qt = q_.apply(t_);
  std::vector<double> rhs(t);
  for (std::size_t i = 0; i < t; ++i) {
    rhs[i] = residence_[i] * residence_[i] + 2.0 * residence_[i] * qt[i];
  }
  second_moment_ = n_.apply(rhs);
}

std::vector<double> AbsorbingChain::expected_visits(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::expected_visits");
  }
  std::vector<double> visits(num_transient());
  for (std::size_t j = 0; j < num_transient(); ++j) visits[j] = n_(start, j);
  return visits;
}

double AbsorbingChain::expected_time(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::expected_time");
  }
  return t_[start];
}

double AbsorbingChain::expected_time(
    const std::vector<double>& start_distribution) const {
  if (start_distribution.size() != num_transient()) {
    throw std::invalid_argument(
        "AbsorbingChain::expected_time: distribution length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < t_.size(); ++i) {
    acc += start_distribution[i] * t_[i];
  }
  return acc;
}

double AbsorbingChain::expected_steps(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::expected_steps");
  }
  double acc = 0.0;
  for (std::size_t j = 0; j < num_transient(); ++j) acc += n_(start, j);
  return acc;
}

double AbsorbingChain::absorption_probability(std::size_t start,
                                              std::size_t absorbing) const {
  if (start >= num_transient() || absorbing >= num_absorbing()) {
    throw std::out_of_range("AbsorbingChain::absorption_probability");
  }
  return b_(start, absorbing);
}

double AbsorbingChain::time_variance(std::size_t start) const {
  if (start >= num_transient()) {
    throw std::out_of_range("AbsorbingChain::time_variance");
  }
  const double m1 = t_[start];
  return second_moment_[start] - m1 * m1;
}

SimulationResult simulate(const AbsorbingChain& chain, std::size_t start,
                          std::size_t trials, std::uint64_t seed) {
  if (start >= chain.num_transient()) {
    throw std::out_of_range("simulate: bad start state");
  }
  if (trials == 0) {
    throw std::invalid_argument("simulate: trials must be positive");
  }
  util::Rng rng(seed);
  SimulationResult result;
  result.absorption_frequency.assign(chain.num_absorbing(), 0.0);

  const std::size_t t = chain.num_transient();
  double total_time = 0.0;
  double total_steps = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::size_t state = start;
    double time = 0.0;
    // A generous cap guards against pathological (near-singular) chains; the
    // constructor already rejected truly non-absorbing ones.
    for (std::size_t step = 0; step < 10'000'000; ++step) {
      time += chain.residence_times()[state];
      total_steps += 1.0;
      double u = rng.uniform();
      bool moved = false;
      for (std::size_t j = 0; j < t; ++j) {
        u -= chain.q()(state, j);
        if (u < 0.0) {
          state = j;
          moved = true;
          break;
        }
      }
      if (moved) continue;
      for (std::size_t k = 0; k < chain.num_absorbing(); ++k) {
        u -= chain.r()(state, k);
        if (u < 0.0 || k + 1 == chain.num_absorbing()) {
          result.absorption_frequency[k] += 1.0;
          break;
        }
      }
      break;
    }
    total_time += time;
  }
  result.mean_time = total_time / static_cast<double>(trials);
  result.mean_steps = total_steps / static_cast<double>(trials);
  for (double& f : result.absorption_frequency) {
    f /= static_cast<double>(trials);
  }
  return result;
}

}  // namespace clrearly::markov
