// Baseline DSE flows the paper compares against (Fig. 7 / TABLE V):
// single-layer optimizations (DVFS-only, HWRel-only, SSWRel-only,
// ASWRel-only) and the "other-layer-agnostic" combination — the Pareto union
// of the four single-layer fronts.
#pragma once

#include <string>
#include <vector>

#include "core/dse.hpp"

namespace clrearly::core {

/// Which single decision axis a baseline explores.
enum class SingleLayer { kDvfs, kHwRel, kSswRel, kAswRel };

std::string to_string(SingleLayer layer);
reliability::ClrAxes axes_for(SingleLayer layer);

/// GA over the fcCLR encoding with every CLR axis except `layer` pinned to
/// its no-op entry (task mapping and implementation choice stay free — the
/// baseline still maps tasks, it just cannot cross layers).
DseOutcome run_single_layer(const DseMethodology& dse,
                            const DseOptions& options, SingleLayer layer);

/// All four single-layer runs plus their Pareto-filtered union.
struct AgnosticOutcome {
  std::vector<SingleLayer> layers;                  ///< run order
  std::vector<DseOutcome> per_layer;                ///< parallel to layers
  std::vector<moea::Objectives> combined_front;     ///< dominant union points
  std::size_t evaluations = 0;                      ///< total across layers
};

AgnosticOutcome run_agnostic(const DseMethodology& dse,
                             const DseOptions& options);

/// Resilience-agnostic baseline (TABLE-V-style for the permanent-fault
/// axis): run plain fcCLR — which never looks at failure sets — then
/// re-score its front under the k-resilient fitness. `survivors` marks the
/// nominal front points that happen to be k-resilient anyway; the gap
/// between survivor_fraction and 1.0 is what the dedicated run_kresilient
/// flow buys.
struct ResilienceBaselineOutcome {
  DseOutcome nominal;                ///< the resilience-agnostic fcCLR front
  std::vector<bool> survivors;       ///< parallel to nominal.front
  std::size_t survivor_count = 0;
  double survivor_fraction = 0.0;    ///< 0 when the nominal front is empty
};

ResilienceBaselineOutcome run_resilience_baseline(const DseMethodology& dse,
                                                  const DseOptions& options);

}  // namespace clrearly::core
