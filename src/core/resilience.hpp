// k-resilient mapping optimization (the permanent-fault scenario axis,
// ROADMAP item 3).
//
// A ResilientProblem wraps a nominal fcCLR ClrMappingProblem and certifies
// every candidate mapping against the loss of ANY subset of at most k PEs:
// for each failure set F the nominal mapping is repaired onto the survivors
// (ClrMappingProblem::repair_for_failures) and the repaired mapping's QoS is
// scored against the degraded-mode spec. The NSGA-II fitness keeps the
// nominal objectives — the search still optimizes the healthy system — and
// folds resilience into the constraint violation, so the feasible Pareto
// front consists exactly of the k-resilient designs ("worst-case QoS over
// the loss of any k PEs stays above threshold").
//
// The analytic_prediction() mixture over failure-set probabilities is the
// quantity the Monte Carlo fault-injection oracle (sim::simulate_with_failures
// via core/sim_bridge) estimates; docs/RESILIENCE.md derives both sides.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/problem.hpp"
#include "core/scenario.hpp"

namespace clrearly::core {

class ResilientProblem {
 public:
  /// Builds the nominal fcCLR problem internally. Throws like
  /// ClrMappingProblem's constructor and ResilienceSpec::validate().
  ResilientProblem(app::Application application,
                   platform::Architecture architecture,
                   reliability::TaskAnalyzer analyzer,
                   ResilienceSpec resilience, SystemObjectives objectives,
                   sched::QosSpec spec);

  const ClrMappingProblem& nominal() const noexcept { return nominal_; }
  const ResilienceSpec& resilience() const noexcept { return resilience_; }
  const GenomeLayout& layout() const noexcept { return nominal_.layout(); }

  /// The failure masks certified against (|F| in 1..k), in the
  /// deterministic enumerate_failure_sets() order.
  const std::vector<std::vector<char>>& failure_sets() const noexcept {
    return failure_sets_;
  }

  /// Mission loss probability of each PE (pe_failure_probabilities()).
  const std::vector<double>& failure_probabilities() const noexcept {
    return failure_probs_;
  }

  /// One certified degraded mode: the failure set, its exact-set
  /// probability, and the repaired mapping with its QoS — the fallback
  /// table a runtime remapper would flash.
  struct DegradedMode {
    std::vector<char> failed;
    double probability = 0.0;
    bool repairable = false;
    MappingGenome mapping;     ///< valid only when repairable
    sched::QosMetrics qos;     ///< of the repaired mapping
    double violation = 0.0;    ///< against the degraded QoS spec
  };

  /// Degraded modes of `genome`, aligned with failure_sets().
  std::vector<DegradedMode> degraded_modes(const MappingGenome& genome) const;

  /// k-resilient fitness: nominal objectives; violation = nominal spec
  /// violation + spare-occupancy penalty + worst degraded-mode violation
  /// (an unrepairable set contributes 1 + its failure count, dominating any
  /// normalized QoS overshoot). Memoized like ClrMappingProblem::evaluate;
  /// a pure function of the genome, so cached/uncached and serial/parallel
  /// runs are bit-identical.
  moea::Evaluation evaluate(const MappingGenome& genome) const;

  util::CacheStats fitness_cache_stats() const;

  /// The nominal problem's ops with only `evaluate` overridden — layout and
  /// variation operators are untouched, so the NSGA-II determinism and
  /// cache-equivalence guarantees carry over unchanged.
  moea::Nsga2Ops<MappingGenome> ops(double mutation_indpb = 0.05) const;

  /// Analytic degraded-mode prediction of a mapping: mission availability
  /// and the QoS mixture over the admissible modes (nominal + every
  /// repairable failure set), conditioned on availability. This is exactly
  /// what the Monte Carlo fault-injection oracle estimates — availability
  /// and error probability are proportions/expectations of per-trial
  /// indicators, so the 10k-trial Wilson intervals must cover these values.
  struct AnalyticPrediction {
    double availability = 0.0;        ///< P[no failure or repairable |F|<=k]
    double expected_makespan_us = 0.0;  ///< E[. | available]
    double expected_error_prob = 0.0;
    double expected_energy_uj = 0.0;
    double worst_makespan_us = 0.0;   ///< over the admissible modes
    double worst_error_prob = 0.0;
  };
  AnalyticPrediction analytic_prediction(const MappingGenome& genome) const;

 private:
  using FitnessCache =
      util::MemoCache<util::Key128, moea::Evaluation, util::Key128Hash>;

  moea::Evaluation evaluate_uncached(const MappingGenome& genome) const;

  ResilienceSpec resilience_;
  ClrMappingProblem nominal_;
  std::vector<double> failure_probs_;
  std::vector<std::vector<char>> failure_sets_;
  std::vector<char> spare_mask_;
  std::unique_ptr<FitnessCache> fitness_cache_;
};

}  // namespace clrearly::core
