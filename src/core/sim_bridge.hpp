// Bridge from DSE design points to Monte Carlo simulator inputs.
//
// A MappingGenome only encodes indices; the simulator needs the fully
// resolved fault-process parameters of every task. This module rebuilds them
// through the same TaskAnalyzer the analytic tables were computed with
// (TaskAnalyzer::chain_params), so the simulated process and the analytic
// Fig. 3 chains see byte-identical inputs — any disagreement between
// SimResult and QosMetrics is then attributable to the system-level
// aggregation approximations alone, never to diverging task models.
#pragma once

#include <string>
#include <vector>

#include "core/encoding.hpp"
#include "core/problem.hpp"
#include "core/resilience.hpp"
#include "sim/schedule_sim.hpp"

namespace clrearly::core {

/// One design point in simulator form: per-task fault-process parameters +
/// PE bindings + powers, and the genome's schedule priority order.
struct SimDesignPoint {
  std::string label;
  std::vector<sim::SimTask> tasks;
  std::vector<std::size_t> priority_order;
};

/// Resolve `genome` against `problem` into simulator inputs. Works for both
/// fcCLR and pfCLR problems (pfCLR Pareto points carry their implementation
/// index and CLR configuration, which chain_params re-expands). Throws like
/// ClrMappingProblem::decode on malformed genomes.
SimDesignPoint make_sim_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     std::string label = {});

/// Convenience: bridge + simulate in one call.
sim::SimResult simulate_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     const sim::SimOptions& options);

/// A k-resilient design point in fault-injection form: the nominal mapping
/// plus every repairable degraded mode as an executable sim variant, ready
/// for sim::simulate_with_failures.
struct ResilientSimPoint {
  /// variants[0] is the nominal mapping; variants[i > 0] the repaired
  /// mapping for variant_failures[i].
  std::vector<sim::SimVariant> variants;
  std::vector<std::vector<char>> variant_failures;
  /// Per-PE mission loss probabilities (the problem's Weibull CDF values).
  std::vector<double> failure_probabilities;
  /// Enumerated failure sets no repair exists for — drawn trials landing on
  /// one of these count as unavailable.
  std::vector<std::vector<char>> unrepairable_sets;
};

/// Expand `genome` and all its degraded modes into fault-injection inputs.
/// Throws like ClrMappingProblem::decode on malformed genomes.
ResilientSimPoint make_resilient_sim_point(const ResilientProblem& problem,
                                           const MappingGenome& genome);

/// Convenience: bridge + inject in one call, wiring the problem's own
/// failure probabilities into the options.
sim::FailureSimResult simulate_resilient_design_point(
    const ResilientProblem& problem, const MappingGenome& genome,
    std::size_t trials, std::uint64_t seed);

}  // namespace clrearly::core
