// Bridge from DSE design points to Monte Carlo simulator inputs.
//
// A MappingGenome only encodes indices; the simulator needs the fully
// resolved fault-process parameters of every task. This module rebuilds them
// through the same TaskAnalyzer the analytic tables were computed with
// (TaskAnalyzer::chain_params), so the simulated process and the analytic
// Fig. 3 chains see byte-identical inputs — any disagreement between
// SimResult and QosMetrics is then attributable to the system-level
// aggregation approximations alone, never to diverging task models.
#pragma once

#include <string>
#include <vector>

#include "core/encoding.hpp"
#include "core/problem.hpp"
#include "sim/schedule_sim.hpp"

namespace clrearly::core {

/// One design point in simulator form: per-task fault-process parameters +
/// PE bindings + powers, and the genome's schedule priority order.
struct SimDesignPoint {
  std::string label;
  std::vector<sim::SimTask> tasks;
  std::vector<std::size_t> priority_order;
};

/// Resolve `genome` against `problem` into simulator inputs. Works for both
/// fcCLR and pfCLR problems (pfCLR Pareto points carry their implementation
/// index and CLR configuration, which chain_params re-expands). Throws like
/// ClrMappingProblem::decode on malformed genomes.
SimDesignPoint make_sim_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     std::string label = {});

/// Convenience: bridge + simulate in one call.
sim::SimResult simulate_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     const sim::SimOptions& options);

}  // namespace clrearly::core
