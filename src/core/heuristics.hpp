// Constructive heuristic baseline: HEFT-style task mapping followed by
// greedy cross-layer hardening.
//
// GA-based DSE needs thousands of evaluations; a designer (or the GA itself,
// through seeding) often wants a good deterministic starting point in
// milliseconds. This implements the classic recipe adapted to the CLR
// problem:
//
//   1. *HEFT mapping* — tasks are ranked by upward rank (mean baseline
//      execution time + longest downstream chain) and greedily assigned, in
//      rank order, to the (implementation, PE) pair with the earliest finish
//      time, all at the unprotected baseline configuration.
//   2. *Greedy hardening* — while the QoS spec's functional-reliability
//      floor is violated, upgrade the task with the largest
//      criticality-weighted error contribution to its cheapest (by average
//      execution time) configuration that strictly lowers its error
//      probability. Stops when feasible or out of upgrades.
//
// The result is an fcCLR genome, directly usable as a design point or as a
// seed for run_nsga2.
#pragma once

#include "core/problem.hpp"

namespace clrearly::core {

struct HeuristicResult {
  MappingGenome genome;        ///< valid for the given fcCLR problem
  sched::QosMetrics qos;       ///< metrics of the constructed design
  std::size_t upgrades = 0;    ///< hardening steps applied
  bool feasible = false;       ///< meets the problem's QoS spec
};

/// Run the heuristic against an fcCLR problem (throws std::invalid_argument
/// for pfCLR problems — the heuristic reasons about raw configurations).
HeuristicResult heft_clr_mapping(const ClrMappingProblem& problem);

}  // namespace clrearly::core
