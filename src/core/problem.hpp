// The CLR-integrated task-mapping optimization problem (Eq. 5).
//
// A ClrMappingProblem turns a MappingGenome into system-level QoS metrics:
// decode the per-task decisions (implementation, PE, CLR configuration),
// look the task-level metrics up in a precomputed Markov-model table, run
// the list scheduler, and score the TABLE III metrics against the QoS spec.
//
// Two modes mirror the paper's search spaces:
//  * kFullConfig (fcCLR)     — every CLR decision is a separate gene:
//                              [impl, PE, HWRel, SSWRel, ASWRel, DVFS].
//  * kParetoFiltered (pfCLR) — genes index into the task-level Pareto
//                              fronts produced by tDSE: [point, PE].
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "app/task_graph.hpp"
#include "core/encoding.hpp"
#include "core/tdse.hpp"
#include "moea/nsga2.hpp"
#include "platform/architecture.hpp"
#include "reliability/task_metrics.hpp"
#include "sched/qos.hpp"
#include "util/memo_cache.hpp"

namespace clrearly::core {

/// Which TABLE III metrics the system-level optimization minimizes
/// (MTTF is negated; the paper's headline problem is makespan + error prob).
/// The w_<m> terms of Eq. 5 scale each active objective — they do not change
/// Pareto dominance on their own, but matter for hypervolume shaping and for
/// weighted-sum scalarization by downstream users.
struct SystemObjectives {
  bool makespan = true;
  bool error_prob = true;
  bool mttf = false;
  bool energy = false;
  bool power = false;

  double w_makespan = 1.0;
  double w_error_prob = 1.0;
  double w_mttf = 1.0;
  double w_energy = 1.0;
  double w_power = 1.0;

  /// All five metrics active (the full Eq. 5 objective vector).
  static SystemObjectives all();

  std::size_t count() const;
  std::vector<double> extract(const sched::QosMetrics& m) const;

  /// Weighted-sum scalarization of the active objectives (for single-
  /// objective consumers; weights must be positive for a meaningful scalar).
  double scalarize(const sched::QosMetrics& m) const;
};

class ClrMappingProblem {
 public:
  enum class Mode { kFullConfig, kParetoFiltered };

  /// fcCLR gene fields (per task).
  static constexpr std::size_t kFieldImpl = 0;
  static constexpr std::size_t kFieldPeSel = 1;
  static constexpr std::size_t kFieldHw = 2;
  static constexpr std::size_t kFieldSsw = 3;
  static constexpr std::size_t kFieldAsw = 4;
  static constexpr std::size_t kFieldDvfs = 5;
  static constexpr std::size_t kFullConfigFields = 6;

  /// pfCLR gene fields (per task).
  static constexpr std::size_t kFieldPoint = 0;
  // kFieldPeSel (=1) is shared.
  static constexpr std::size_t kParetoFields = 2;

  /// Full-configuration (fcCLR) problem. `axes` restricts which CLR decision
  /// axes are explored — the single-layer baselines of Fig. 7 pin all but
  /// one axis to the no-op entry.
  ClrMappingProblem(app::Application application,
                    platform::Architecture architecture,
                    reliability::TaskAnalyzer analyzer,
                    SystemObjectives objectives, sched::QosSpec spec,
                    reliability::ClrAxes axes = reliability::ClrAxes::all());

  /// Pareto-filtered (pfCLR) problem over tDSE results;
  /// `pareto_points[type]` must be non-empty for every task type.
  ClrMappingProblem(app::Application application,
                    platform::Architecture architecture,
                    reliability::TaskAnalyzer analyzer,
                    SystemObjectives objectives, sched::QosSpec spec,
                    std::vector<std::vector<TaskDesignPoint>> pareto_points);

  Mode mode() const noexcept { return mode_; }
  const GenomeLayout& layout() const noexcept { return *layout_; }
  const app::Application& application() const noexcept { return app_; }
  const platform::Architecture& architecture() const noexcept { return arch_; }
  const SystemObjectives& objectives() const noexcept { return objectives_; }
  const sched::QosSpec& spec() const noexcept { return spec_; }
  const reliability::TaskAnalyzer& analyzer() const noexcept {
    return analyzer_;
  }
  const reliability::ClrAxes& axes() const noexcept { return axes_; }

  /// Resolve the per-task decisions encoded in `genome`.
  std::vector<sched::TaskDecision> decode(const MappingGenome& genome) const;

  /// Fully resolved choice for one task: the PE instance, the implementation
  /// index within the task type's catalog, the CLR configuration and the
  /// resulting metrics. decode() flattens this into sched::TaskDecisions;
  /// consumers that need the underlying choices (e.g. core/sim_bridge
  /// rebuilding the fault-process parameters for simulation) use resolve().
  struct ResolvedTask {
    std::size_t pe = 0;
    std::size_t impl_index = 0;
    reliability::ClrConfig config;
    reliability::TaskMetrics metrics;
  };

  /// Resolve every task of `genome` (same decoding as decode()).
  std::vector<ResolvedTask> resolve(const MappingGenome& genome) const;

  /// Human-readable resolution of a genome: per task, the chosen
  /// implementation, PE, CLR configuration and resulting metrics. For
  /// presenting final design points to the designer (examples, reports).
  struct TaskChoice {
    std::string task_name;
    std::string impl_name;
    std::size_t pe = 0;
    std::string pe_type_name;
    reliability::ClrConfig config;
    std::string config_text;  ///< ClrSpace::describe() of `config`
    reliability::TaskMetrics metrics;
  };
  std::vector<TaskChoice> report(const MappingGenome& genome) const;

  /// Full QoS metrics of a genome (decode + schedule + TABLE III).
  sched::QosMetrics qos(const MappingGenome& genome) const;

  /// 128-bit content key of a genome (schedule permutation + genes), the
  /// fitness-cache key. Deterministic across runs; genomes differing in any
  /// gene or in the permutation hash differently.
  static util::Key128 genome_key(const MappingGenome& genome);

  /// 64-bit genome content hash (the low half of genome_key) — the
  /// within-batch deduplication hash handed to moea::Nsga2Ops.
  static std::uint64_t genome_hash(const MappingGenome& genome);

  /// NSGA-II fitness: active objectives + QoS-spec violation. Memoized per
  /// problem instance through a thread-safe genome-keyed cache when caching
  /// is enabled (util::cache_capacity() at construction time > 0); fitness
  /// is a pure function of the genome, so cached and uncached runs are
  /// bit-identical.
  moea::Evaluation evaluate(const MappingGenome& genome) const;

  /// Counters of this problem's fitness cache (zeros when disabled).
  util::CacheStats fitness_cache_stats() const;

  /// Variation/evaluation callbacks bound to this problem. The problem must
  /// outlive the returned ops. `mutation_indpb` is the per-task mutation
  /// probability (paper: 0.05).
  moea::Nsga2Ops<MappingGenome> ops(double mutation_indpb = 0.05) const;

  /// Degraded-mode repair (the permanent-fault scenario axis): rewrite the
  /// PE-choice genes of every task whose decoded PE is marked failed so the
  /// mapping runs entirely on surviving PEs. Displaced tasks are reassigned
  /// greedily by earliest estimated finish time over the surviving
  /// candidates — the heft_clr_mapping assignment rule restricted to the
  /// degraded machine — visited in the genome's schedule-priority order;
  /// tasks already on surviving PEs keep their genes bit for bit. fcCLR
  /// repair keeps each displaced task's implementation and CLR
  /// configuration; pfCLR repair prefers a surviving instance of the chosen
  /// Pareto point's PE type and considers other Pareto points only when that
  /// type has no survivors. Deterministic (ties break on the lowest PE id).
  /// `failed` needs one entry per PE (nonzero = failed). Returns
  /// std::nullopt when some displaced task has no surviving host.
  std::optional<MappingGenome> repair_for_failures(
      const MappingGenome& genome, const std::vector<char>& failed) const;

  /// Translate a genome of this (pfCLR) problem into an equivalent genome of
  /// the fcCLR problem `fc` over the same application and architecture —
  /// the seeding step of the proposed methodology. Throws when called on a
  /// non-pfCLR problem or with a non-fcCLR target.
  MappingGenome translate_to(const ClrMappingProblem& fc,
                             const MappingGenome& genome) const;

  /// log10 of the number of design points in this problem's search space
  /// (Section V-B):
  ///   fcCLR: P^T * T! * prod_t (I_t * |C_t|)
  ///   pfCLR: P^T * T! * prod_t Ipf_t
  /// Logarithmic because the raw counts overflow double well before 100
  /// tasks. |C_t| uses the maximum DVFS cardinality of the platform.
  double log10_design_space_size() const;

 private:
  using FitnessCache =
      util::MemoCache<util::Key128, moea::Evaluation, util::Key128Hash>;

  void build_full_config_tables();
  void build_layout();
  void build_fitness_cache();

  moea::Evaluation evaluate_uncached(const MappingGenome& genome) const;

  ResolvedTask decode_task(const MappingGenome& genome, std::size_t t) const;

  app::Application app_;
  platform::Architecture arch_;
  reliability::TaskAnalyzer analyzer_;
  SystemObjectives objectives_;
  sched::QosSpec spec_;
  reliability::ClrAxes axes_;
  Mode mode_;
  std::unique_ptr<GenomeLayout> layout_;

  /// PE instances grouped by class (index = PeClass) and by type.
  std::vector<std::vector<std::size_t>> pes_by_class_;
  std::vector<std::vector<std::size_t>> pes_by_type_;

  /// fcCLR: metrics_[type][impl][pe_type] is a dense table over the CLR
  /// configuration space (linear index over hw, ssw, asw, dvfs); empty for
  /// incompatible (impl, pe_type) pairs. Only axis-reachable entries are
  /// populated.
  std::vector<std::vector<std::vector<std::vector<reliability::TaskMetrics>>>>
      metrics_;

  /// pfCLR: the tDSE Pareto points per task type.
  std::vector<std::vector<TaskDesignPoint>> points_;

  /// Genome-keyed fitness memo (null only before construction finishes; a
  /// capacity of 0 builds a disabled pass-through cache). MemoCache is
  /// internally synchronized, so concurrent evaluate() calls from the
  /// parallel evaluation engine are safe.
  std::unique_ptr<FitnessCache> fitness_cache_;
};

}  // namespace clrearly::core
