// Multi-scenario (operating-condition-aware) DSE.
//
// The paper's introduction motivates CLR with *varying operating
// conditions*: "while operating at higher altitudes with very high
// fault-rates, using only hardware-based fault-mitigation can lead to
// inadequate functional correctness". A design that is Pareto-optimal at
// ground level may be infeasible at altitude. This extension evaluates every
// design point under a set of fault-environment scenarios and aggregates —
// either expectation over the mission profile (weighted) or worst-case —
// so the DSE produces condition-robust mappings.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"

namespace clrearly::core {

/// One operating condition: a fault-environment multiplier with a mission
/// weight (fraction of operating time spent in this condition).
struct Scenario {
  std::string name;
  double environment_factor = 1.0;
  double weight = 1.0;

  bool operator==(const Scenario&) const = default;
};

/// The task analyzer every clrearly front end (CLI subcommands, the serve
/// daemon, spooled-job replay) builds for an operating condition: the
/// paper-default CLR space, DVFS sensitivity 1.2 and the condition's
/// fault-environment factor. Centralized so a job submitted over the wire
/// is evaluated with bit-identical model parameters to the equivalent
/// offline `clrearly dse --env <factor>` run.
reliability::TaskAnalyzer make_condition_analyzer(double environment_factor);

class ScenarioSet {
 public:
  /// Weights must be positive; they are normalized to sum to 1.
  explicit ScenarioSet(std::vector<Scenario> scenarios);

  /// A two-condition avionics profile: 85% ground level (1x), 15% high
  /// altitude (50x flux).
  static ScenarioSet ground_and_altitude();

  std::size_t size() const noexcept { return scenarios_.size(); }
  const Scenario& scenario(std::size_t i) const;
  const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

 private:
  std::vector<Scenario> scenarios_;
};

// ----------------------------------------------- permanent-fault scenarios

/// Permanent-fault scenario (ROADMAP item 3, following Aliee et al.): which
/// PEs may be lost over the mission and what the degraded mapping must still
/// deliver. Each PE's lifetime follows the Weibull(eta_base, beta) law of
/// its type (beta = 1 is the exponential special case); the scenario asks
/// that a mapping survive the loss of ANY subset of at most `max_failures`
/// PEs — the k-resilience objective ResilientProblem optimizes.
struct ResilienceSpec {
  /// k: number of simultaneous permanent PE failures to certify against.
  /// 0 degenerates to the nominal problem (no failure sets).
  std::size_t max_failures = 1;

  /// Mission time over which the per-PE loss probabilities are evaluated.
  double mission_hours = 20000.0;

  /// Optional dedicated spares: PEs the nominal mapping should keep idle so
  /// they are free to absorb remapped work after a failure. A soft
  /// constraint — every task nominally placed on a spare adds
  /// `spare_penalty_weight` to the violation.
  std::vector<std::size_t> spare_pes;
  double spare_penalty_weight = 1.0;

  /// QoS every repaired (degraded-mode) mapping must satisfy. Typically
  /// looser than the nominal spec; an empty spec only requires
  /// repairability.
  sched::QosSpec degraded_spec;

  /// Throws std::invalid_argument unless max_failures < num_pes,
  /// mission_hours > 0, the penalty weight is non-negative and spare_pes
  /// holds distinct valid PE ids.
  void validate(std::size_t num_pes) const;

  bool operator==(const ResilienceSpec&) const = default;
};

/// P[PE p fails within mission_hours] for every PE instance, from its
/// type's Weibull wear-out law (weibull_eta_base_hours, weibull_beta).
std::vector<double> pe_failure_probabilities(
    const platform::Architecture& architecture, double mission_hours);

/// Every failure mask (one char per PE, nonzero = failed) with 1..k failed
/// PEs, in deterministic order: by failure count, then lexicographically by
/// the failed PE ids. Empty for k = 0.
std::vector<std::vector<char>> enumerate_failure_sets(
    std::size_t num_pes, std::size_t max_failures);

/// Exact-set probability of `failed` under independent per-PE loss
/// probabilities `q`: prod_{failed} q_p * prod_{survivors} (1 - q_p).
double failure_set_probability(const std::vector<double>& q,
                               const std::vector<char>& failed);

// ----------------------------------------------- operating-condition axis

enum class ScenarioAggregation {
  kWeighted,   ///< mission-profile expectation of each objective
  kWorstCase,  ///< componentwise worst objective across scenarios
};

/// Scenario-robust CLR mapping problem: one fcCLR sub-problem per scenario
/// (same application, architecture and genome layout; analyzers differ only
/// in environment factor), objectives aggregated per `aggregation`.
/// Constraint violations always aggregate as the maximum — the QoS spec
/// must hold in *every* condition.
class ScenarioProblem {
 public:
  ScenarioProblem(app::Application application,
                  platform::Architecture architecture,
                  reliability::TaskAnalyzer base_analyzer,
                  ScenarioSet scenarios, SystemObjectives objectives,
                  sched::QosSpec spec,
                  ScenarioAggregation aggregation =
                      ScenarioAggregation::kWeighted);

  const GenomeLayout& layout() const noexcept {
    return problems_.front().layout();
  }
  const ScenarioSet& scenarios() const noexcept { return scenarios_; }
  ScenarioAggregation aggregation() const noexcept { return aggregation_; }

  /// The sub-problem for scenario `i` (e.g. for per-condition reporting).
  const ClrMappingProblem& problem(std::size_t i) const;

  /// QoS of `genome` under every scenario, in scenario order.
  std::vector<sched::QosMetrics> per_scenario_qos(
      const MappingGenome& genome) const;

  /// Aggregated fitness.
  moea::Evaluation evaluate(const MappingGenome& genome) const;

  /// NSGA-II callbacks bound to this problem (must outlive the ops).
  moea::Nsga2Ops<MappingGenome> ops(double mutation_indpb = 0.05) const;

 private:
  ScenarioSet scenarios_;
  SystemObjectives objectives_;
  ScenarioAggregation aggregation_;
  std::vector<ClrMappingProblem> problems_;  // parallel to scenarios_
};

}  // namespace clrearly::core
