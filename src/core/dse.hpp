// The multi-stage system-level DSE methodology (Section V-B, Fig. 4).
//
//   fcCLR    — problem-agnostic GA over the full configuration space
//              (the Das et al. DATE'14 extension the paper compares against).
//   pfCLR    — GA over tDSE's task-level Pareto-filtered implementations
//              only (design-space pruning).
//   proposed — pfCLR first; its final Pareto front is translated into
//              full-configuration genomes and seeds a second, guided fcCLR
//              run ("seeded search" of Fig. 4b).
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "core/resilience.hpp"
#include "core/tdse.hpp"
#include "moea/island.hpp"

namespace clrearly::core {

struct DseOptions {
  moea::Nsga2Params ga;               ///< population/generations/operator rates
  /// Island-model sharding of the GA population (docs/SCALING.md). The
  /// default single island follows the exact historical run_nsga2 path, so
  /// existing results are bit-identical.
  moea::IslandParams island;
  SystemObjectives objectives;        ///< system-level metrics to minimize
  sched::QosSpec spec;                ///< QoS constraints (Eq. 5)
  TdseObjectives tdse_objectives = TdseObjectives::tdse_run(1);
  std::uint64_t seed = 1;             ///< master RNG seed

  /// Seed every fcCLR-encoded GA population with the HEFT + greedy-hardening
  /// heuristic's design (core/heuristics). Deterministic, costs milliseconds,
  /// and guarantees the population starts with a good (often feasible)
  /// individual.
  bool heuristic_seed = false;

  /// Permanent-fault scenario axis for run_kresilient (ignored by the other
  /// flows): certify mappings against the loss of any `resilience.max_failures`
  /// PEs over the mission.
  ResilienceSpec resilience;
};

/// Result of one DSE flow: the final Pareto front (objective vectors and the
/// genomes behind them) and the number of fitness evaluations spent.
struct DseOutcome {
  std::vector<moea::Objectives> front;
  std::vector<MappingGenome> front_genomes;
  std::size_t evaluations = 0;
};

class DseMethodology {
 public:
  DseMethodology(app::Application application,
                 platform::Architecture architecture,
                 reliability::TaskAnalyzer analyzer);

  const app::Application& application() const noexcept { return app_; }
  const platform::Architecture& architecture() const noexcept { return arch_; }
  const reliability::TaskAnalyzer& analyzer() const noexcept {
    return analyzer_;
  }

  /// tDSE over every task type with the options' task-level objectives.
  std::vector<TdseResult> run_tdse(const DseOptions& options) const;

  /// Full-configuration GA (baseline).
  DseOutcome run_fcclr(const DseOptions& options) const;

  /// Pareto-filtered GA; runs tDSE internally.
  DseOutcome run_pfclr(const DseOptions& options) const;

  /// Pareto-filtered GA over precomputed tDSE results (lets callers share
  /// one tDSE across flows, as the paper's Fig. 10 experiment does).
  DseOutcome run_pfclr(const DseOptions& options,
                       const std::vector<TdseResult>& tdse) const;

  /// The proposed two-stage flow (pfCLR-seeded fcCLR).
  DseOutcome run_proposed(const DseOptions& options) const;
  DseOutcome run_proposed(const DseOptions& options,
                          const std::vector<TdseResult>& tdse) const;

  /// k-resilient flow: fcCLR-encoded GA whose fitness certifies every
  /// candidate against the loss of any options.resilience.max_failures PEs
  /// (core/resilience). Heuristic seeding uses the same HEFT + greedy
  /// hardening design the nominal flows seed with. Returned front points are
  /// k-resilient: feasible under the nominal spec AND under the degraded
  /// spec for every enumerated failure set.
  DseOutcome run_kresilient(const DseOptions& options) const;

  /// Problem-sharing variants: run a flow against caller-owned problem
  /// instances instead of constructing fresh ones per call. The problems
  /// must have been built over this methodology's application, architecture
  /// and analyzer with the options' objectives and spec (build_fcclr_problem
  /// / build_pfclr_problem produce exactly that). Because ClrMappingProblem
  /// evaluation is a memoized pure function, a reused problem keeps its
  /// genome-fitness cache warm across calls — the mechanism the serve
  /// daemon's cross-request cache sharing is built on — while the search
  /// itself follows the exact same code path as the one-shot entry points,
  /// so results stay bit-identical run for run.
  DseOutcome run_fcclr(const DseOptions& options,
                       const ClrMappingProblem& fc) const;
  DseOutcome run_pfclr(const DseOptions& options,
                       const ClrMappingProblem& pf) const;
  DseOutcome run_proposed(const DseOptions& options,
                          const ClrMappingProblem& pf,
                          const ClrMappingProblem& fc) const;
  DseOutcome run_kresilient(const DseOptions& options,
                            const ResilientProblem& problem) const;

  /// Construct the problems the flows above run over (the same construction
  /// the one-shot entry points perform internally).
  ClrMappingProblem build_fcclr_problem(const DseOptions& options) const;
  ClrMappingProblem build_pfclr_problem(
      const DseOptions& options, const std::vector<TdseResult>& tdse) const;
  ResilientProblem build_resilient_problem(const DseOptions& options) const;

 private:
  static DseOutcome collect(const ClrMappingProblem& problem,
                            moea::Nsga2Result<MappingGenome> result);

  app::Application app_;
  platform::Architecture arch_;
  reliability::TaskAnalyzer analyzer_;
};

}  // namespace clrearly::core
