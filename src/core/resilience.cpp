#include "core/resilience.hpp"

#include <algorithm>
#include <utility>

#include "util/memo_cache.hpp"

namespace clrearly::core {

ResilientProblem::ResilientProblem(app::Application application,
                                   platform::Architecture architecture,
                                   reliability::TaskAnalyzer analyzer,
                                   ResilienceSpec resilience,
                                   SystemObjectives objectives,
                                   sched::QosSpec spec)
    : resilience_(std::move(resilience)),
      nominal_(std::move(application), std::move(architecture),
               std::move(analyzer), objectives, spec) {
  const std::size_t num_pes = nominal_.architecture().num_pes();
  resilience_.validate(num_pes);
  failure_probs_ = pe_failure_probabilities(nominal_.architecture(),
                                            resilience_.mission_hours);
  failure_sets_ =
      enumerate_failure_sets(num_pes, resilience_.max_failures);
  spare_mask_.assign(num_pes, 0);
  for (std::size_t pe : resilience_.spare_pes) spare_mask_[pe] = 1;
  fitness_cache_ =
      std::make_unique<FitnessCache>(util::cache_capacity(), "fitness");
}

std::vector<ResilientProblem::DegradedMode> ResilientProblem::degraded_modes(
    const MappingGenome& genome) const {
  std::vector<DegradedMode> modes;
  modes.reserve(failure_sets_.size());
  for (const std::vector<char>& failed : failure_sets_) {
    DegradedMode mode;
    mode.failed = failed;
    mode.probability = failure_set_probability(failure_probs_, failed);
    std::optional<MappingGenome> repaired =
        nominal_.repair_for_failures(genome, failed);
    if (repaired.has_value()) {
      mode.repairable = true;
      mode.mapping = std::move(*repaired);
      mode.qos = nominal_.qos(mode.mapping);
      mode.violation = resilience_.degraded_spec.violation(mode.qos);
    }
    modes.push_back(std::move(mode));
  }
  return modes;
}

moea::Evaluation ResilientProblem::evaluate_uncached(
    const MappingGenome& genome) const {
  const sched::QosMetrics nominal_qos = nominal_.qos(genome);
  moea::Evaluation eval;
  eval.objectives = nominal_.objectives().extract(nominal_qos);
  eval.violation = nominal_.spec().violation(nominal_qos);

  // Spare occupancy: every task the healthy mapping places on a declared
  // spare erodes the capacity margin the spares exist to provide.
  if (!resilience_.spare_pes.empty()) {
    for (const ClrMappingProblem::ResolvedTask& task :
         nominal_.resolve(genome)) {
      if (spare_mask_[task.pe]) {
        eval.violation += resilience_.spare_penalty_weight;
      }
    }
  }

  // Worst-case certification: the degraded spec must hold after the loss of
  // ANY enumerated failure set.
  double worst_degraded = 0.0;
  for (const std::vector<char>& failed : failure_sets_) {
    const std::optional<MappingGenome> repaired =
        nominal_.repair_for_failures(genome, failed);
    if (!repaired.has_value()) {
      double count = 0.0;
      for (char f : failed) count += f != 0;
      worst_degraded = std::max(worst_degraded, 1.0 + count);
      continue;
    }
    worst_degraded =
        std::max(worst_degraded,
                 resilience_.degraded_spec.violation(nominal_.qos(*repaired)));
  }
  eval.violation += worst_degraded;
  return eval;
}

moea::Evaluation ResilientProblem::evaluate(
    const MappingGenome& genome) const {
  if (!fitness_cache_ || !fitness_cache_->enabled()) {
    return evaluate_uncached(genome);
  }
  return fitness_cache_->get_or_compute(
      ClrMappingProblem::genome_key(genome),
      [&] { return evaluate_uncached(genome); });
}

util::CacheStats ResilientProblem::fitness_cache_stats() const {
  return fitness_cache_ ? fitness_cache_->stats() : util::CacheStats{};
}

moea::Nsga2Ops<MappingGenome> ResilientProblem::ops(
    double mutation_indpb) const {
  moea::Nsga2Ops<MappingGenome> ops = nominal_.ops(mutation_indpb);
  ops.evaluate = [this](const MappingGenome& g) { return evaluate(g); };
  return ops;
}

ResilientProblem::AnalyticPrediction ResilientProblem::analytic_prediction(
    const MappingGenome& genome) const {
  AnalyticPrediction pred;
  double p_nominal = 1.0;
  for (double q : failure_probs_) p_nominal *= 1.0 - q;

  const sched::QosMetrics nominal_qos = nominal_.qos(genome);
  pred.availability = p_nominal;
  double makespan_acc = p_nominal * nominal_qos.makespan_us;
  double error_acc = p_nominal * nominal_qos.error_prob;
  double energy_acc = p_nominal * nominal_qos.energy_uj;
  pred.worst_makespan_us = nominal_qos.makespan_us;
  pred.worst_error_prob = nominal_qos.error_prob;

  for (const DegradedMode& mode : degraded_modes(genome)) {
    if (!mode.repairable) continue;
    pred.availability += mode.probability;
    makespan_acc += mode.probability * mode.qos.makespan_us;
    error_acc += mode.probability * mode.qos.error_prob;
    energy_acc += mode.probability * mode.qos.energy_uj;
    pred.worst_makespan_us =
        std::max(pred.worst_makespan_us, mode.qos.makespan_us);
    pred.worst_error_prob =
        std::max(pred.worst_error_prob, mode.qos.error_prob);
  }

  if (pred.availability > 0.0) {
    pred.expected_makespan_us = makespan_acc / pred.availability;
    pred.expected_error_prob = error_acc / pred.availability;
    pred.expected_energy_uj = energy_acc / pred.availability;
  }
  return pred;
}

}  // namespace clrearly::core
