// The GA encoding of Fig. 5.
//
// An individual is (a) a permutation of the task ids — the implicit schedule
// priority — and (b) a per-task tuple of bounded integer genes: for pfCLR the
// Pareto-point index and the PE-instance selector; for fcCLR the
// implementation index, PE selector and the four CLR decision fields
// (HWRel, SSWRel, ASWRel, DVFS). GenomeLayout owns the field cardinalities
// and implements the paper's four variation operators on this structure.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "moea/operators.hpp"
#include "util/rng.hpp"

namespace clrearly::core {

/// One GA individual: schedule permutation + flattened per-task genes.
struct MappingGenome {
  moea::Permutation order;       ///< task ids in schedule-priority order
  moea::GeneVector genes;        ///< num_tasks * fields_per_task values

  bool operator==(const MappingGenome&) const = default;
};

class GenomeLayout {
 public:
  /// `cardinalities` has num_tasks * fields_per_task entries (task-major);
  /// every entry must be >= 1. Gene values are kept in [0, cardinality).
  GenomeLayout(std::size_t num_tasks, std::size_t fields_per_task,
               std::vector<std::size_t> cardinalities);

  std::size_t num_tasks() const noexcept { return num_tasks_; }
  std::size_t fields_per_task() const noexcept { return fields_per_task_; }
  std::size_t gene_count() const noexcept { return cardinalities_.size(); }
  const std::vector<std::size_t>& cardinalities() const noexcept {
    return cardinalities_;
  }

  std::size_t cardinality(std::size_t task, std::size_t field) const;

  /// Value of (task, field) in `g`.
  std::size_t gene(const MappingGenome& g, std::size_t task,
                   std::size_t field) const;
  void set_gene(MappingGenome& g, std::size_t task, std::size_t field,
                std::size_t value) const;

  /// Uniformly random genome (random permutation + uniform genes).
  MappingGenome random(util::Rng& rng) const;

  /// The paper's crossover: with equal probability either the two-point
  /// exchange of configuration genes or the single-point order crossover of
  /// the scheduling permutation. Parents are untouched; children returned.
  std::pair<MappingGenome, MappingGenome> crossover(const MappingGenome& a,
                                                    const MappingGenome& b,
                                                    util::Rng& rng) const;

  /// The paper's mutation: with equal probability either a single-point
  /// random reset of one configuration gene or a two-point swap in the
  /// scheduling permutation. In place.
  void mutate(MappingGenome& g, util::Rng& rng) const;

  /// Per-task mutation (DEAP indpb convention, the paper's pm = 0.05): each
  /// task independently has one of its configuration genes reset with
  /// probability `per_task_prob`, and one scheduling swap is applied with
  /// probability min(1, per_task_prob * num_tasks). In place.
  void mutate(MappingGenome& g, util::Rng& rng, double per_task_prob) const;

  /// Structural check (sizes, permutation validity, gene ranges); throws
  /// std::invalid_argument on violation.
  void validate(const MappingGenome& g) const;

 private:
  std::size_t num_tasks_;
  std::size_t fields_per_task_;
  std::vector<std::size_t> cardinalities_;
};

}  // namespace clrearly::core
