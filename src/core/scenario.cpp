#include "core/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "reliability/clr_config.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/weibull.hpp"

namespace clrearly::core {

reliability::TaskAnalyzer make_condition_analyzer(double environment_factor) {
  reliability::FaultEnvironment env;
  env.dvfs_sensitivity = 1.2;
  env.environment_factor = environment_factor;
  return reliability::TaskAnalyzer(reliability::ClrSpace::paper_default(), env,
                                   reliability::ThermalModel{},
                                   reliability::ArrheniusAging{});
}

void ResilienceSpec::validate(std::size_t num_pes) const {
  if (num_pes == 0) {
    throw std::invalid_argument("ResilienceSpec: architecture has no PEs");
  }
  if (max_failures >= num_pes) {
    throw std::invalid_argument(
        "ResilienceSpec: max_failures must be smaller than the PE count");
  }
  if (!(mission_hours > 0.0)) {
    throw std::invalid_argument("ResilienceSpec: mission_hours must be "
                                "positive");
  }
  if (spare_penalty_weight < 0.0) {
    throw std::invalid_argument(
        "ResilienceSpec: spare_penalty_weight must be non-negative");
  }
  std::vector<char> seen(num_pes, 0);
  for (std::size_t pe : spare_pes) {
    if (pe >= num_pes) {
      throw std::invalid_argument("ResilienceSpec: spare PE id out of range");
    }
    if (seen[pe]) {
      throw std::invalid_argument("ResilienceSpec: duplicate spare PE id");
    }
    seen[pe] = 1;
  }
}

std::vector<double> pe_failure_probabilities(
    const platform::Architecture& architecture, double mission_hours) {
  if (!(mission_hours > 0.0)) {
    throw std::invalid_argument(
        "pe_failure_probabilities: mission_hours must be positive");
  }
  std::vector<double> q;
  q.reserve(architecture.num_pes());
  for (const platform::Pe& pe : architecture.pes()) {
    const platform::PeType& type = architecture.type_of(pe.id);
    q.push_back(reliability::Weibull(type.weibull_eta_base_hours,
                                     type.weibull_beta)
                    .cdf(mission_hours));
  }
  return q;
}

std::vector<std::vector<char>> enumerate_failure_sets(
    std::size_t num_pes, std::size_t max_failures) {
  std::vector<std::vector<char>> sets;
  // Size-ordered combinations: for each count the index vector starts at
  // (0, 1, ..., count-1) and advances odometer-style, which is exactly
  // lexicographic order over the failed PE ids.
  for (std::size_t count = 1;
       count <= max_failures && count <= num_pes; ++count) {
    std::vector<std::size_t> combo(count);
    for (std::size_t i = 0; i < count; ++i) combo[i] = i;
    while (true) {
      std::vector<char> mask(num_pes, 0);
      for (std::size_t pe : combo) mask[pe] = 1;
      sets.push_back(std::move(mask));
      // Advance: bump the rightmost index that still has headroom.
      std::size_t i = count;
      while (i > 0 && combo[i - 1] == num_pes - count + (i - 1)) --i;
      if (i == 0) break;
      ++combo[i - 1];
      for (std::size_t j = i; j < count; ++j) combo[j] = combo[j - 1] + 1;
    }
  }
  return sets;
}

double failure_set_probability(const std::vector<double>& q,
                               const std::vector<char>& failed) {
  if (q.size() != failed.size()) {
    throw std::invalid_argument(
        "failure_set_probability: mask and probability sizes differ");
  }
  double p = 1.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    p *= failed[i] ? q[i] : 1.0 - q[i];
  }
  return p;
}

ScenarioSet::ScenarioSet(std::vector<Scenario> scenarios)
    : scenarios_(std::move(scenarios)) {
  if (scenarios_.empty()) {
    throw std::invalid_argument("ScenarioSet: need at least one scenario");
  }
  double total = 0.0;
  for (const Scenario& s : scenarios_) {
    if (s.environment_factor <= 0.0) {
      throw std::invalid_argument(
          "ScenarioSet: environment factor must be positive");
    }
    if (s.weight <= 0.0) {
      throw std::invalid_argument("ScenarioSet: weights must be positive");
    }
    total += s.weight;
  }
  for (Scenario& s : scenarios_) s.weight /= total;
}

ScenarioSet ScenarioSet::ground_and_altitude() {
  return ScenarioSet({{"ground", 1.0, 0.85}, {"altitude", 50.0, 0.15}});
}

const Scenario& ScenarioSet::scenario(std::size_t i) const {
  if (i >= scenarios_.size()) {
    throw std::out_of_range("ScenarioSet::scenario");
  }
  return scenarios_[i];
}

ScenarioProblem::ScenarioProblem(app::Application application,
                                 platform::Architecture architecture,
                                 reliability::TaskAnalyzer base_analyzer,
                                 ScenarioSet scenarios,
                                 SystemObjectives objectives,
                                 sched::QosSpec spec,
                                 ScenarioAggregation aggregation)
    : scenarios_(std::move(scenarios)),
      objectives_(objectives),
      aggregation_(aggregation) {
  problems_.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_.scenarios()) {
    problems_.emplace_back(
        application, architecture,
        base_analyzer.with_environment_factor(scenario.environment_factor),
        objectives, spec);
  }
}

const ClrMappingProblem& ScenarioProblem::problem(std::size_t i) const {
  if (i >= problems_.size()) {
    throw std::out_of_range("ScenarioProblem::problem");
  }
  return problems_[i];
}

std::vector<sched::QosMetrics> ScenarioProblem::per_scenario_qos(
    const MappingGenome& genome) const {
  std::vector<sched::QosMetrics> out;
  out.reserve(problems_.size());
  for (const ClrMappingProblem& problem : problems_) {
    out.push_back(problem.qos(genome));
  }
  return out;
}

moea::Evaluation ScenarioProblem::evaluate(const MappingGenome& genome) const {
  moea::Evaluation aggregate;
  for (std::size_t i = 0; i < problems_.size(); ++i) {
    const moea::Evaluation eval = problems_[i].evaluate(genome);
    if (i == 0) {
      aggregate.objectives.assign(eval.objectives.size(), 0.0);
      if (aggregation_ == ScenarioAggregation::kWorstCase) {
        aggregate.objectives = eval.objectives;
      }
    }
    if (aggregation_ == ScenarioAggregation::kWeighted) {
      const double w = scenarios_.scenario(i).weight;
      for (std::size_t k = 0; k < eval.objectives.size(); ++k) {
        aggregate.objectives[k] += w * eval.objectives[k];
      }
    } else {
      for (std::size_t k = 0; k < eval.objectives.size(); ++k) {
        aggregate.objectives[k] =
            std::max(aggregate.objectives[k], eval.objectives[k]);
      }
    }
    // The QoS spec must hold in every operating condition.
    aggregate.violation = std::max(aggregate.violation, eval.violation);
  }
  return aggregate;
}

moea::Nsga2Ops<MappingGenome> ScenarioProblem::ops(
    double mutation_indpb) const {
  moea::Nsga2Ops<MappingGenome> ops = problems_.front().ops(mutation_indpb);
  ops.evaluate = [this](const MappingGenome& g) { return evaluate(g); };
  return ops;
}

}  // namespace clrearly::core
