// Early-stage feasibility assessment — the "is this platform / QoS spec
// combination even worth exploring?" question the paper's introduction poses
// ("an early-stage exploration is necessary for determining the feasibility
// of different methods and hardware platforms").
//
// Before any GA runs, mapping-independent bounds answer it in milliseconds:
//
//   * Functional reliability upper bound — each task's best achievable error
//     probability over its whole (impl, PE type, CLR config) space gives
//     max Fapp = 1 - sum_t zeta_t * min_err_t. If the spec's floor exceeds
//     it, the problem is infeasible, full stop.
//   * Makespan lower bound — the larger of the critical path under each
//     task's fastest configuration and total-fastest-work / P. If the spec's
//     deadline is below it, infeasible.
//
// Both are *necessary* conditions: passing them does not guarantee a
// feasible mapping exists (resource contention may still bite), but failing
// them is a certificate of infeasibility. The per-layer variants reproduce
// the Fig. 7 story analytically: which single layers cannot possibly meet
// the spec.
#pragma once

#include <string>
#include <vector>

#include "app/task_graph.hpp"
#include "platform/architecture.hpp"
#include "reliability/task_metrics.hpp"
#include "sched/qos.hpp"

namespace clrearly::core {

struct LayerFeasibility {
  std::string layer;                 ///< "CLR", "DVFS", "HWRel", ...
  double max_functional_rel = 0.0;   ///< best achievable Fapp bound
  double min_makespan_us = 0.0;      ///< makespan lower bound
  bool reliability_possible = true;  ///< passes the spec's Fapp floor
  bool deadline_possible = true;     ///< passes the spec's makespan limit
};

struct FeasibilityReport {
  /// Full cross-layer space first, then one entry per single-layer
  /// restriction (DVFS / HWRel / SSWRel / ASWRel).
  std::vector<LayerFeasibility> layers;

  /// The full-CLR entry's verdict: false = certified infeasible.
  bool possibly_feasible = false;

  const LayerFeasibility& clr() const { return layers.front(); }
};

/// Assess `application` on `architecture` against `spec`. Cost: one tDSE
/// enumeration per task type per layer restriction (milliseconds; no GA).
FeasibilityReport assess_feasibility(
    const app::Application& application,
    const platform::Architecture& architecture,
    const reliability::TaskAnalyzer& analyzer, const sched::QosSpec& spec);

}  // namespace clrearly::core
