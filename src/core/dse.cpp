#include "core/dse.hpp"

#include <utility>

#include "core/heuristics.hpp"
#include "util/log.hpp"
#include "util/observability.hpp"

namespace clrearly::core {

DseMethodology::DseMethodology(app::Application application,
                               platform::Architecture architecture,
                               reliability::TaskAnalyzer analyzer)
    : app_(std::move(application)),
      arch_(std::move(architecture)),
      analyzer_(std::move(analyzer)) {
  app_.validate();
}

std::vector<TdseResult> DseMethodology::run_tdse(
    const DseOptions& options) const {
  const util::PhaseTimer timer("dse.tdse");
  const Tdse tdse(analyzer_);
  return tdse.run_application(app_, arch_, options.tdse_objectives);
}

DseOutcome DseMethodology::collect(const ClrMappingProblem& problem,
                                   moea::Nsga2Result<MappingGenome> result) {
  DseOutcome outcome;
  outcome.evaluations = result.evaluations;
  // The final population typically holds many copies of each front point;
  // report each distinct objective vector once, and only feasible ones —
  // a design violating the QoS spec is not a solution of Eq. 5, even when
  // the run found nothing better.
  for (std::size_t i : result.front) {
    if (result.population[i].eval.violation > 0.0) continue;
    const moea::Objectives& obj = result.population[i].eval.objectives;
    bool duplicate = false;
    for (const moea::Objectives& seen : outcome.front) {
      if (seen == obj) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    outcome.front.push_back(obj);
    outcome.front_genomes.push_back(std::move(result.population[i].genome));
  }
  (void)problem;
  return outcome;
}

ClrMappingProblem DseMethodology::build_fcclr_problem(
    const DseOptions& options) const {
  return ClrMappingProblem(app_, arch_, analyzer_, options.objectives,
                           options.spec);
}

ResilientProblem DseMethodology::build_resilient_problem(
    const DseOptions& options) const {
  return ResilientProblem(app_, arch_, analyzer_, options.resilience,
                          options.objectives, options.spec);
}

ClrMappingProblem DseMethodology::build_pfclr_problem(
    const DseOptions& options, const std::vector<TdseResult>& tdse) const {
  std::vector<std::vector<TaskDesignPoint>> points;
  points.reserve(tdse.size());
  for (const TdseResult& r : tdse) points.push_back(r.pareto);
  return ClrMappingProblem(app_, arch_, analyzer_, options.objectives,
                           options.spec, std::move(points));
}

DseOutcome DseMethodology::run_fcclr(const DseOptions& options) const {
  return run_fcclr(options, build_fcclr_problem(options));
}

DseOutcome DseMethodology::run_fcclr(const DseOptions& options,
                                     const ClrMappingProblem& problem) const {
  const util::PhaseTimer timer("dse.fcclr");
  util::Rng rng(options.seed);
  util::log_info() << "fcCLR: " << app_.graph.num_tasks() << " tasks, "
                   << problem.layout().gene_count() << " genes";
  std::vector<MappingGenome> seeds;
  if (options.heuristic_seed) {
    seeds.push_back(heft_clr_mapping(problem).genome);
  }
  auto result = moea::run_island_nsga2(
      options.ga, options.island, problem.ops(options.ga.mutation_indpb), rng,
      std::move(seeds));
  return collect(problem, std::move(result));
}

DseOutcome DseMethodology::run_kresilient(const DseOptions& options) const {
  return run_kresilient(options, build_resilient_problem(options));
}

DseOutcome DseMethodology::run_kresilient(
    const DseOptions& options, const ResilientProblem& problem) const {
  const util::PhaseTimer timer("dse.kresilient");
  util::Rng rng(options.seed);
  util::log_info() << "kresilient: " << app_.graph.num_tasks() << " tasks, "
                   << problem.layout().gene_count() << " genes, k="
                   << problem.resilience().max_failures;
  std::vector<MappingGenome> seeds;
  if (options.heuristic_seed) {
    seeds.push_back(heft_clr_mapping(problem.nominal()).genome);
  }
  auto result = moea::run_island_nsga2(
      options.ga, options.island, problem.ops(options.ga.mutation_indpb), rng,
      std::move(seeds));
  return collect(problem.nominal(), std::move(result));
}

DseOutcome DseMethodology::run_pfclr(const DseOptions& options) const {
  return run_pfclr(options, run_tdse(options));
}

DseOutcome DseMethodology::run_pfclr(
    const DseOptions& options, const std::vector<TdseResult>& tdse) const {
  return run_pfclr(options, build_pfclr_problem(options, tdse));
}

DseOutcome DseMethodology::run_pfclr(const DseOptions& options,
                                     const ClrMappingProblem& problem) const {
  const util::PhaseTimer timer("dse.pfclr");
  util::Rng rng(options.seed);
  util::log_info() << "pfCLR: " << app_.graph.num_tasks() << " tasks, "
                   << problem.layout().gene_count() << " genes";
  auto result = moea::run_island_nsga2(
      options.ga, options.island, problem.ops(options.ga.mutation_indpb), rng);
  return collect(problem, std::move(result));
}

DseOutcome DseMethodology::run_proposed(const DseOptions& options) const {
  return run_proposed(options, run_tdse(options));
}

DseOutcome DseMethodology::run_proposed(
    const DseOptions& options, const std::vector<TdseResult>& tdse) const {
  return run_proposed(options, build_pfclr_problem(options, tdse),
                      build_fcclr_problem(options));
}

DseOutcome DseMethodology::run_proposed(const DseOptions& options,
                                        const ClrMappingProblem& pf,
                                        const ClrMappingProblem& fc) const {
  const util::PhaseTimer timer("dse.proposed");
  // Stage 1: pruned search.
  util::Rng rng(options.seed);
  moea::Nsga2Result<MappingGenome> pf_result;
  {
    const util::PhaseTimer stage_timer("dse.proposed.pfclr_stage");
    pf_result = moea::run_island_nsga2(
        options.ga, options.island, pf.ops(options.ga.mutation_indpb), rng);
  }

  // Stage 2: full-configuration search seeded with stage 1's front.
  std::vector<MappingGenome> seeds;
  seeds.reserve(pf_result.front.size() + 1);
  if (options.heuristic_seed) {
    seeds.push_back(heft_clr_mapping(fc).genome);
  }
  for (std::size_t i : pf_result.front) {
    seeds.push_back(pf.translate_to(fc, pf_result.population[i].genome));
  }
  util::log_info() << "proposed: seeding fcCLR with " << seeds.size()
                   << " pfCLR front genomes";
  moea::Nsga2Result<MappingGenome> fc_result;
  {
    const util::PhaseTimer stage_timer("dse.proposed.fcclr_stage");
    fc_result = moea::run_island_nsga2(options.ga, options.island,
                                       fc.ops(options.ga.mutation_indpb), rng,
                                       std::move(seeds));
  }

  DseOutcome outcome = collect(fc, std::move(fc_result));
  outcome.evaluations += pf_result.evaluations;
  return outcome;
}

}  // namespace clrearly::core
