#include "core/heuristics.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>

namespace clrearly::core {

namespace {

/// Baseline (unprotected, nominal-DVFS) metrics of implementation `impl` of
/// task type `type` on PE type `pe_type`.
struct Candidate {
  std::size_t impl = 0;
  std::size_t pe_type = 0;
  reliability::TaskMetrics metrics;
};

}  // namespace

HeuristicResult heft_clr_mapping(const ClrMappingProblem& problem) {
  if (problem.mode() != ClrMappingProblem::Mode::kFullConfig) {
    throw std::invalid_argument(
        "heft_clr_mapping: requires a full-configuration (fcCLR) problem");
  }
  const app::Application& application = problem.application();
  const platform::Architecture& arch = problem.architecture();
  const reliability::TaskAnalyzer& analyzer = problem.analyzer();
  const GenomeLayout& layout = problem.layout();
  const std::size_t n = application.graph.num_tasks();

  // --- Baseline candidates per task type -------------------------------------
  const std::size_t num_types = application.graph.num_types();
  std::vector<std::vector<Candidate>> candidates(num_types);
  for (std::size_t type = 0; type < num_types; ++type) {
    for (std::size_t impl = 0; impl < application.impls[type].size(); ++impl) {
      for (std::size_t pt = 0; pt < arch.num_types(); ++pt) {
        const platform::PeType& pe = arch.type(pt);
        if (!application.impls[type][impl].runs_on(pe)) continue;
        if (arch.pes_of_type(pt).empty()) continue;
        Candidate c;
        c.impl = impl;
        c.pe_type = pt;
        c.metrics = analyzer.evaluate(application.impls[type][impl], pe,
                                      reliability::ClrConfig{});
        candidates[type].push_back(c);
      }
    }
    if (candidates[type].empty()) {
      throw std::invalid_argument(
          "heft_clr_mapping: task type " + std::to_string(type) +
          " has no hostable implementation");
    }
  }

  // --- Upward ranks over mean baseline execution times ------------------------
  std::vector<double> mean_exec(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t type = application.graph.task(t).type;
    double acc = 0.0;
    for (const Candidate& c : candidates[type]) {
      acc += c.metrics.avg_exec_time_us;
    }
    mean_exec[t] = acc / static_cast<double>(candidates[type].size());
  }
  std::vector<double> rank(n, 0.0);
  const auto topo = application.graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t t = *it;
    double downstream = 0.0;
    for (std::size_t succ : application.graph.successors(t)) {
      downstream = std::max(downstream, rank[succ]);
    }
    rank[t] = mean_exec[t] + downstream;
  }
  // Decreasing upward rank is a valid topological order (ranks are strictly
  // larger than every successor's since execution times are positive).
  std::vector<std::size_t> order(n);
  for (std::size_t t = 0; t < n; ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;
  });

  // --- Earliest-finish-time assignment ----------------------------------------
  std::vector<double> pe_free(arch.num_pes(), 0.0);
  std::vector<double> ready(n, 0.0);
  std::vector<std::size_t> chosen_impl(n, 0);
  std::vector<std::size_t> chosen_pe(n, 0);
  for (std::size_t t : order) {
    const std::size_t type = application.graph.task(t).type;
    double best_finish = std::numeric_limits<double>::infinity();
    std::size_t best_impl = 0, best_pe = 0;
    double best_exec = 0.0;
    for (const Candidate& c : candidates[type]) {
      for (std::size_t pe : arch.pes_of_type(c.pe_type)) {
        const double start = std::max(pe_free[pe], ready[t]);
        const double finish = start + c.metrics.avg_exec_time_us;
        if (finish < best_finish) {
          best_finish = finish;
          best_impl = c.impl;
          best_pe = pe;
          best_exec = c.metrics.avg_exec_time_us;
        }
      }
    }
    (void)best_exec;
    chosen_impl[t] = best_impl;
    chosen_pe[t] = best_pe;
    pe_free[best_pe] = best_finish;
    for (std::size_t succ : application.graph.successors(t)) {
      ready[succ] = std::max(ready[succ], best_finish);
    }
  }

  // --- Genome assembly ----------------------------------------------------------
  MappingGenome genome;
  genome.order = order;
  genome.genes.assign(layout.gene_count(), 0);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t type = application.graph.task(t).type;
    const platform::PeClass cls =
        application.impls[type][chosen_impl[t]].target;
    // Position of the chosen PE within the class-compatible list (the
    // decode's selector semantics).
    std::size_t selector = 0, seen = 0;
    for (const platform::Pe& pe : arch.pes()) {
      if (arch.type_of(pe.id).pe_class != cls) continue;
      if (pe.id == chosen_pe[t]) {
        selector = seen;
        break;
      }
      ++seen;
    }
    layout.set_gene(genome, t, ClrMappingProblem::kFieldImpl, chosen_impl[t]);
    layout.set_gene(genome, t, ClrMappingProblem::kFieldPeSel, selector);
    // hw/ssw/asw/dvfs start at the unprotected baseline (0).
  }

  // --- Greedy hardening against the functional-reliability floor ------------------
  HeuristicResult result;
  result.genome = genome;
  result.qos = problem.qos(result.genome);

  // Per-(type, impl, pe_type) configuration menus, evaluated lazily.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
           std::vector<std::pair<reliability::ClrConfig,
                                 reliability::TaskMetrics>>>
      menus;
  auto menu_for = [&](std::size_t type, std::size_t impl,
                      std::size_t pe_type) -> const auto& {
    const auto key = std::make_tuple(type, impl, pe_type);
    auto it = menus.find(key);
    if (it == menus.end()) {
      const platform::PeType& pe = arch.type(pe_type);
      std::vector<std::pair<reliability::ClrConfig, reliability::TaskMetrics>>
          menu;
      for (const reliability::ClrConfig& cfg :
           analyzer.space().enumerate(pe.dvfs.size(), problem.axes())) {
        menu.emplace_back(
            cfg, analyzer.evaluate(application.impls[type][impl], pe, cfg));
      }
      it = menus.emplace(key, std::move(menu)).first;
    }
    return it->second;
  };

  const std::vector<double> zeta =
      application.graph.normalized_criticality();
  std::vector<bool> exhausted(n, false);
  while (problem.spec().min_functional_rel &&
         result.qos.functional_rel < *problem.spec().min_functional_rel) {
    // Largest criticality-weighted error contributor that still has upgrades.
    const auto decisions = problem.decode(result.genome);
    std::size_t worst = n;
    double worst_contribution = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (exhausted[t]) continue;
      const double contribution = zeta[t] * decisions[t].metrics.error_prob;
      if (worst == n || contribution > worst_contribution) {
        worst = t;
        worst_contribution = contribution;
      }
    }
    if (worst == n) break;  // nothing upgradeable remains

    const std::size_t type = application.graph.task(worst).type;
    const std::size_t pe_type = arch.pe(decisions[worst].pe).type_index;
    const double current_err = decisions[worst].metrics.error_prob;

    // Cheapest configuration (by average time) that strictly improves error.
    const auto& menu = menu_for(type, chosen_impl[worst], pe_type);
    const std::pair<reliability::ClrConfig, reliability::TaskMetrics>* pick =
        nullptr;
    for (const auto& entry : menu) {
      if (entry.second.error_prob >= current_err * 0.999) continue;
      if (pick == nullptr ||
          entry.second.avg_exec_time_us < pick->second.avg_exec_time_us) {
        pick = &entry;
      }
    }
    if (pick == nullptr) {
      exhausted[worst] = true;
      continue;
    }
    layout.set_gene(result.genome, worst, ClrMappingProblem::kFieldHw,
                    pick->first.hw);
    layout.set_gene(result.genome, worst, ClrMappingProblem::kFieldSsw,
                    pick->first.ssw);
    layout.set_gene(result.genome, worst, ClrMappingProblem::kFieldAsw,
                    pick->first.asw);
    layout.set_gene(result.genome, worst, ClrMappingProblem::kFieldDvfs,
                    pick->first.dvfs);
    ++result.upgrades;
    result.qos = problem.qos(result.genome);
  }

  result.feasible = problem.spec().feasible(result.qos);
  return result;
}

}  // namespace clrearly::core
