#include "core/baselines.hpp"

#include <stdexcept>

#include "moea/pareto.hpp"
#include "util/log.hpp"

namespace clrearly::core {

std::string to_string(SingleLayer layer) {
  switch (layer) {
    case SingleLayer::kDvfs: return "DVFS";
    case SingleLayer::kHwRel: return "HWRel";
    case SingleLayer::kSswRel: return "SSWRel";
    case SingleLayer::kAswRel: return "ASWRel";
  }
  return "Unknown";
}

reliability::ClrAxes axes_for(SingleLayer layer) {
  switch (layer) {
    case SingleLayer::kDvfs: return reliability::ClrAxes::only_dvfs();
    case SingleLayer::kHwRel: return reliability::ClrAxes::only_hw();
    case SingleLayer::kSswRel: return reliability::ClrAxes::only_ssw();
    case SingleLayer::kAswRel: return reliability::ClrAxes::only_asw();
  }
  throw std::invalid_argument("axes_for: unknown layer");
}

DseOutcome run_single_layer(const DseMethodology& dse,
                            const DseOptions& options, SingleLayer layer) {
  const ClrMappingProblem problem(dse.application(), dse.architecture(),
                                  dse.analyzer(), options.objectives,
                                  options.spec, axes_for(layer));
  util::Rng rng(options.seed);
  util::log_info() << "single-layer " << to_string(layer) << ": "
                   << dse.application().graph.num_tasks() << " tasks";
  auto result = moea::run_nsga2(options.ga, problem.ops(options.ga.mutation_indpb), rng);

  DseOutcome outcome;
  outcome.evaluations = result.evaluations;
  for (std::size_t i : result.front) {
    if (result.population[i].eval.violation > 0.0) continue;  // infeasible
    const moea::Objectives& obj = result.population[i].eval.objectives;
    bool duplicate = false;
    for (const moea::Objectives& seen : outcome.front) {
      if (seen == obj) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    outcome.front.push_back(obj);
    outcome.front_genomes.push_back(result.population[i].genome);
  }
  return outcome;
}

AgnosticOutcome run_agnostic(const DseMethodology& dse,
                             const DseOptions& options) {
  AgnosticOutcome outcome;
  outcome.layers = {SingleLayer::kDvfs, SingleLayer::kHwRel,
                    SingleLayer::kSswRel, SingleLayer::kAswRel};

  std::vector<moea::Objectives> pool;
  for (SingleLayer layer : outcome.layers) {
    DseOutcome run = run_single_layer(dse, options, layer);
    outcome.evaluations += run.evaluations;
    pool.insert(pool.end(), run.front.begin(), run.front.end());
    outcome.per_layer.push_back(std::move(run));
  }
  outcome.combined_front = moea::pareto_filter(pool);
  return outcome;
}

ResilienceBaselineOutcome run_resilience_baseline(const DseMethodology& dse,
                                                  const DseOptions& options) {
  ResilienceBaselineOutcome outcome;
  outcome.nominal = dse.run_fcclr(options);

  const ResilientProblem resilient = dse.build_resilient_problem(options);
  outcome.survivors.reserve(outcome.nominal.front_genomes.size());
  for (const MappingGenome& genome : outcome.nominal.front_genomes) {
    const bool survives = resilient.evaluate(genome).violation <= 0.0;
    outcome.survivors.push_back(survives);
    outcome.survivor_count += survives;
  }
  if (!outcome.survivors.empty()) {
    outcome.survivor_fraction =
        static_cast<double>(outcome.survivor_count) /
        static_cast<double>(outcome.survivors.size());
  }
  util::log_info() << "resilience baseline: " << outcome.survivor_count << "/"
                   << outcome.survivors.size()
                   << " nominal front points are k-resilient";
  return outcome;
}

}  // namespace clrearly::core
