#include "core/sim_bridge.hpp"

#include <utility>

namespace clrearly::core {

SimDesignPoint make_sim_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     std::string label) {
  const app::Application& app = problem.application();
  const platform::Architecture& arch = problem.architecture();
  const std::vector<ClrMappingProblem::ResolvedTask> resolved =
      problem.resolve(genome);

  SimDesignPoint point;
  point.label = std::move(label);
  point.priority_order = genome.order;
  point.tasks.reserve(resolved.size());
  for (std::size_t t = 0; t < resolved.size(); ++t) {
    const std::size_t type = app.graph.task(t).type;
    const reliability::BaseImpl& impl =
        app.impls[type][resolved[t].impl_index];
    sim::SimTask task;
    task.chain = problem.analyzer().chain_params(
        impl, arch.type_of(resolved[t].pe), resolved[t].config);
    task.pe = resolved[t].pe;
    task.power_w = resolved[t].metrics.avg_power_w;
    point.tasks.push_back(std::move(task));
  }
  return point;
}

sim::SimResult simulate_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     const sim::SimOptions& options) {
  const SimDesignPoint point = make_sim_design_point(problem, genome);
  return sim::simulate_schedule(problem.application().graph,
                                problem.architecture(), point.tasks,
                                point.priority_order, options);
}

ResilientSimPoint make_resilient_sim_point(const ResilientProblem& problem,
                                           const MappingGenome& genome) {
  const ClrMappingProblem& nominal = problem.nominal();
  const std::size_t num_pes = nominal.architecture().num_pes();

  ResilientSimPoint point;
  point.failure_probabilities = problem.failure_probabilities();

  const SimDesignPoint healthy = make_sim_design_point(nominal, genome);
  point.variants.push_back({healthy.tasks, healthy.priority_order});
  point.variant_failures.emplace_back(num_pes, 0);

  for (const ResilientProblem::DegradedMode& mode :
       problem.degraded_modes(genome)) {
    if (!mode.repairable) {
      point.unrepairable_sets.push_back(mode.failed);
      continue;
    }
    const SimDesignPoint degraded =
        make_sim_design_point(nominal, mode.mapping);
    point.variants.push_back({degraded.tasks, degraded.priority_order});
    point.variant_failures.push_back(mode.failed);
  }
  return point;
}

sim::FailureSimResult simulate_resilient_design_point(
    const ResilientProblem& problem, const MappingGenome& genome,
    std::size_t trials, std::uint64_t seed) {
  const ResilientSimPoint point = make_resilient_sim_point(problem, genome);
  sim::FailureSimOptions options;
  options.trials = trials;
  options.seed = seed;
  options.pe_failure_prob = point.failure_probabilities;
  return sim::simulate_with_failures(
      problem.nominal().application().graph, problem.nominal().architecture(),
      point.variants, point.variant_failures, options);
}

}  // namespace clrearly::core
