#include "core/sim_bridge.hpp"

#include <utility>

namespace clrearly::core {

SimDesignPoint make_sim_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     std::string label) {
  const app::Application& app = problem.application();
  const platform::Architecture& arch = problem.architecture();
  const std::vector<ClrMappingProblem::ResolvedTask> resolved =
      problem.resolve(genome);

  SimDesignPoint point;
  point.label = std::move(label);
  point.priority_order = genome.order;
  point.tasks.reserve(resolved.size());
  for (std::size_t t = 0; t < resolved.size(); ++t) {
    const std::size_t type = app.graph.task(t).type;
    const reliability::BaseImpl& impl =
        app.impls[type][resolved[t].impl_index];
    sim::SimTask task;
    task.chain = problem.analyzer().chain_params(
        impl, arch.type_of(resolved[t].pe), resolved[t].config);
    task.pe = resolved[t].pe;
    task.power_w = resolved[t].metrics.avg_power_w;
    point.tasks.push_back(std::move(task));
  }
  return point;
}

sim::SimResult simulate_design_point(const ClrMappingProblem& problem,
                                     const MappingGenome& genome,
                                     const sim::SimOptions& options) {
  const SimDesignPoint point = make_sim_design_point(problem, genome);
  return sim::simulate_schedule(problem.application().graph,
                                problem.architecture(), point.tasks,
                                point.priority_order, options);
}

}  // namespace clrearly::core
