// Task-level DSE (tDSE, Sections IV & VI-B).
//
// For a task type, tDSE enumerates every (implementation, PE type, CLR
// configuration) triple, evaluates the TABLE II metrics through the Markov-
// chain models, and Pareto-filters the points under a configurable objective
// set — the ladder of TABLE IV (I: AvgExT; II: +ErrProb; III: +MTTF;
// IV: +Energy; V: +Power; VI: +PeakTemp). Filtering is performed *per PE
// type* so the system-level DSE retains mapping freedom: pruning must never
// remove a PE type's only implementations (cf. TABLE IV row I showing one
// surviving point per PE type).
#pragma once

#include <cstddef>
#include <vector>

#include "app/task_graph.hpp"
#include "moea/nsga2.hpp"
#include "platform/architecture.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/task_metrics.hpp"

namespace clrearly::core {

/// Which task-level metrics participate in the Pareto filtering. Members
/// mirror TABLE IV's ladder; all selected metrics are minimized (MTTF is
/// negated internally).
struct TdseObjectives {
  bool avg_exec_time = true;
  bool error_prob = false;
  bool mttf = false;
  bool energy = false;
  bool power = false;
  bool peak_temp = false;

  /// Rows I..VI of TABLE IV (row = 1..6). Row 1 = time only, each subsequent
  /// row adds the next metric.
  static TdseObjectives table4_row(int row);

  /// tDSE_1/2/3 of Fig. 9: increasingly many task-level objectives
  /// (1: time+errprob; 2: +energy; 3: all six metrics).
  static TdseObjectives tdse_run(int run);

  /// Number of active objectives.
  std::size_t count() const;

  /// Minimization vector of the active metrics, in declaration order.
  std::vector<double> extract(const reliability::TaskMetrics& m) const;
};

/// One task-level design point: a fully configured implementation on a PE
/// type, with its evaluated metrics.
struct TaskDesignPoint {
  std::size_t impl_index = 0;  ///< into the task type's implementation list
  std::size_t pe_type = 0;     ///< architecture PE *type* index
  reliability::ClrConfig config;
  reliability::TaskMetrics metrics;
};

/// tDSE output for one task type.
struct TdseResult {
  std::vector<TaskDesignPoint> enumerated;  ///< every evaluated point
  std::vector<TaskDesignPoint> pareto;      ///< per-PE-type Pareto survivors
};

/// Task-level design-space explorer. The explorer owns a TaskAnalyzer (model
/// parameters) and the axes restriction (single-layer baselines pin the
/// non-explored layers to their no-op entries).
class Tdse {
 public:
  explicit Tdse(reliability::TaskAnalyzer analyzer,
                reliability::ClrAxes axes = reliability::ClrAxes::all());

  const reliability::TaskAnalyzer& analyzer() const noexcept {
    return analyzer_;
  }

  /// Enumerate and evaluate every (impl, PE type, config) triple for a task
  /// type with implementation set `impls` on `architecture`. Implementations
  /// are paired only with PE types of their target class. Brute force, as in
  /// the paper's Section VI-B.
  std::vector<TaskDesignPoint> enumerate(
      const std::vector<reliability::BaseImpl>& impls,
      const platform::Architecture& architecture) const;

  /// Pareto-filter `points` per PE-type group under `objectives`; survivors
  /// keep their enumeration order.
  static std::vector<TaskDesignPoint> pareto_filter(
      const std::vector<TaskDesignPoint>& points,
      const TdseObjectives& objectives);

  /// enumerate + pareto_filter.
  TdseResult run(const std::vector<reliability::BaseImpl>& impls,
                 const platform::Architecture& architecture,
                 const TdseObjectives& objectives) const;

  /// Stochastic task-level DSE: the paper notes the brute-force tDSE can be
  /// replaced by "other stochastic search methods" when the per-task
  /// configuration space outgrows enumeration. Runs NSGA-II over the
  /// (implementation, PE type, CLR configuration) genome and returns the
  /// per-PE-type-filtered front of every point it evaluated. `enumerated`
  /// holds the distinct points visited (a sample of the space, not all of
  /// it).
  TdseResult run_stochastic(const std::vector<reliability::BaseImpl>& impls,
                            const platform::Architecture& architecture,
                            const TdseObjectives& objectives,
                            const moea::Nsga2Params& ga,
                            std::uint64_t seed) const;

  /// tDSE for every task type of an application; result indexed by type.
  std::vector<TdseResult> run_application(
      const app::Application& application,
      const platform::Architecture& architecture,
      const TdseObjectives& objectives) const;

 private:
  reliability::TaskAnalyzer analyzer_;
  reliability::ClrAxes axes_;
};

}  // namespace clrearly::core
