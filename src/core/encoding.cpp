#include "core/encoding.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clrearly::core {

GenomeLayout::GenomeLayout(std::size_t num_tasks, std::size_t fields_per_task,
                           std::vector<std::size_t> cardinalities)
    : num_tasks_(num_tasks),
      fields_per_task_(fields_per_task),
      cardinalities_(std::move(cardinalities)) {
  if (num_tasks_ == 0 || fields_per_task_ == 0) {
    throw std::invalid_argument("GenomeLayout: empty layout");
  }
  if (cardinalities_.size() != num_tasks_ * fields_per_task_) {
    throw std::invalid_argument("GenomeLayout: cardinality count mismatch");
  }
  for (std::size_t c : cardinalities_) {
    if (c == 0) {
      throw std::invalid_argument("GenomeLayout: zero cardinality");
    }
  }
}

std::size_t GenomeLayout::cardinality(std::size_t task,
                                      std::size_t field) const {
  if (task >= num_tasks_ || field >= fields_per_task_) {
    throw std::out_of_range("GenomeLayout::cardinality");
  }
  return cardinalities_[task * fields_per_task_ + field];
}

std::size_t GenomeLayout::gene(const MappingGenome& g, std::size_t task,
                               std::size_t field) const {
  if (task >= num_tasks_ || field >= fields_per_task_) {
    throw std::out_of_range("GenomeLayout::gene");
  }
  return g.genes[task * fields_per_task_ + field];
}

void GenomeLayout::set_gene(MappingGenome& g, std::size_t task,
                            std::size_t field, std::size_t value) const {
  if (task >= num_tasks_ || field >= fields_per_task_) {
    throw std::out_of_range("GenomeLayout::set_gene");
  }
  if (value >= cardinalities_[task * fields_per_task_ + field]) {
    throw std::invalid_argument("GenomeLayout::set_gene: value out of range");
  }
  g.genes[task * fields_per_task_ + field] = value;
}

MappingGenome GenomeLayout::random(util::Rng& rng) const {
  MappingGenome g;
  g.order = moea::random_permutation(num_tasks_, rng);
  g.genes.resize(gene_count());
  for (std::size_t i = 0; i < gene_count(); ++i) {
    g.genes[i] = rng.index(cardinalities_[i]);
  }
  return g;
}

std::pair<MappingGenome, MappingGenome> GenomeLayout::crossover(
    const MappingGenome& a, const MappingGenome& b, util::Rng& rng) const {
  validate(a);
  validate(b);
  MappingGenome ca = a;
  MappingGenome cb = b;
  if (rng.bernoulli(0.5)) {
    // Configuration exchange: two-point crossover on the gene vectors.
    moea::two_point_crossover(ca.genes, cb.genes, rng);
  } else {
    // Scheduling exchange: single-point order crossover on the permutation.
    auto [oa, ob] = moea::order_crossover(a.order, b.order, rng);
    ca.order = std::move(oa);
    cb.order = std::move(ob);
  }
  return {std::move(ca), std::move(cb)};
}

void GenomeLayout::mutate(MappingGenome& g, util::Rng& rng) const {
  validate(g);
  if (rng.bernoulli(0.5)) {
    moea::random_reset_mutation(g.genes, cardinalities_, rng);
  } else {
    moea::swap_mutation(g.order, rng);
  }
}

void GenomeLayout::mutate(MappingGenome& g, util::Rng& rng,
                          double per_task_prob) const {
  validate(g);
  if (per_task_prob < 0.0 || per_task_prob > 1.0) {
    throw std::invalid_argument("GenomeLayout::mutate: bad probability");
  }
  for (std::size_t t = 0; t < num_tasks_; ++t) {
    if (!rng.bernoulli(per_task_prob)) continue;
    const std::size_t field = rng.index(fields_per_task_);
    const std::size_t idx = t * fields_per_task_ + field;
    g.genes[idx] = rng.index(cardinalities_[idx]);
  }
  const double swap_prob =
      std::min(1.0, per_task_prob * static_cast<double>(num_tasks_));
  if (rng.bernoulli(swap_prob)) {
    moea::swap_mutation(g.order, rng);
  }
}

void GenomeLayout::validate(const MappingGenome& g) const {
  if (g.order.size() != num_tasks_) {
    throw std::invalid_argument("GenomeLayout: order length mismatch");
  }
  if (!moea::is_permutation(g.order)) {
    throw std::invalid_argument("GenomeLayout: order is not a permutation");
  }
  if (g.genes.size() != gene_count()) {
    throw std::invalid_argument("GenomeLayout: gene count mismatch");
  }
  for (std::size_t i = 0; i < g.genes.size(); ++i) {
    if (g.genes[i] >= cardinalities_[i]) {
      throw std::invalid_argument("GenomeLayout: gene value out of range");
    }
  }
}

}  // namespace clrearly::core
