#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace clrearly::core {

namespace {

std::size_t class_index(platform::PeClass c) {
  return static_cast<std::size_t>(c);
}
constexpr std::size_t kNumClasses = 2;

}  // namespace

SystemObjectives SystemObjectives::all() {
  SystemObjectives obj;
  obj.mttf = obj.energy = obj.power = true;
  return obj;
}

std::size_t SystemObjectives::count() const {
  std::size_t n = 0;
  for (bool flag : {makespan, error_prob, mttf, energy, power}) {
    if (flag) ++n;
  }
  return n;
}

std::vector<double> SystemObjectives::extract(
    const sched::QosMetrics& m) const {
  std::vector<double> out;
  out.reserve(count());
  if (makespan) out.push_back(w_makespan * m.makespan_us);
  if (error_prob) out.push_back(w_error_prob * m.error_prob);
  if (mttf) out.push_back(w_mttf * -m.mttf_hours);  // maximize lifetime
  if (energy) out.push_back(w_energy * m.energy_uj);
  if (power) out.push_back(w_power * m.peak_power_w);
  if (out.empty()) {
    throw std::invalid_argument("SystemObjectives: no objective selected");
  }
  return out;
}

double SystemObjectives::scalarize(const sched::QosMetrics& m) const {
  double acc = 0.0;
  for (double component : extract(m)) acc += component;
  return acc;
}

ClrMappingProblem::ClrMappingProblem(app::Application application,
                                     platform::Architecture architecture,
                                     reliability::TaskAnalyzer analyzer,
                                     SystemObjectives objectives,
                                     sched::QosSpec spec,
                                     reliability::ClrAxes axes)
    : app_(std::move(application)),
      arch_(std::move(architecture)),
      analyzer_(std::move(analyzer)),
      objectives_(objectives),
      spec_(spec),
      axes_(axes),
      mode_(Mode::kFullConfig) {
  app_.validate();
  if (arch_.num_pes() == 0) {
    throw std::invalid_argument("ClrMappingProblem: architecture has no PEs");
  }
  pes_by_class_.assign(kNumClasses, {});
  for (const platform::Pe& pe : arch_.pes()) {
    pes_by_class_[class_index(arch_.type_of(pe.id).pe_class)].push_back(pe.id);
  }
  pes_by_type_.resize(arch_.num_types());
  for (std::size_t t = 0; t < arch_.num_types(); ++t) {
    pes_by_type_[t] = arch_.pes_of_type(t);
  }
  build_full_config_tables();
  build_layout();
  build_fitness_cache();
}

ClrMappingProblem::ClrMappingProblem(
    app::Application application, platform::Architecture architecture,
    reliability::TaskAnalyzer analyzer, SystemObjectives objectives,
    sched::QosSpec spec,
    std::vector<std::vector<TaskDesignPoint>> pareto_points)
    : app_(std::move(application)),
      arch_(std::move(architecture)),
      analyzer_(std::move(analyzer)),
      objectives_(objectives),
      spec_(spec),
      axes_(reliability::ClrAxes::all()),
      mode_(Mode::kParetoFiltered),
      points_(std::move(pareto_points)) {
  app_.validate();
  if (arch_.num_pes() == 0) {
    throw std::invalid_argument("ClrMappingProblem: architecture has no PEs");
  }
  if (points_.size() < app_.graph.num_types()) {
    throw std::invalid_argument(
        "ClrMappingProblem: Pareto point set missing for some task type");
  }
  for (std::size_t type = 0; type < app_.graph.num_types(); ++type) {
    if (points_[type].empty()) {
      throw std::invalid_argument(
          "ClrMappingProblem: empty Pareto set for task type " +
          std::to_string(type));
    }
  }
  pes_by_class_.assign(kNumClasses, {});
  for (const platform::Pe& pe : arch_.pes()) {
    pes_by_class_[class_index(arch_.type_of(pe.id).pe_class)].push_back(pe.id);
  }
  pes_by_type_.resize(arch_.num_types());
  for (std::size_t t = 0; t < arch_.num_types(); ++t) {
    pes_by_type_[t] = arch_.pes_of_type(t);
    // Every Pareto point must land on a PE type that has instances.
    for (std::size_t type = 0; type < app_.graph.num_types(); ++type) {
      for (const TaskDesignPoint& p : points_[type]) {
        if (p.pe_type >= arch_.num_types() ||
            arch_.pes_of_type(p.pe_type).empty()) {
          throw std::invalid_argument(
              "ClrMappingProblem: Pareto point references an unavailable PE "
              "type");
        }
      }
    }
  }
  build_layout();
  build_fitness_cache();
}

void ClrMappingProblem::build_fitness_cache() {
  fitness_cache_ =
      std::make_unique<FitnessCache>(util::cache_capacity(), "fitness");
}

void ClrMappingProblem::build_full_config_tables() {
  const reliability::ClrSpace& space = analyzer_.space();
  const std::size_t h_n = space.hw_methods().size();
  const std::size_t s_n = space.ssw_methods().size();
  const std::size_t a_n = space.asw_methods().size();
  const std::size_t types = app_.graph.num_types();

  // Size the (type, impl, pe_type) table skeleton serially, collecting one
  // work item per populated table; then fan the dense CLR-config sweeps —
  // independent absorbing-chain solves writing into disjoint tables — out
  // over the thread pool. TaskAnalyzer is stateless, so concurrent
  // evaluate() calls are safe and the result is identical to the serial
  // fill at any thread count.
  struct Sweep {
    std::size_t type, impl, pe_type;
  };
  std::vector<Sweep> sweeps;
  metrics_.assign(types, {});
  for (std::size_t type = 0; type < types; ++type) {
    const auto& impls = app_.impls[type];
    metrics_[type].assign(impls.size(), {});
    for (std::size_t impl = 0; impl < impls.size(); ++impl) {
      metrics_[type][impl].assign(arch_.num_types(), {});
      for (std::size_t pt = 0; pt < arch_.num_types(); ++pt) {
        const platform::PeType& pe = arch_.type(pt);
        if (!impls[impl].runs_on(pe)) continue;
        if (pes_by_type_[pt].empty()) continue;  // type with no instances
        metrics_[type][impl][pt].assign(h_n * s_n * a_n * pe.dvfs.size(),
                                        reliability::TaskMetrics{});
        sweeps.push_back({type, impl, pt});
      }
    }
  }
  util::parallel_for(sweeps.size(), [&](std::size_t k) {
    const Sweep& sweep = sweeps[k];
    const reliability::BaseImpl& impl = app_.impls[sweep.type][sweep.impl];
    const platform::PeType& pe = arch_.type(sweep.pe_type);
    const std::size_t d_n = pe.dvfs.size();
    auto& table = metrics_[sweep.type][sweep.impl][sweep.pe_type];
    // Collect the axis-reachable configs (pinned axes always decode to
    // index 0) and their table slots, then evaluate the whole sweep through
    // the batched chain path — each worker batches its own sweep, so the
    // thread-local batch workspaces never contend.
    std::vector<reliability::ClrConfig> configs;
    std::vector<std::size_t> slots;
    for (std::size_t h = 0; h < (axes_.hw ? h_n : 1); ++h) {
      for (std::size_t s = 0; s < (axes_.ssw ? s_n : 1); ++s) {
        for (std::size_t a = 0; a < (axes_.asw ? a_n : 1); ++a) {
          for (std::size_t d = 0; d < (axes_.dvfs ? d_n : 1); ++d) {
            configs.push_back(reliability::ClrConfig{h, s, a, d});
            slots.push_back(((h * s_n + s) * a_n + a) * d_n + d);
          }
        }
      }
    }
    const std::vector<reliability::TaskMetrics> evaluated =
        analyzer_.evaluate_batch(impl, pe, configs);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      table[slots[i]] = evaluated[i];
    }
  });
}

void ClrMappingProblem::build_layout() {
  const std::size_t n = app_.graph.num_tasks();
  const reliability::ClrSpace& space = analyzer_.space();

  std::size_t max_dvfs = 1;
  for (std::size_t t = 0; t < arch_.num_types(); ++t) {
    max_dvfs = std::max(max_dvfs, arch_.type(t).dvfs.size());
  }

  std::vector<std::size_t> cards;
  if (mode_ == Mode::kFullConfig) {
    cards.resize(n * kFullConfigFields);
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t type = app_.graph.task(t).type;
      cards[t * kFullConfigFields + kFieldImpl] = app_.impls[type].size();
      cards[t * kFullConfigFields + kFieldPeSel] = arch_.num_pes();
      cards[t * kFullConfigFields + kFieldHw] =
          axes_.hw ? space.hw_methods().size() : 1;
      cards[t * kFullConfigFields + kFieldSsw] =
          axes_.ssw ? space.ssw_methods().size() : 1;
      cards[t * kFullConfigFields + kFieldAsw] =
          axes_.asw ? space.asw_methods().size() : 1;
      cards[t * kFullConfigFields + kFieldDvfs] = axes_.dvfs ? max_dvfs : 1;
    }
    layout_ = std::make_unique<GenomeLayout>(n, kFullConfigFields,
                                             std::move(cards));
  } else {
    cards.resize(n * kParetoFields);
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t type = app_.graph.task(t).type;
      cards[t * kParetoFields + kFieldPoint] = points_[type].size();
      cards[t * kParetoFields + kFieldPeSel] = arch_.num_pes();
    }
    layout_ =
        std::make_unique<GenomeLayout>(n, kParetoFields, std::move(cards));
  }
}

ClrMappingProblem::ResolvedTask ClrMappingProblem::decode_task(
    const MappingGenome& g, std::size_t t) const {
  const GenomeLayout& layout = *layout_;
  const std::size_t type = app_.graph.task(t).type;
  ResolvedTask resolved;

  if (mode_ == Mode::kFullConfig) {
    const reliability::ClrSpace& space = analyzer_.space();
    const auto& impls = app_.impls[type];
    const std::size_t impl =
        layout.gene(g, t, kFieldImpl) % impls.size();
    const auto& compatible =
        pes_by_class_[class_index(impls[impl].target)];
    if (compatible.empty()) {
      throw std::invalid_argument(
          "ClrMappingProblem: no PE instance can host implementation " +
          impls[impl].name);
    }
    const std::size_t pe =
        compatible[layout.gene(g, t, kFieldPeSel) % compatible.size()];
    const std::size_t pe_type = arch_.pe(pe).type_index;
    const std::size_t d_n = arch_.type(pe_type).dvfs.size();
    const std::size_t s_n = space.ssw_methods().size();
    const std::size_t a_n = space.asw_methods().size();
    const std::size_t h =
        axes_.hw ? layout.gene(g, t, kFieldHw) : 0;
    const std::size_t s =
        axes_.ssw ? layout.gene(g, t, kFieldSsw) : 0;
    const std::size_t a =
        axes_.asw ? layout.gene(g, t, kFieldAsw) : 0;
    const std::size_t d =
        axes_.dvfs ? layout.gene(g, t, kFieldDvfs) % d_n : 0;
    const std::size_t idx = ((h * s_n + s) * a_n + a) * d_n + d;
    resolved.pe = pe;
    resolved.impl_index = impl;
    resolved.config = reliability::ClrConfig{h, s, a, d};
    resolved.metrics = metrics_[type][impl][pe_type][idx];
  } else {
    const auto& pts = points_[type];
    const TaskDesignPoint& point =
        pts[layout.gene(g, t, kFieldPoint) % pts.size()];
    const auto& instances = pes_by_type_[point.pe_type];
    resolved.pe =
        instances[layout.gene(g, t, kFieldPeSel) % instances.size()];
    resolved.impl_index = point.impl_index;
    resolved.config = point.config;
    resolved.metrics = point.metrics;
  }
  return resolved;
}

std::vector<sched::TaskDecision> ClrMappingProblem::decode(
    const MappingGenome& genome) const {
  layout_->validate(genome);
  const std::size_t n = app_.graph.num_tasks();
  std::vector<sched::TaskDecision> decisions(n);
  for (std::size_t t = 0; t < n; ++t) {
    const ResolvedTask resolved = decode_task(genome, t);
    decisions[t] = sched::TaskDecision{resolved.pe, resolved.metrics};
  }
  return decisions;
}

std::vector<ClrMappingProblem::ResolvedTask> ClrMappingProblem::resolve(
    const MappingGenome& genome) const {
  layout_->validate(genome);
  const std::size_t n = app_.graph.num_tasks();
  std::vector<ResolvedTask> resolved(n);
  for (std::size_t t = 0; t < n; ++t) resolved[t] = decode_task(genome, t);
  return resolved;
}

std::vector<ClrMappingProblem::TaskChoice> ClrMappingProblem::report(
    const MappingGenome& genome) const {
  layout_->validate(genome);
  const std::size_t n = app_.graph.num_tasks();
  std::vector<TaskChoice> choices(n);
  for (std::size_t t = 0; t < n; ++t) {
    const ResolvedTask resolved = decode_task(genome, t);
    const std::size_t type = app_.graph.task(t).type;
    TaskChoice& choice = choices[t];
    choice.task_name = app_.graph.task(t).name;
    choice.impl_name = app_.impls[type][resolved.impl_index].name;
    choice.pe = resolved.pe;
    choice.pe_type_name = arch_.type_of(resolved.pe).name;
    choice.config = resolved.config;
    choice.config_text = analyzer_.space().describe(resolved.config);
    choice.metrics = resolved.metrics;
  }
  return choices;
}

sched::QosMetrics ClrMappingProblem::qos(const MappingGenome& genome) const {
  return sched::estimate_qos(app_, arch_, decode(genome), genome.order);
}

util::Key128 ClrMappingProblem::genome_key(const MappingGenome& genome) {
  util::Key128Stream key;
  // Length-prefix both sequences so (order, genes) splits can't collide.
  key.add(static_cast<std::uint64_t>(genome.order.size()));
  for (std::size_t v : genome.order) key.add(static_cast<std::uint64_t>(v));
  key.add(static_cast<std::uint64_t>(genome.genes.size()));
  for (std::size_t v : genome.genes) key.add(static_cast<std::uint64_t>(v));
  return key.digest();
}

std::uint64_t ClrMappingProblem::genome_hash(const MappingGenome& genome) {
  return genome_key(genome).lo;
}

moea::Evaluation ClrMappingProblem::evaluate_uncached(
    const MappingGenome& genome) const {
  const sched::QosMetrics metrics = qos(genome);
  moea::Evaluation eval;
  eval.objectives = objectives_.extract(metrics);
  eval.violation = spec_.violation(metrics);
  return eval;
}

moea::Evaluation ClrMappingProblem::evaluate(
    const MappingGenome& genome) const {
  if (!fitness_cache_ || !fitness_cache_->enabled()) {
    return evaluate_uncached(genome);
  }
  return fitness_cache_->get_or_compute(
      genome_key(genome), [&] { return evaluate_uncached(genome); });
}

util::CacheStats ClrMappingProblem::fitness_cache_stats() const {
  return fitness_cache_ ? fitness_cache_->stats() : util::CacheStats{};
}

moea::Nsga2Ops<MappingGenome> ClrMappingProblem::ops(
    double mutation_indpb) const {
  moea::Nsga2Ops<MappingGenome> ops;
  ops.create = [this](util::Rng& rng) { return layout_->random(rng); };
  ops.crossover = [this](const MappingGenome& a, const MappingGenome& b,
                         util::Rng& rng) {
    return layout_->crossover(a, b, rng);
  };
  ops.mutate = [this, mutation_indpb](MappingGenome& g, util::Rng& rng) {
    layout_->mutate(g, rng, mutation_indpb);
  };
  ops.evaluate = [this](const MappingGenome& g) { return evaluate(g); };
  ops.hash = [](const MappingGenome& g) { return genome_hash(g); };
  ops.equal = [](const MappingGenome& a, const MappingGenome& b) {
    return a == b;
  };
  return ops;
}

double ClrMappingProblem::log10_design_space_size() const {
  const std::size_t n = app_.graph.num_tasks();
  // P^T and the T! scheduling orderings.
  double log_size =
      static_cast<double>(n) * std::log10(static_cast<double>(arch_.num_pes()));
  for (std::size_t t = 2; t <= n; ++t) {
    log_size += std::log10(static_cast<double>(t));
  }
  // Per-task implementation/configuration choices.
  if (mode_ == Mode::kFullConfig) {
    std::size_t max_dvfs = 1;
    for (std::size_t pt = 0; pt < arch_.num_types(); ++pt) {
      max_dvfs = std::max(max_dvfs, arch_.type(pt).dvfs.size());
    }
    const double log_configs = std::log10(
        static_cast<double>(analyzer_.space().size(max_dvfs, axes_)));
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t type = app_.graph.task(t).type;
      log_size +=
          std::log10(static_cast<double>(app_.impls[type].size())) +
          log_configs;
    }
  } else {
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t type = app_.graph.task(t).type;
      log_size += std::log10(static_cast<double>(points_[type].size()));
    }
  }
  return log_size;
}

std::optional<MappingGenome> ClrMappingProblem::repair_for_failures(
    const MappingGenome& genome, const std::vector<char>& failed) const {
  layout_->validate(genome);
  if (failed.size() != arch_.num_pes()) {
    throw std::invalid_argument(
        "repair_for_failures: failure mask size must equal the PE count");
  }

  const std::size_t n = app_.graph.num_tasks();
  MappingGenome out = genome;

  // Committed load per surviving PE: the expected execution time of every
  // task that keeps its placement. The greedy below extends these
  // finish-time estimates the same way heft_clr_mapping's EFT loop does.
  std::vector<double> load(arch_.num_pes(), 0.0);
  std::vector<char> displaced(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    const ResolvedTask resolved = decode_task(genome, t);
    if (failed[resolved.pe]) {
      displaced[t] = 1;
    } else {
      load[resolved.pe] += resolved.metrics.avg_exec_time_us;
    }
  }

  for (std::size_t task : genome.order) {
    if (!displaced[task]) continue;
    const std::size_t type = app_.graph.task(task).type;
    bool found = false;
    double best_finish = 0.0;
    std::size_t best_pe = 0;

    if (mode_ == Mode::kFullConfig) {
      const auto& impls = app_.impls[type];
      const std::size_t impl =
          layout_->gene(genome, task, kFieldImpl) % impls.size();
      const auto& compatible = pes_by_class_[class_index(impls[impl].target)];
      std::size_t best_sel = 0;
      for (std::size_t sel = 0; sel < compatible.size(); ++sel) {
        const std::size_t pe = compatible[sel];
        if (failed[pe]) continue;
        // Stage the selector and decode: the metrics-table index depends on
        // the candidate PE type's DVFS cardinality, so decode_task is the
        // one source of truth for the candidate's execution time.
        layout_->set_gene(out, task, kFieldPeSel, sel);
        const ResolvedTask candidate = decode_task(out, task);
        const double finish = load[pe] + candidate.metrics.avg_exec_time_us;
        if (!found || finish < best_finish) {
          found = true;
          best_finish = finish;
          best_pe = pe;
          best_sel = sel;
        }
      }
      if (!found) return std::nullopt;
      // Selector = position in the class-compatible list, which decode_task
      // reads modulo compatible.size() — always in range because the PeSel
      // cardinality is the full PE count.
      layout_->set_gene(out, task, kFieldPeSel, best_sel);
    } else {
      const auto& pts = points_[type];
      const std::size_t chosen =
          layout_->gene(genome, task, kFieldPoint) % pts.size();
      std::size_t best_point = 0;
      std::size_t best_sel = 0;
      auto try_point = [&](std::size_t pt_idx) {
        const auto& instances = pes_by_type_[pts[pt_idx].pe_type];
        for (std::size_t sel = 0; sel < instances.size(); ++sel) {
          const std::size_t pe = instances[sel];
          if (failed[pe]) continue;
          const double finish =
              load[pe] + pts[pt_idx].metrics.avg_exec_time_us;
          if (!found || finish < best_finish) {
            found = true;
            best_finish = finish;
            best_pe = pe;
            best_point = pt_idx;
            best_sel = sel;
          }
        }
      };
      // Prefer keeping the chosen Pareto point (same implementation + CLR
      // configuration, another instance of the same PE type); fall back to
      // the other points only when its type lost every instance.
      try_point(chosen);
      if (!found) {
        for (std::size_t p = 0; p < pts.size(); ++p) {
          if (p != chosen) try_point(p);
        }
      }
      if (!found) return std::nullopt;
      layout_->set_gene(out, task, kFieldPoint, best_point);
      layout_->set_gene(out, task, kFieldPeSel, best_sel);
    }
    load[best_pe] = best_finish;
  }
  return out;
}

MappingGenome ClrMappingProblem::translate_to(
    const ClrMappingProblem& fc, const MappingGenome& genome) const {
  if (mode_ != Mode::kParetoFiltered ||
      fc.mode() != Mode::kFullConfig) {
    throw std::invalid_argument(
        "translate_to: requires a pfCLR source and an fcCLR target");
  }
  if (fc.app_.graph.num_tasks() != app_.graph.num_tasks()) {
    throw std::invalid_argument("translate_to: task count mismatch");
  }
  layout_->validate(genome);

  const GenomeLayout& src = *layout_;
  const GenomeLayout& dst = *fc.layout_;
  MappingGenome out;
  out.order = genome.order;
  out.genes.assign(dst.gene_count(), 0);

  for (std::size_t t = 0; t < app_.graph.num_tasks(); ++t) {
    const std::size_t type = app_.graph.task(t).type;
    const auto& pts = points_[type];
    const TaskDesignPoint& point =
        pts[src.gene(genome, t, kFieldPoint) % pts.size()];
    const auto& instances = pes_by_type_[point.pe_type];
    const std::size_t pe =
        instances[src.gene(genome, t, kFieldPeSel) % instances.size()];

    const auto& impls = fc.app_.impls[type];
    const std::size_t impl = point.impl_index % impls.size();
    const auto& compatible =
        fc.pes_by_class_[class_index(impls[impl].target)];
    const auto where = std::find(compatible.begin(), compatible.end(), pe);
    const std::size_t pe_sel =
        where == compatible.end()
            ? 0
            : static_cast<std::size_t>(where - compatible.begin());

    auto clamp = [&](std::size_t field, std::size_t value) {
      return std::min(value, dst.cardinality(t, field) - 1);
    };
    dst.set_gene(out, t, kFieldImpl, clamp(kFieldImpl, impl));
    dst.set_gene(out, t, kFieldPeSel, clamp(kFieldPeSel, pe_sel));
    dst.set_gene(out, t, kFieldHw, clamp(kFieldHw, point.config.hw));
    dst.set_gene(out, t, kFieldSsw, clamp(kFieldSsw, point.config.ssw));
    dst.set_gene(out, t, kFieldAsw, clamp(kFieldAsw, point.config.asw));
    dst.set_gene(out, t, kFieldDvfs, clamp(kFieldDvfs, point.config.dvfs));
  }
  return out;
}

}  // namespace clrearly::core
