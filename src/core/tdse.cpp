#include "core/tdse.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <utility>

#include "moea/operators.hpp"
#include "moea/pareto.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::core {

TdseObjectives TdseObjectives::table4_row(int row) {
  if (row < 1 || row > 6) {
    throw std::invalid_argument("TdseObjectives: TABLE IV row must be 1..6");
  }
  TdseObjectives obj;
  obj.avg_exec_time = true;
  obj.error_prob = row >= 2;
  obj.mttf = row >= 3;
  obj.energy = row >= 4;
  obj.power = row >= 5;
  obj.peak_temp = row >= 6;
  return obj;
}

TdseObjectives TdseObjectives::tdse_run(int run) {
  // Strictly growing objective sets (Fig. 9). Energy (time x power) and the
  // power-derived metrics (MTTF/power/peak temperature) discriminate along
  // different cuts, so each run keeps strictly more Pareto implementations.
  switch (run) {
    case 1: return table4_row(2);  // time + error probability
    case 2: {                      // + energy
      TdseObjectives obj = table4_row(2);
      obj.energy = true;
      return obj;
    }
    case 3: return table4_row(6);  // all six task-level metrics
    default:
      throw std::invalid_argument("TdseObjectives: tDSE run must be 1..3");
  }
}

std::size_t TdseObjectives::count() const {
  std::size_t n = 0;
  for (bool flag : {avg_exec_time, error_prob, mttf, energy, power, peak_temp}) {
    if (flag) ++n;
  }
  return n;
}

std::vector<double> TdseObjectives::extract(
    const reliability::TaskMetrics& m) const {
  std::vector<double> out;
  out.reserve(count());
  if (avg_exec_time) out.push_back(m.avg_exec_time_us);
  if (error_prob) out.push_back(m.error_prob);
  if (mttf) out.push_back(-m.mttf_hours);  // maximize MTTF
  if (energy) out.push_back(m.energy_uj);
  if (power) out.push_back(m.avg_power_w);
  if (peak_temp) out.push_back(m.peak_temp_c);
  if (out.empty()) {
    throw std::invalid_argument("TdseObjectives: no objective selected");
  }
  return out;
}

Tdse::Tdse(reliability::TaskAnalyzer analyzer, reliability::ClrAxes axes)
    : analyzer_(std::move(analyzer)), axes_(axes) {}

std::vector<TaskDesignPoint> Tdse::enumerate(
    const std::vector<reliability::BaseImpl>& impls,
    const platform::Architecture& architecture) const {
  if (impls.empty()) {
    throw std::invalid_argument("Tdse::enumerate: no implementations");
  }
  // Collect-then-batch: enumerate every (impl, pe, config) point first,
  // then evaluate them through the batched chain path — misses from the
  // chain cache are deduped and solved W lanes per SIMD instruction instead
  // of one LU at a time (see analyze_clr_chain_batch).
  std::vector<TaskDesignPoint> points;
  std::vector<reliability::TaskAnalyzer::EvalJob> jobs;
  for (std::size_t impl_index = 0; impl_index < impls.size(); ++impl_index) {
    const reliability::BaseImpl& impl = impls[impl_index];
    for (std::size_t pe_type = 0; pe_type < architecture.num_types();
         ++pe_type) {
      const platform::PeType& pe = architecture.type(pe_type);
      if (!impl.runs_on(pe)) continue;
      const auto configs =
          analyzer_.space().enumerate(pe.dvfs.size(), axes_);
      for (const reliability::ClrConfig& config : configs) {
        TaskDesignPoint point;
        point.impl_index = impl_index;
        point.pe_type = pe_type;
        point.config = config;
        points.push_back(std::move(point));
        jobs.push_back({&impl, &pe, config});
      }
    }
  }
  if (points.empty()) {
    throw std::invalid_argument(
        "Tdse::enumerate: no PE type can host any implementation");
  }
  const std::vector<reliability::TaskMetrics> metrics =
      analyzer_.evaluate_jobs(jobs);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].metrics = metrics[i];
  }
  return points;
}

std::vector<TaskDesignPoint> Tdse::pareto_filter(
    const std::vector<TaskDesignPoint>& points,
    const TdseObjectives& objectives) {
  // Group by PE type, filter each group independently so pruning never
  // strips a PE type of all its implementations.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < points.size(); ++i) {
    groups[points[i].pe_type].push_back(i);
  }
  std::vector<TaskDesignPoint> survivors;
  for (const auto& [pe_type, members] : groups) {
    std::vector<moea::Objectives> vectors;
    vectors.reserve(members.size());
    for (std::size_t i : members) {
      vectors.push_back(objectives.extract(points[i].metrics));
    }
    for (std::size_t local : moea::pareto_front_indices(vectors)) {
      survivors.push_back(points[members[local]]);
    }
  }
  return survivors;
}

TdseResult Tdse::run(const std::vector<reliability::BaseImpl>& impls,
                     const platform::Architecture& architecture,
                     const TdseObjectives& objectives) const {
  TdseResult result;
  result.enumerated = enumerate(impls, architecture);
  result.pareto = pareto_filter(result.enumerated, objectives);
  return result;
}

TdseResult Tdse::run_stochastic(
    const std::vector<reliability::BaseImpl>& impls,
    const platform::Architecture& architecture,
    const TdseObjectives& objectives, const moea::Nsga2Params& ga,
    std::uint64_t seed) const {
  if (impls.empty()) {
    throw std::invalid_argument("Tdse::run_stochastic: no implementations");
  }
  // Genome: [impl, pe-type selector, hw, ssw, asw, dvfs]. The PE selector
  // indexes the list of types compatible with the chosen implementation
  // (modulo its size), so every genome decodes to a valid point.
  const reliability::ClrSpace& space = analyzer_.space();
  std::vector<std::vector<std::size_t>> compatible(impls.size());
  for (std::size_t i = 0; i < impls.size(); ++i) {
    for (std::size_t pt = 0; pt < architecture.num_types(); ++pt) {
      if (impls[i].runs_on(architecture.type(pt)) &&
          !architecture.pes_of_type(pt).empty()) {
        compatible[i].push_back(pt);
      }
    }
  }
  bool any = false;
  for (const auto& c : compatible) any = any || !c.empty();
  if (!any) {
    throw std::invalid_argument(
        "Tdse::run_stochastic: no PE type can host any implementation");
  }

  std::size_t max_dvfs = 1;
  for (std::size_t pt = 0; pt < architecture.num_types(); ++pt) {
    max_dvfs = std::max(max_dvfs, architecture.type(pt).dvfs.size());
  }
  const std::vector<std::size_t> cards{
      impls.size(),
      architecture.num_types(),
      axes_.hw ? space.hw_methods().size() : 1,
      axes_.ssw ? space.ssw_methods().size() : 1,
      axes_.asw ? space.asw_methods().size() : 1,
      axes_.dvfs ? max_dvfs : 1};

  // Every evaluated point is remembered so the final filtering can run over
  // the whole visited sample, not just the final population.
  std::map<std::array<std::size_t, 6>, TaskDesignPoint> visited;

  auto decode = [&](const moea::GeneVector& g) {
    TaskDesignPoint point;
    std::size_t impl = g[0] % impls.size();
    if (compatible[impl].empty()) {
      // Fall to the nearest hostable implementation (deterministic).
      for (std::size_t i = 0; i < impls.size(); ++i) {
        if (!compatible[i].empty()) {
          impl = i;
          break;
        }
      }
    }
    point.impl_index = impl;
    point.pe_type = compatible[impl][g[1] % compatible[impl].size()];
    const platform::PeType& pe = architecture.type(point.pe_type);
    point.config.hw = axes_.hw ? g[2] : 0;
    point.config.ssw = axes_.ssw ? g[3] : 0;
    point.config.asw = axes_.asw ? g[4] : 0;
    point.config.dvfs = axes_.dvfs ? g[5] % pe.dvfs.size() : 0;
    return point;
  };

  moea::Nsga2Ops<moea::GeneVector> ops;
  ops.create = [&cards](util::Rng& rng) {
    moea::GeneVector g(cards.size());
    for (std::size_t i = 0; i < cards.size(); ++i) g[i] = rng.index(cards[i]);
    return g;
  };
  ops.crossover = [](const moea::GeneVector& a, const moea::GeneVector& b,
                     util::Rng& rng) {
    moea::GeneVector ca = a, cb = b;
    moea::two_point_crossover(ca, cb, rng);
    return std::make_pair(std::move(ca), std::move(cb));
  };
  ops.mutate = [&cards](moea::GeneVector& g, util::Rng& rng) {
    moea::random_reset_mutation(g, cards, rng);
  };
  ops.evaluate = [&](const moea::GeneVector& g) {
    TaskDesignPoint point = decode(g);
    const std::array<std::size_t, 6> key{point.impl_index, point.pe_type,
                                         point.config.hw, point.config.ssw,
                                         point.config.asw, point.config.dvfs};
    auto it = visited.find(key);
    if (it == visited.end()) {
      point.metrics = analyzer_.evaluate(
          impls[point.impl_index], architecture.type(point.pe_type),
          point.config);
      it = visited.emplace(key, point).first;
    }
    moea::Evaluation eval;
    eval.objectives = objectives.extract(it->second.metrics);
    return eval;
  };

  util::Rng rng(seed);
  (void)moea::run_nsga2(ga, ops, rng);

  TdseResult result;
  result.enumerated.reserve(visited.size());
  for (const auto& [key, point] : visited) result.enumerated.push_back(point);
  result.pareto = pareto_filter(result.enumerated, objectives);
  return result;
}

std::vector<TdseResult> Tdse::run_application(
    const app::Application& application,
    const platform::Architecture& architecture,
    const TdseObjectives& objectives) const {
  application.validate();
  const std::size_t types = application.graph.num_types();
  // Task types are independent explorations; fan them out over the thread
  // pool, each writing its own result slot. run() is const and the analyzer
  // stateless, so this is bit-identical to the serial per-type loop.
  std::vector<TdseResult> results(types);
  util::parallel_for(types, [&](std::size_t type) {
    results[type] = run(application.impls[type], architecture, objectives);
  });
  return results;
}

}  // namespace clrearly::core
