// Shared scaffolding for the reproduction benches: default GA parameters
// matching the paper's setup, environment-controlled scaling for smoke runs,
// and CSV emission of Pareto-front series so every figure can be re-plotted.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dse.hpp"

namespace clrearly::core {

/// True when the CLREARLY_FAST environment variable is set (non-empty,
/// not "0") — benches then shrink populations/generations and sweep fewer
/// application sizes so CI smoke runs finish in seconds.
bool fast_mode();

/// GA parameters for the benches: the paper's operator probabilities
/// (pc = 0.8, pm = 0.05, tournament 5) with population/generations sized for
/// minutes-scale full runs, reduced under fast_mode().
moea::Nsga2Params bench_ga_params();

/// Complete DseOptions with bench_ga_params(), the paper's headline
/// objectives (makespan + application error probability) and no QoS limits.
DseOptions bench_options(std::uint64_t seed);

/// Application sizes of TABLEs V-VII: 10..100 tasks (10..30 in fast mode).
std::vector<std::size_t> bench_task_counts();

/// Task analyzer for the system-level experiments (Fig. 7-10, TABLEs V-VII):
/// the paper-default models under an elevated environmental fault rate —
/// the high-fault operating conditions (e.g. high altitude) the paper's
/// introduction motivates. The harsher flux makes cross-layer protection
/// genuinely load-bearing and yields application error probabilities in the
/// range the paper's figures report.
reliability::TaskAnalyzer bench_system_analyzer();

/// Write several named fronts into one CSV (columns: series, then one column
/// per objective) under results/ next to the current working directory.
/// Returns the path written.
std::string write_fronts_csv(
    const std::string& filename,
    const std::vector<std::pair<std::string, std::vector<moea::Objectives>>>&
        series,
    const std::vector<std::string>& objective_names);

}  // namespace clrearly::core
