#include "core/experiment.hpp"

#include <cstdlib>
#include <filesystem>
#include <string>

#include "util/csv.hpp"
#include "util/observability.hpp"

namespace clrearly::core {

bool fast_mode() {
  const char* value = std::getenv("CLREARLY_FAST");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

moea::Nsga2Params bench_ga_params() {
  moea::Nsga2Params params;
  params.crossover_prob = 0.8;
  params.mutation_prob = 1.0;    // the operator is per-task probabilistic
  params.mutation_indpb = 0.05;  // paper Section VI-A
  params.tournament_k = 5;
  if (fast_mode()) {
    params.population_size = 24;
    params.generations = 12;
  } else {
    params.population_size = 100;
    params.generations = 60;
  }
  return params;
}

DseOptions bench_options(std::uint64_t seed) {
  DseOptions options;
  options.ga = bench_ga_params();
  options.objectives = SystemObjectives{};  // makespan + error probability
  // The application-specific QoS requirement of Eq. 5: at the bench's
  // high-fault operating point, a 99% functional-reliability floor is what
  // forces every flow to actually buy protection — single-layer approaches
  // either fail it outright or pay heavily, the paper's core premise.
  options.spec.min_functional_rel = 0.99;
  options.seed = seed;
  return options;
}

std::vector<std::size_t> bench_task_counts() {
  if (fast_mode()) return {10, 20, 30};
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

reliability::TaskAnalyzer bench_system_analyzer() {
  reliability::FaultEnvironment env;
  env.dvfs_sensitivity = 1.2;
  env.environment_factor = 20.0;
  return reliability::TaskAnalyzer(reliability::ClrSpace::paper_default(), env,
                                   reliability::ThermalModel{},
                                   reliability::ArrheniusAging{});
}

std::string write_fronts_csv(
    const std::string& filename,
    const std::vector<std::pair<std::string, std::vector<moea::Objectives>>>&
        series,
    const std::vector<std::string>& objective_names) {
  const util::PhaseTimer timer("experiment.write_fronts");
  std::filesystem::create_directories("results");
  const std::string path = "results/" + filename;
  util::CsvWriter csv(path);

  std::vector<std::string> header{"series"};
  header.insert(header.end(), objective_names.begin(), objective_names.end());
  csv.row(header);

  for (const auto& [name, front] : series) {
    for (const moea::Objectives& point : front) {
      csv.field(name);
      for (double v : point) csv.field(v);
      csv.end_row();
    }
  }
  csv.flush();
  return path;
}

}  // namespace clrearly::core
