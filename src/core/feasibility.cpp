#include "core/feasibility.hpp"

#include <algorithm>
#include <limits>

#include "core/baselines.hpp"
#include "core/tdse.hpp"

namespace clrearly::core {

namespace {

struct TaskBounds {
  double min_error = 1.0;
  double min_avg_time = std::numeric_limits<double>::infinity();
};

LayerFeasibility assess_layer(const std::string& layer,
                              const app::Application& application,
                              const platform::Architecture& architecture,
                              const reliability::TaskAnalyzer& analyzer,
                              const sched::QosSpec& spec,
                              const reliability::ClrAxes& axes) {
  const Tdse tdse(analyzer, axes);
  const app::TaskGraph& graph = application.graph;

  // Per-type bounds over the layer-restricted configuration space.
  std::vector<TaskBounds> type_bounds(graph.num_types());
  for (std::size_t type = 0; type < graph.num_types(); ++type) {
    for (const TaskDesignPoint& point :
         tdse.enumerate(application.impls[type], architecture)) {
      type_bounds[type].min_error =
          std::min(type_bounds[type].min_error, point.metrics.error_prob);
      type_bounds[type].min_avg_time = std::min(
          type_bounds[type].min_avg_time, point.metrics.avg_exec_time_us);
    }
  }

  LayerFeasibility result;
  result.layer = layer;

  // Functional-reliability upper bound (mapping-independent).
  const std::vector<double> zeta = graph.normalized_criticality();
  double weighted_min_error = 0.0;
  for (const app::Task& task : graph.tasks()) {
    weighted_min_error += zeta[task.id] * type_bounds[task.type].min_error;
  }
  result.max_functional_rel = 1.0 - weighted_min_error;

  // Makespan lower bound: critical path under fastest configurations...
  std::vector<double> longest(graph.num_tasks(), 0.0);
  double critical_path = 0.0;
  double total_work = 0.0;
  for (std::size_t t : graph.topological_order()) {
    const double exec = type_bounds[graph.task(t).type].min_avg_time;
    total_work += exec;
    double ready = 0.0;
    for (std::size_t p : graph.predecessors(t)) {
      ready = std::max(ready, longest[p]);
    }
    longest[t] = ready + exec;
    critical_path = std::max(critical_path, longest[t]);
  }
  // ...and the bin-packing bound (total fastest work over all PEs).
  const double packing =
      total_work / static_cast<double>(architecture.num_pes());
  result.min_makespan_us = std::max(critical_path, packing);

  result.reliability_possible =
      !spec.min_functional_rel ||
      result.max_functional_rel >= *spec.min_functional_rel - 1e-12;
  result.deadline_possible =
      !spec.max_makespan_us ||
      result.min_makespan_us <= *spec.max_makespan_us + 1e-9;
  return result;
}

}  // namespace

FeasibilityReport assess_feasibility(
    const app::Application& application,
    const platform::Architecture& architecture,
    const reliability::TaskAnalyzer& analyzer, const sched::QosSpec& spec) {
  application.validate();

  FeasibilityReport report;
  report.layers.push_back(assess_layer("CLR", application, architecture,
                                       analyzer, spec,
                                       reliability::ClrAxes::all()));
  for (const SingleLayer layer :
       {SingleLayer::kDvfs, SingleLayer::kHwRel, SingleLayer::kSswRel,
        SingleLayer::kAswRel}) {
    report.layers.push_back(assess_layer(to_string(layer), application,
                                         architecture, analyzer, spec,
                                         axes_for(layer)));
  }
  report.possibly_feasible = report.clr().reliability_possible &&
                             report.clr().deadline_possible;
  return report;
}

}  // namespace clrearly::core
