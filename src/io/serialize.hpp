// JSON model exchange: save and load Application and Architecture
// descriptions. Lets users author system models in files (or dump generated
// synthetic ones) instead of constructing them in code — the interface a
// released research tool needs.
//
// Format sketch (all numbers plain JSON):
//   architecture: { "types": [ {name, class, masking_factor, weibull_beta,
//                    weibull_eta_base_hours, idle_power_w,
//                    dvfs: [{name, voltage_v, freq_mhz}, ...]}, ... ],
//                   "pes": [type_index, ...],
//                   "interconnect": {bandwidth_kb_per_us, latency_us} }
//   application:  { name, period_us,
//                   "tasks": [{name, type, criticality}, ...],
//                   "edges": [{src, dst, data_kb}, ...],
//                   "impls": [ [ {name, target, base_exec_time_us,
//                                 base_power_w, vulnerability,
//                                 ssw_overhead_factor}, ... ], ... ] }
#pragma once

#include <string>

#include "app/task_graph.hpp"
#include "platform/architecture.hpp"
#include "util/json.hpp"

namespace clrearly::io {

/// Architecture <-> JSON.
util::JsonValue to_json(const platform::Architecture& architecture);
platform::Architecture architecture_from_json(const util::JsonValue& json);

/// Application <-> JSON.
util::JsonValue to_json(const app::Application& application);
app::Application application_from_json(const util::JsonValue& json);

/// File convenience wrappers (throw std::runtime_error on I/O failure and
/// std::runtime_error / std::invalid_argument on malformed content).
void save_architecture(const std::string& path,
                       const platform::Architecture& architecture);
platform::Architecture load_architecture(const std::string& path);
void save_application(const std::string& path,
                      const app::Application& application);
app::Application load_application(const std::string& path);

}  // namespace clrearly::io
