// JSON model exchange: save and load Application and Architecture
// descriptions. Lets users author system models in files (or dump generated
// synthetic ones) instead of constructing them in code — the interface a
// released research tool needs.
//
// Format sketch (all numbers plain JSON):
//   architecture: { "types": [ {name, class, masking_factor, weibull_beta,
//                    weibull_eta_base_hours, idle_power_w,
//                    dvfs: [{name, voltage_v, freq_mhz}, ...]}, ... ],
//                   "pes": [type_index, ...],
//                   "interconnect": {bandwidth_kb_per_us, latency_us} }
//   application:  { name, period_us,
//                   "tasks": [{name, type, criticality}, ...],
//                   "edges": [{src, dst, data_kb}, ...],
//                   "impls": [ [ {name, target, base_exec_time_us,
//                                 base_power_w, vulnerability,
//                                 ssw_overhead_factor}, ... ], ... ] }
// Versioned job wire format (format_version 1): a JobSpec bundles everything
// a DSE run needs — flow, seed, operating condition, GA parameters,
// objectives, QoS spec and the full application/architecture models — into
// one JSON document, so jobs can be submitted to the serve daemon, spooled
// to disk and replayed bit-identically later. Unknown format versions and
// unknown top-level keys are rejected (fail loud, not silently wrong).
#pragma once

#include <cstdint>
#include <string>

#include "app/task_graph.hpp"
#include "core/dse.hpp"
#include "core/scenario.hpp"
#include "platform/architecture.hpp"
#include "util/json.hpp"

namespace clrearly::io {

/// Architecture <-> JSON.
util::JsonValue to_json(const platform::Architecture& architecture);
platform::Architecture architecture_from_json(const util::JsonValue& json);

/// Application <-> JSON.
util::JsonValue to_json(const app::Application& application);
app::Application application_from_json(const util::JsonValue& json);

/// File convenience wrappers (throw std::runtime_error on I/O failure and
/// std::runtime_error / std::invalid_argument on malformed content).
void save_architecture(const std::string& path,
                       const platform::Architecture& architecture);
platform::Architecture load_architecture(const std::string& path);
void save_application(const std::string& path,
                      const app::Application& application);
app::Application load_application(const std::string& path);

/// Resolve the spec strings every clrearly front end accepts:
///   application: "sobel" | "mjpeg" | "synthetic:<tasks>[:<seed>]" | a path
///   architecture: "default" | a path
/// (the CLI's --app/--arch values and the wire format's string shorthands).
app::Application resolve_application(const std::string& spec);
platform::Architecture resolve_architecture(const std::string& spec);

// --------------------------------------------------------------- wire format

/// Version of the job wire format. from_json rejects documents whose
/// format_version differs — a v2 reader must be written deliberately, never
/// improvised by ignoring fields.
inline constexpr int kWireFormatVersion = 1;

/// Operating condition <-> JSON.
util::JsonValue to_json(const core::Scenario& scenario);
core::Scenario scenario_from_json(const util::JsonValue& json);

/// Scenario set <-> JSON (weights serialized post-normalization).
util::JsonValue to_json(const core::ScenarioSet& scenarios);
core::ScenarioSet scenario_set_from_json(const util::JsonValue& json);

/// NSGA-II parameters <-> JSON. The on_generation observer is runtime-only
/// state and is never serialized.
util::JsonValue to_json(const moea::Nsga2Params& params);
moea::Nsga2Params nsga2_params_from_json(const util::JsonValue& json);

/// System-level objective selection <-> JSON.
util::JsonValue to_json(const core::SystemObjectives& objectives);
core::SystemObjectives system_objectives_from_json(const util::JsonValue& json);

/// QoS spec <-> JSON; absent keys mean "constraint unset".
util::JsonValue to_json(const sched::QosSpec& spec);
sched::QosSpec qos_spec_from_json(const util::JsonValue& json);

/// Permanent-fault resilience axis <-> JSON (the kresilient flow's
/// parameters: tolerated failures, mission time, spares, degraded spec).
util::JsonValue to_json(const core::ResilienceSpec& resilience);
core::ResilienceSpec resilience_spec_from_json(const util::JsonValue& json);

/// Island-model parameters <-> JSON (the `islands` sub-object: count,
/// migration_interval, migration_size). Strict keys; validated on parse.
util::JsonValue to_json(const moea::IslandParams& island);
moea::IslandParams island_params_from_json(const util::JsonValue& json);

/// tDSE objective ladder <-> JSON.
util::JsonValue to_json(const core::TdseObjectives& objectives);
core::TdseObjectives tdse_objectives_from_json(const util::JsonValue& json);

/// One self-contained DSE job: which flow to run, with which seed, under
/// which operating condition, over which (embedded) models. The JSON form
/// accepts either embedded model objects or the spec-string shorthands
/// ("sobel", "default", ...); to_json always embeds the resolved models so
/// a spooled job replays identically even if the builtins evolve.
struct JobSpec {
  int format_version = kWireFormatVersion;
  std::string name;               ///< optional client label
  std::string flow = "proposed";  ///< fcclr | pfclr | proposed | kresilient
  std::uint64_t seed = 1;
  /// Requested worker threads, recorded into the job manifest. Results are
  /// thread-count-invariant by construction, so the daemon may execute on
  /// its own pool without changing a bit of the outcome.
  std::size_t threads = 0;
  bool heuristic_seed = false;
  core::Scenario scenario;  ///< operating condition (environment factor)
  moea::Nsga2Params ga;
  /// Island-model sharding of the GA population (docs/SCALING.md). Part of
  /// the model key: island and single-population jobs search the same space
  /// but with different sharding, and keeping their sessions separate makes
  /// the session cache's replay guarantees trivially correct.
  moea::IslandParams island;
  core::SystemObjectives objectives;
  sched::QosSpec spec;
  core::TdseObjectives tdse_objectives = core::TdseObjectives::tdse_run(1);
  /// Permanent-fault axis; consulted by the kresilient flow only, but always
  /// serialized (and part of the model key) so resilient and nominal jobs
  /// never alias each other's problem caches.
  core::ResilienceSpec resilience;
  app::Application application;
  platform::Architecture architecture;

  /// Translate into the options struct the DseMethodology flows consume.
  core::DseOptions options() const;

  /// Canonical serialization of the *model* half (application, architecture,
  /// scenario environment, objectives, spec, tDSE ladder, island sharding) —
  /// everything that determines ClrMappingProblem construction and
  /// evaluation, and nothing that doesn't (seed, GA budget, flow, label).
  /// Jobs with equal model keys can share problem instances and their memo
  /// caches.
  std::string model_key() const;
};

util::JsonValue to_json(const JobSpec& spec);
/// Inverse of to_json. Throws std::runtime_error on an unknown
/// format_version, unknown top-level keys, a bad flow tag or malformed
/// fields (via the strict JsonValue accessors).
JobSpec job_spec_from_json(const util::JsonValue& json);

void save_job_spec(const std::string& path, const JobSpec& spec);
JobSpec load_job_spec(const std::string& path);

}  // namespace clrearly::io
