#include "io/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace clrearly::io {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

const char* class_tag(platform::PeClass c) {
  return c == platform::PeClass::kEmbeddedProcessor ? "processor" : "fabric";
}

platform::PeClass class_from_tag(const std::string& tag) {
  if (tag == "processor") return platform::PeClass::kEmbeddedProcessor;
  if (tag == "fabric") return platform::PeClass::kReconfigurableRegion;
  throw std::runtime_error("serialize: unknown PE class '" + tag + "'");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("serialize: cannot open " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("serialize: cannot write " + path);
  out << content;
  if (!out) throw std::runtime_error("serialize: write failed for " + path);
}

}  // namespace

// ------------------------------------------------------------ architecture

JsonValue to_json(const platform::Architecture& architecture) {
  JsonArray types;
  for (const platform::PeType& type : architecture.types()) {
    JsonArray dvfs;
    for (const platform::DvfsMode& mode : type.dvfs.modes()) {
      dvfs.push_back(JsonObject{{"name", mode.name},
                                {"voltage_v", mode.voltage_v},
                                {"freq_mhz", mode.freq_mhz}});
    }
    types.push_back(JsonObject{
        {"name", type.name},
        {"class", class_tag(type.pe_class)},
        {"masking_factor", type.masking_factor},
        {"weibull_beta", type.weibull_beta},
        {"weibull_eta_base_hours", type.weibull_eta_base_hours},
        {"idle_power_w", type.idle_power_w},
        {"memory_kb", type.memory_kb},
        {"dvfs", std::move(dvfs)}});
  }
  JsonArray pes;
  for (const platform::Pe& pe : architecture.pes()) {
    pes.push_back(JsonValue(pe.type_index));
  }
  JsonObject root{{"types", std::move(types)}, {"pes", std::move(pes)}};
  if (architecture.interconnect().models_communication()) {
    root.emplace(
        "interconnect",
        JsonObject{
            {"bandwidth_kb_per_us",
             architecture.interconnect().bandwidth_kb_per_us},
            {"latency_us", architecture.interconnect().latency_us}});
  }
  return JsonValue(std::move(root));
}

platform::Architecture architecture_from_json(const JsonValue& json) {
  platform::Architecture arch;
  for (const JsonValue& entry : json.at("types").as_array()) {
    platform::PeType type;
    type.name = entry.at("name").as_string();
    type.pe_class = class_from_tag(entry.at("class").as_string());
    type.masking_factor = entry.at("masking_factor").as_number();
    type.weibull_beta = entry.at("weibull_beta").as_number();
    type.weibull_eta_base_hours =
        entry.at("weibull_eta_base_hours").as_number();
    type.idle_power_w = entry.at("idle_power_w").as_number();
    type.memory_kb = entry.number_or("memory_kb", 0.0);
    std::vector<platform::DvfsMode> modes;
    for (const JsonValue& m : entry.at("dvfs").as_array()) {
      modes.push_back(platform::DvfsMode{m.at("name").as_string(),
                                         m.at("voltage_v").as_number(),
                                         m.at("freq_mhz").as_number()});
    }
    type.dvfs = platform::DvfsTable(std::move(modes));
    arch.add_type(std::move(type));
  }
  for (const JsonValue& pe : json.at("pes").as_array()) {
    arch.add_pe(static_cast<std::size_t>(pe.as_number()));
  }
  if (const JsonValue* icn = json.find("interconnect")) {
    platform::Interconnect interconnect;
    interconnect.bandwidth_kb_per_us =
        icn->at("bandwidth_kb_per_us").as_number();
    interconnect.latency_us = icn->at("latency_us").as_number();
    arch.set_interconnect(interconnect);
  }
  return arch;
}

// ------------------------------------------------------------ application

JsonValue to_json(const app::Application& application) {
  JsonArray tasks;
  for (const app::Task& task : application.graph.tasks()) {
    tasks.push_back(JsonObject{{"name", task.name},
                               {"type", task.type},
                               {"criticality", task.criticality}});
  }
  JsonArray edges;
  for (const app::Edge& edge : application.graph.edges()) {
    edges.push_back(JsonObject{
        {"src", edge.src}, {"dst", edge.dst}, {"data_kb", edge.data_kb}});
  }
  JsonArray impls;
  for (const auto& type_impls : application.impls) {
    JsonArray list;
    for (const reliability::BaseImpl& impl : type_impls) {
      list.push_back(
          JsonObject{{"name", impl.name},
                     {"target", class_tag(impl.target)},
                     {"base_exec_time_us", impl.base_exec_time_us},
                     {"base_power_w", impl.base_power_w},
                     {"vulnerability", impl.vulnerability},
                     {"ssw_overhead_factor", impl.ssw_overhead_factor},
                     {"footprint_kb", impl.footprint_kb}});
    }
    impls.push_back(std::move(list));
  }
  return JsonValue(JsonObject{{"name", application.name},
                              {"period_us", application.period_us},
                              {"tasks", std::move(tasks)},
                              {"edges", std::move(edges)},
                              {"impls", std::move(impls)}});
}

app::Application application_from_json(const JsonValue& json) {
  app::Application application;
  application.name = json.at("name").as_string();
  application.period_us = json.at("period_us").as_number();
  for (const JsonValue& t : json.at("tasks").as_array()) {
    application.graph.add_task(
        static_cast<std::size_t>(t.at("type").as_number()),
        t.at("name").as_string(), t.number_or("criticality", 1.0));
  }
  for (const JsonValue& e : json.at("edges").as_array()) {
    application.graph.add_edge(
        static_cast<std::size_t>(e.at("src").as_number()),
        static_cast<std::size_t>(e.at("dst").as_number()),
        e.number_or("data_kb", 0.0));
  }
  for (const JsonValue& type_impls : json.at("impls").as_array()) {
    std::vector<reliability::BaseImpl> list;
    for (const JsonValue& i : type_impls.as_array()) {
      reliability::BaseImpl impl;
      impl.name = i.at("name").as_string();
      impl.target = class_from_tag(i.at("target").as_string());
      impl.base_exec_time_us = i.at("base_exec_time_us").as_number();
      impl.base_power_w = i.at("base_power_w").as_number();
      impl.vulnerability = i.number_or("vulnerability", 1.0);
      impl.ssw_overhead_factor = i.number_or("ssw_overhead_factor", 1.0);
      impl.footprint_kb = i.number_or("footprint_kb", 0.0);
      list.push_back(std::move(impl));
    }
    application.impls.push_back(std::move(list));
  }
  application.validate();
  return application;
}

// ------------------------------------------------------------ file helpers

void save_architecture(const std::string& path,
                       const platform::Architecture& architecture) {
  write_file(path, util::json_serialize(to_json(architecture)));
}

platform::Architecture load_architecture(const std::string& path) {
  return architecture_from_json(util::json_parse(read_file(path)));
}

void save_application(const std::string& path,
                      const app::Application& application) {
  write_file(path, util::json_serialize(to_json(application)));
}

app::Application load_application(const std::string& path) {
  return application_from_json(util::json_parse(read_file(path)));
}

}  // namespace clrearly::io
