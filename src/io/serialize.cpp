#include "io/serialize.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "app/characterizer.hpp"
#include "app/mjpeg.hpp"
#include "app/sobel.hpp"

namespace clrearly::io {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

const char* class_tag(platform::PeClass c) {
  return c == platform::PeClass::kEmbeddedProcessor ? "processor" : "fabric";
}

platform::PeClass class_from_tag(const std::string& tag) {
  if (tag == "processor") return platform::PeClass::kEmbeddedProcessor;
  if (tag == "fabric") return platform::PeClass::kReconfigurableRegion;
  throw std::runtime_error("serialize: unknown PE class '" + tag + "'");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("serialize: cannot open " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("serialize: cannot write " + path);
  out << content;
  if (!out) throw std::runtime_error("serialize: write failed for " + path);
}

}  // namespace

// ------------------------------------------------------------ architecture

JsonValue to_json(const platform::Architecture& architecture) {
  JsonArray types;
  for (const platform::PeType& type : architecture.types()) {
    JsonArray dvfs;
    for (const platform::DvfsMode& mode : type.dvfs.modes()) {
      dvfs.push_back(JsonObject{{"name", mode.name},
                                {"voltage_v", mode.voltage_v},
                                {"freq_mhz", mode.freq_mhz}});
    }
    types.push_back(JsonObject{
        {"name", type.name},
        {"class", class_tag(type.pe_class)},
        {"masking_factor", type.masking_factor},
        {"weibull_beta", type.weibull_beta},
        {"weibull_eta_base_hours", type.weibull_eta_base_hours},
        {"idle_power_w", type.idle_power_w},
        {"memory_kb", type.memory_kb},
        {"dvfs", std::move(dvfs)}});
  }
  JsonArray pes;
  for (const platform::Pe& pe : architecture.pes()) {
    pes.push_back(JsonValue(pe.type_index));
  }
  JsonObject root{{"types", std::move(types)}, {"pes", std::move(pes)}};
  if (architecture.interconnect().models_communication()) {
    root.emplace(
        "interconnect",
        JsonObject{
            {"bandwidth_kb_per_us",
             architecture.interconnect().bandwidth_kb_per_us},
            {"latency_us", architecture.interconnect().latency_us}});
  }
  return JsonValue(std::move(root));
}

platform::Architecture architecture_from_json(const JsonValue& json) {
  platform::Architecture arch;
  for (const JsonValue& entry : json.at("types").as_array()) {
    platform::PeType type;
    type.name = entry.at("name").as_string();
    type.pe_class = class_from_tag(entry.at("class").as_string());
    type.masking_factor = entry.at("masking_factor").as_number();
    type.weibull_beta = entry.at("weibull_beta").as_number();
    type.weibull_eta_base_hours =
        entry.at("weibull_eta_base_hours").as_number();
    type.idle_power_w = entry.at("idle_power_w").as_number();
    type.memory_kb = entry.number_or("memory_kb", 0.0);
    std::vector<platform::DvfsMode> modes;
    for (const JsonValue& m : entry.at("dvfs").as_array()) {
      modes.push_back(platform::DvfsMode{m.at("name").as_string(),
                                         m.at("voltage_v").as_number(),
                                         m.at("freq_mhz").as_number()});
    }
    type.dvfs = platform::DvfsTable(std::move(modes));
    arch.add_type(std::move(type));
  }
  for (const JsonValue& pe : json.at("pes").as_array()) {
    arch.add_pe(static_cast<std::size_t>(pe.as_number()));
  }
  if (const JsonValue* icn = json.find("interconnect")) {
    platform::Interconnect interconnect;
    interconnect.bandwidth_kb_per_us =
        icn->at("bandwidth_kb_per_us").as_number();
    interconnect.latency_us = icn->at("latency_us").as_number();
    arch.set_interconnect(interconnect);
  }
  return arch;
}

// ------------------------------------------------------------ application

JsonValue to_json(const app::Application& application) {
  JsonArray tasks;
  for (const app::Task& task : application.graph.tasks()) {
    tasks.push_back(JsonObject{{"name", task.name},
                               {"type", task.type},
                               {"criticality", task.criticality}});
  }
  JsonArray edges;
  for (const app::Edge& edge : application.graph.edges()) {
    edges.push_back(JsonObject{
        {"src", edge.src}, {"dst", edge.dst}, {"data_kb", edge.data_kb}});
  }
  JsonArray impls;
  for (const auto& type_impls : application.impls) {
    JsonArray list;
    for (const reliability::BaseImpl& impl : type_impls) {
      list.push_back(
          JsonObject{{"name", impl.name},
                     {"target", class_tag(impl.target)},
                     {"base_exec_time_us", impl.base_exec_time_us},
                     {"base_power_w", impl.base_power_w},
                     {"vulnerability", impl.vulnerability},
                     {"ssw_overhead_factor", impl.ssw_overhead_factor},
                     {"footprint_kb", impl.footprint_kb}});
    }
    impls.push_back(std::move(list));
  }
  return JsonValue(JsonObject{{"name", application.name},
                              {"period_us", application.period_us},
                              {"tasks", std::move(tasks)},
                              {"edges", std::move(edges)},
                              {"impls", std::move(impls)}});
}

app::Application application_from_json(const JsonValue& json) {
  app::Application application;
  application.name = json.at("name").as_string();
  application.period_us = json.at("period_us").as_number();
  for (const JsonValue& t : json.at("tasks").as_array()) {
    application.graph.add_task(
        static_cast<std::size_t>(t.at("type").as_number()),
        t.at("name").as_string(), t.number_or("criticality", 1.0));
  }
  for (const JsonValue& e : json.at("edges").as_array()) {
    application.graph.add_edge(
        static_cast<std::size_t>(e.at("src").as_number()),
        static_cast<std::size_t>(e.at("dst").as_number()),
        e.number_or("data_kb", 0.0));
  }
  for (const JsonValue& type_impls : json.at("impls").as_array()) {
    std::vector<reliability::BaseImpl> list;
    for (const JsonValue& i : type_impls.as_array()) {
      reliability::BaseImpl impl;
      impl.name = i.at("name").as_string();
      impl.target = class_from_tag(i.at("target").as_string());
      impl.base_exec_time_us = i.at("base_exec_time_us").as_number();
      impl.base_power_w = i.at("base_power_w").as_number();
      impl.vulnerability = i.number_or("vulnerability", 1.0);
      impl.ssw_overhead_factor = i.number_or("ssw_overhead_factor", 1.0);
      impl.footprint_kb = i.number_or("footprint_kb", 0.0);
      list.push_back(std::move(impl));
    }
    application.impls.push_back(std::move(list));
  }
  application.validate();
  return application;
}

// ------------------------------------------------------------ file helpers

void save_architecture(const std::string& path,
                       const platform::Architecture& architecture) {
  write_file(path, util::json_serialize(to_json(architecture)));
}

platform::Architecture load_architecture(const std::string& path) {
  return architecture_from_json(util::json_parse(read_file(path)));
}

void save_application(const std::string& path,
                      const app::Application& application) {
  write_file(path, util::json_serialize(to_json(application)));
}

app::Application load_application(const std::string& path) {
  return application_from_json(util::json_parse(read_file(path)));
}

// ------------------------------------------------------------ spec strings

app::Application resolve_application(const std::string& spec) {
  if (spec == "sobel") return app::make_sobel_application();
  if (spec == "mjpeg") return app::make_mjpeg_application();
  if (spec.rfind("synthetic:", 0) == 0) {
    const std::string rest = spec.substr(10);
    const std::size_t colon = rest.find(':');
    const std::size_t tasks = std::stoul(rest.substr(0, colon));
    const std::uint64_t seed =
        colon == std::string::npos ? 1 : std::stoull(rest.substr(colon + 1));
    return app::make_synthetic_application(tasks, 10, seed);
  }
  return load_application(spec);
}

platform::Architecture resolve_architecture(const std::string& spec) {
  if (spec == "default") return platform::Architecture::paper_default();
  return load_architecture(spec);
}

// ------------------------------------------------------------- wire format

namespace {

std::uint64_t as_uint64(const JsonValue& value, const char* what) {
  const double number = value.as_number();
  if (number < 0.0 ||
      number != static_cast<double>(static_cast<std::uint64_t>(number))) {
    throw std::runtime_error(std::string("serialize: ") + what +
                             " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

void set_optional(JsonObject& object, const char* key,
                  const std::optional<double>& value) {
  if (value.has_value()) object.emplace(key, *value);
}

std::optional<double> get_optional(const JsonValue& json, const char* key) {
  const JsonValue* value = json.find(key);
  if (value == nullptr) return std::nullopt;
  return value->as_number();
}

/// Reject keys outside `allowed` so a typoed field fails loud instead of
/// silently falling back to a default.
void reject_unknown_keys(const JsonObject& object,
                         std::initializer_list<const char*> allowed,
                         const char* what) {
  for (const auto& [key, value] : object) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::runtime_error(std::string("serialize: unknown ") + what +
                               " field '" + key + "'");
    }
  }
}

}  // namespace

JsonValue to_json(const core::Scenario& scenario) {
  return JsonValue(JsonObject{{"name", scenario.name},
                              {"environment_factor",
                               scenario.environment_factor},
                              {"weight", scenario.weight}});
}

core::Scenario scenario_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"name", "environment_factor", "weight"}, "scenario");
  core::Scenario scenario;
  if (const JsonValue* name = json.find("name")) {
    scenario.name = name->as_string();
  }
  scenario.environment_factor = json.number_or("environment_factor", 1.0);
  scenario.weight = json.number_or("weight", 1.0);
  return scenario;
}

JsonValue to_json(const core::ScenarioSet& scenarios) {
  JsonArray list;
  for (const core::Scenario& scenario : scenarios.scenarios()) {
    list.push_back(to_json(scenario));
  }
  return JsonValue(std::move(list));
}

core::ScenarioSet scenario_set_from_json(const JsonValue& json) {
  std::vector<core::Scenario> scenarios;
  for (const JsonValue& entry : json.as_array()) {
    scenarios.push_back(scenario_from_json(entry));
  }
  return core::ScenarioSet(std::move(scenarios));
}

JsonValue to_json(const moea::Nsga2Params& params) {
  return JsonValue(JsonObject{
      {"population_size", params.population_size},
      {"generations", params.generations},
      {"crossover_prob", params.crossover_prob},
      {"mutation_prob", params.mutation_prob},
      {"mutation_indpb", params.mutation_indpb},
      {"tournament_k", params.tournament_k},
      {"archive_size", params.archive_size}});
}

moea::Nsga2Params nsga2_params_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"population_size", "generations", "crossover_prob",
                       "mutation_prob", "mutation_indpb", "tournament_k",
                       "archive_size"},
                      "ga");
  moea::Nsga2Params params;
  if (const JsonValue* v = json.find("population_size")) {
    params.population_size = static_cast<std::size_t>(
        as_uint64(*v, "ga.population_size"));
  }
  if (const JsonValue* v = json.find("generations")) {
    params.generations = static_cast<std::size_t>(
        as_uint64(*v, "ga.generations"));
  }
  params.crossover_prob = json.number_or("crossover_prob",
                                         params.crossover_prob);
  params.mutation_prob = json.number_or("mutation_prob", params.mutation_prob);
  params.mutation_indpb = json.number_or("mutation_indpb",
                                         params.mutation_indpb);
  if (const JsonValue* v = json.find("tournament_k")) {
    params.tournament_k = static_cast<std::size_t>(
        as_uint64(*v, "ga.tournament_k"));
  }
  if (const JsonValue* v = json.find("archive_size")) {
    params.archive_size = static_cast<std::size_t>(
        as_uint64(*v, "ga.archive_size"));
  }
  params.validate();
  return params;
}

JsonValue to_json(const core::SystemObjectives& objectives) {
  return JsonValue(JsonObject{{"makespan", objectives.makespan},
                              {"error_prob", objectives.error_prob},
                              {"mttf", objectives.mttf},
                              {"energy", objectives.energy},
                              {"power", objectives.power},
                              {"w_makespan", objectives.w_makespan},
                              {"w_error_prob", objectives.w_error_prob},
                              {"w_mttf", objectives.w_mttf},
                              {"w_energy", objectives.w_energy},
                              {"w_power", objectives.w_power}});
}

core::SystemObjectives system_objectives_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"makespan", "error_prob", "mttf", "energy", "power",
                       "w_makespan", "w_error_prob", "w_mttf", "w_energy",
                       "w_power"},
                      "objectives");
  core::SystemObjectives objectives;
  auto flag = [&](const char* key, bool fallback) {
    const JsonValue* value = json.find(key);
    return value == nullptr ? fallback : value->as_bool();
  };
  objectives.makespan = flag("makespan", objectives.makespan);
  objectives.error_prob = flag("error_prob", objectives.error_prob);
  objectives.mttf = flag("mttf", objectives.mttf);
  objectives.energy = flag("energy", objectives.energy);
  objectives.power = flag("power", objectives.power);
  objectives.w_makespan = json.number_or("w_makespan", objectives.w_makespan);
  objectives.w_error_prob =
      json.number_or("w_error_prob", objectives.w_error_prob);
  objectives.w_mttf = json.number_or("w_mttf", objectives.w_mttf);
  objectives.w_energy = json.number_or("w_energy", objectives.w_energy);
  objectives.w_power = json.number_or("w_power", objectives.w_power);
  if (objectives.count() == 0) {
    throw std::runtime_error(
        "serialize: objectives must enable at least one metric");
  }
  return objectives;
}

JsonValue to_json(const sched::QosSpec& spec) {
  JsonObject object;
  set_optional(object, "max_makespan_us", spec.max_makespan_us);
  set_optional(object, "min_functional_rel", spec.min_functional_rel);
  set_optional(object, "min_mttf_hours", spec.min_mttf_hours);
  set_optional(object, "max_energy_uj", spec.max_energy_uj);
  set_optional(object, "max_peak_power_w", spec.max_peak_power_w);
  return JsonValue(std::move(object));
}

sched::QosSpec qos_spec_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"max_makespan_us", "min_functional_rel",
                       "min_mttf_hours", "max_energy_uj", "max_peak_power_w"},
                      "qos");
  sched::QosSpec spec;
  spec.max_makespan_us = get_optional(json, "max_makespan_us");
  spec.min_functional_rel = get_optional(json, "min_functional_rel");
  spec.min_mttf_hours = get_optional(json, "min_mttf_hours");
  spec.max_energy_uj = get_optional(json, "max_energy_uj");
  spec.max_peak_power_w = get_optional(json, "max_peak_power_w");
  return spec;
}

JsonValue to_json(const core::ResilienceSpec& resilience) {
  JsonArray spares;
  spares.reserve(resilience.spare_pes.size());
  for (std::size_t pe : resilience.spare_pes) spares.emplace_back(pe);
  return JsonValue(
      JsonObject{{"max_failures", resilience.max_failures},
                 {"mission_hours", resilience.mission_hours},
                 {"spare_pes", std::move(spares)},
                 {"spare_penalty_weight", resilience.spare_penalty_weight},
                 {"degraded_qos", to_json(resilience.degraded_spec)}});
}

core::ResilienceSpec resilience_spec_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"max_failures", "mission_hours", "spare_pes",
                       "spare_penalty_weight", "degraded_qos"},
                      "resilience");
  core::ResilienceSpec resilience;
  if (const JsonValue* k = json.find("max_failures")) {
    resilience.max_failures =
        static_cast<std::size_t>(as_uint64(*k, "max_failures"));
  }
  resilience.mission_hours =
      json.number_or("mission_hours", resilience.mission_hours);
  if (const JsonValue* spares = json.find("spare_pes")) {
    for (const JsonValue& pe : spares->as_array()) {
      resilience.spare_pes.push_back(
          static_cast<std::size_t>(as_uint64(pe, "spare_pes")));
    }
  }
  resilience.spare_penalty_weight = json.number_or(
      "spare_penalty_weight", resilience.spare_penalty_weight);
  if (const JsonValue* degraded = json.find("degraded_qos")) {
    resilience.degraded_spec = qos_spec_from_json(*degraded);
  }
  return resilience;
}

JsonValue to_json(const moea::IslandParams& island) {
  return JsonValue(
      JsonObject{{"count", island.islands},
                 {"migration_interval", island.migration_interval},
                 {"migration_size", island.migration_size}});
}

moea::IslandParams island_params_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"count", "migration_interval", "migration_size"},
                      "islands");
  moea::IslandParams island;
  if (const JsonValue* count = json.find("count")) {
    island.islands = static_cast<std::size_t>(as_uint64(*count, "count"));
  }
  if (const JsonValue* interval = json.find("migration_interval")) {
    island.migration_interval =
        static_cast<std::size_t>(as_uint64(*interval, "migration_interval"));
  }
  if (const JsonValue* size = json.find("migration_size")) {
    island.migration_size =
        static_cast<std::size_t>(as_uint64(*size, "migration_size"));
  }
  try {
    island.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("serialize: islands: ") + e.what());
  }
  return island;
}

JsonValue to_json(const core::TdseObjectives& objectives) {
  return JsonValue(JsonObject{{"avg_exec_time", objectives.avg_exec_time},
                              {"error_prob", objectives.error_prob},
                              {"mttf", objectives.mttf},
                              {"energy", objectives.energy},
                              {"power", objectives.power},
                              {"peak_temp", objectives.peak_temp}});
}

core::TdseObjectives tdse_objectives_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"avg_exec_time", "error_prob", "mttf", "energy",
                       "power", "peak_temp"},
                      "tdse_objectives");
  core::TdseObjectives objectives;
  auto flag = [&](const char* key, bool fallback) {
    const JsonValue* value = json.find(key);
    return value == nullptr ? fallback : value->as_bool();
  };
  objectives.avg_exec_time = flag("avg_exec_time", objectives.avg_exec_time);
  objectives.error_prob = flag("error_prob", objectives.error_prob);
  objectives.mttf = flag("mttf", objectives.mttf);
  objectives.energy = flag("energy", objectives.energy);
  objectives.power = flag("power", objectives.power);
  objectives.peak_temp = flag("peak_temp", objectives.peak_temp);
  if (objectives.count() == 0) {
    throw std::runtime_error(
        "serialize: tdse_objectives must enable at least one metric");
  }
  return objectives;
}

core::DseOptions JobSpec::options() const {
  core::DseOptions options;
  options.ga = ga;
  options.objectives = objectives;
  options.spec = spec;
  options.tdse_objectives = tdse_objectives;
  options.seed = seed;
  options.heuristic_seed = heuristic_seed;
  options.resilience = resilience;
  options.island = island;
  return options;
}

std::string JobSpec::model_key() const {
  // Canonical because JsonObject keys are sorted and number formatting is
  // shortest-round-trip to_chars: equal models always produce equal keys.
  JsonObject model{{"application", to_json(application)},
                   {"architecture", to_json(architecture)},
                   {"environment_factor", scenario.environment_factor},
                   {"objectives", to_json(objectives)},
                   {"islands", to_json(island)},
                   {"qos", to_json(spec)},
                   {"resilience", to_json(resilience)},
                   {"tdse_objectives", to_json(tdse_objectives)}};
  return util::json_serialize(JsonValue(std::move(model)));
}

JsonValue to_json(const JobSpec& spec) {
  JsonObject root{{"format_version", spec.format_version},
                  {"flow", spec.flow},
                  {"seed", spec.seed},
                  {"threads", spec.threads},
                  {"heuristic_seed", spec.heuristic_seed},
                  {"scenario", to_json(spec.scenario)},
                  {"ga", to_json(spec.ga)},
                  {"objectives", to_json(spec.objectives)},
                  {"islands", to_json(spec.island)},
                  {"qos", to_json(spec.spec)},
                  {"resilience", to_json(spec.resilience)},
                  {"tdse_objectives", to_json(spec.tdse_objectives)},
                  {"application", to_json(spec.application)},
                  {"architecture", to_json(spec.architecture)}};
  if (!spec.name.empty()) root.emplace("name", spec.name);
  return JsonValue(std::move(root));
}

JobSpec job_spec_from_json(const JsonValue& json) {
  reject_unknown_keys(json.as_object(),
                      {"format_version", "name", "flow", "seed", "threads",
                       "heuristic_seed", "scenario", "ga", "objectives",
                       "islands", "qos", "resilience", "tdse_objectives",
                       "application", "architecture"},
                      "job");
  JobSpec spec;
  spec.format_version =
      static_cast<int>(as_uint64(json.at("format_version"), "format_version"));
  if (spec.format_version != kWireFormatVersion) {
    throw std::runtime_error(
        "serialize: unsupported job format_version " +
        std::to_string(spec.format_version) + " (this build speaks v" +
        std::to_string(kWireFormatVersion) + ")");
  }
  if (const JsonValue* name = json.find("name")) {
    spec.name = name->as_string();
  }
  if (const JsonValue* flow = json.find("flow")) {
    spec.flow = flow->as_string();
  }
  if (spec.flow != "fcclr" && spec.flow != "pfclr" &&
      spec.flow != "proposed" && spec.flow != "kresilient") {
    throw std::runtime_error(
        "serialize: unknown flow '" + spec.flow +
        "' (expected fcclr | pfclr | proposed | kresilient)");
  }
  if (const JsonValue* seed = json.find("seed")) {
    spec.seed = as_uint64(*seed, "seed");
  }
  if (const JsonValue* threads = json.find("threads")) {
    spec.threads = static_cast<std::size_t>(as_uint64(*threads, "threads"));
  }
  if (const JsonValue* heuristic = json.find("heuristic_seed")) {
    spec.heuristic_seed = heuristic->as_bool();
  }
  if (const JsonValue* scenario = json.find("scenario")) {
    spec.scenario = scenario_from_json(*scenario);
  }
  if (spec.scenario.environment_factor <= 0.0) {
    throw std::runtime_error(
        "serialize: scenario.environment_factor must be positive");
  }
  if (const JsonValue* ga = json.find("ga")) {
    spec.ga = nsga2_params_from_json(*ga);
  }
  if (const JsonValue* objectives = json.find("objectives")) {
    spec.objectives = system_objectives_from_json(*objectives);
  }
  if (const JsonValue* islands = json.find("islands")) {
    spec.island = island_params_from_json(*islands);
  }
  if (const JsonValue* qos = json.find("qos")) {
    spec.spec = qos_spec_from_json(*qos);
  }
  if (const JsonValue* resilience = json.find("resilience")) {
    spec.resilience = resilience_spec_from_json(*resilience);
  }
  if (const JsonValue* tdse = json.find("tdse_objectives")) {
    spec.tdse_objectives = tdse_objectives_from_json(*tdse);
  }
  const JsonValue& application = json.at("application");
  spec.application = application.is_string()
                         ? resolve_application(application.as_string())
                         : application_from_json(application);
  if (const JsonValue* architecture = json.find("architecture")) {
    spec.architecture = architecture->is_string()
                            ? resolve_architecture(architecture->as_string())
                            : architecture_from_json(*architecture);
  } else {
    spec.architecture = platform::Architecture::paper_default();
  }
  // Resilience can only be checked once the architecture is known (the spare
  // ids and failure budget are relative to its PE count). Rethrow as
  // runtime_error to keep from_json's error contract uniform.
  try {
    spec.resilience.validate(spec.architecture.num_pes());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("serialize: resilience: ") +
                             e.what());
  }
  return spec;
}

void save_job_spec(const std::string& path, const JobSpec& spec) {
  write_file(path, util::json_serialize(to_json(spec)));
}

JobSpec load_job_spec(const std::string& path) {
  return job_spec_from_json(util::json_parse(read_file(path)));
}

}  // namespace clrearly::io
