// Island-model NSGA-II (ROADMAP item: 1000+-task graphs).
//
// The population is sharded into N islands, each an independent Nsga2Engine
// with its own Rng::split stream, evolving concurrently over the shared
// thread pool. Every `migration_interval` generations the islands exchange
// their best individuals over a deterministic ring (island i's emigrants
// join island (i+1) % N), and the final populations are merged in island
// order with one global non-dominated sort. Because each island's variation
// is serial on its own stream, evaluation is pure, and migration/merge are
// serial and index-ordered, the outcome is bit-identical at any thread
// count and across repeated runs — the same contract run_nsga2 carries.
// docs/SCALING.md describes the topology and the determinism argument.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "moea/nsga2.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace clrearly::util {
class ArgParser;
}  // namespace clrearly::util

namespace clrearly::moea {

/// Island-model knobs (the --islands/--migration-interval/--migration-size
/// CLI options and the wire format's `islands` sub-object). islands == 1
/// degrades to the plain single-population run_nsga2 path bit for bit.
struct IslandParams {
  std::size_t islands = 1;             ///< sub-population count
  std::size_t migration_interval = 10; ///< generations between migrations
  std::size_t migration_size = 4;      ///< emigrants per island per migration

  void validate() const;

  bool operator==(const IslandParams&) const noexcept = default;
};

/// Read the island options off a parser that declared them via
/// util::add_island_options (parse_standard_args does). Returns defaults for
/// parsers that never declared them, so generic drivers can call this
/// unconditionally.
IslandParams island_params_from_args(const util::ArgParser& parser);

namespace detail {

/// Per-island population shares: params.population_size split as evenly as
/// possible (the first population_size % islands islands get one extra).
/// Throws when any island would fall below the 2-member minimum a
/// population needs for variation.
inline std::vector<std::size_t> island_shares(std::size_t population_size,
                                              std::size_t islands) {
  const std::size_t base = population_size / islands;
  const std::size_t extra = population_size % islands;
  if (base < 2) {
    throw std::invalid_argument(
        "run_island_nsga2: population of " + std::to_string(population_size) +
        " cannot shard into " + std::to_string(islands) +
        " islands of >= 2 members each");
  }
  std::vector<std::size_t> shares(islands, base);
  for (std::size_t i = 0; i < extra; ++i) ++shares[i];
  return shares;
}

}  // namespace detail

/// Run island-model NSGA-II: `island.islands` independent sub-populations
/// of params.population_size members in total, each evolving
/// params.generations generations, with ring migration of non-dominated
/// individuals every `island.migration_interval` generations.
///
/// Seeds implement the bias-elitist idea (Quan & Pimentel): island 0
/// receives the provided seeds verbatim (the heuristic design and/or a
/// previous stage's front), every later island receives copies perturbed by
/// one mutation from its own stream, so all islands start near the seeds
/// without collapsing onto identical populations.
///
/// params.on_generation fires once per migration epoch (and once more after
/// the final merge with generation == generations) with aggregated union
/// front statistics; throwing from it cancels the run, so cooperative
/// cancellation has epoch granularity here instead of run_nsga2's
/// per-generation granularity.
///
/// The total evaluation budget is identical to a single-population run of
/// the same params: population_size logical evaluations per generation plus
/// the initial populations (migration copies evaluated individuals, it
/// never re-evaluates).
template <typename Genome>
Nsga2Result<Genome> run_island_nsga2(const Nsga2Params& params,
                                     const IslandParams& island,
                                     const Nsga2Ops<Genome>& ops,
                                     util::Rng& rng,
                                     std::vector<Genome> seeds = {}) {
  island.validate();
  if (island.islands <= 1) {
    return run_nsga2(params, ops, rng, std::move(seeds));
  }
  params.validate();
  const std::size_t n = island.islands;
  const std::vector<std::size_t> shares =
      detail::island_shares(params.population_size, n);

  static util::Gauge& islands_metric = util::metric_gauge("island.count");
  static util::Counter& migrants_metric =
      util::metric_counter("island.migrants");
  static util::Counter& epochs_metric = util::metric_counter("island.epochs");
  islands_metric.set(static_cast<double>(n));

  // Per-island RNG streams, drawn in island order from the caller's stream
  // (which advances deterministically, so a caller reusing `rng` afterwards
  // — the proposed flow's second stage — stays reproducible).
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.push_back(rng.split());

  // Seed distribution: island 0 verbatim, islands j > 0 get copies
  // perturbed by one mutation from island j's own stream — drawn before the
  // engine's create() fills, exactly like a seed prefix.
  std::vector<std::vector<Genome>> island_seeds(n);
  island_seeds[0] = std::move(seeds);
  for (std::size_t j = 1; j < n; ++j) {
    island_seeds[j].reserve(island_seeds[0].size());
    for (const Genome& seed : island_seeds[0]) {
      Genome copy = seed;
      ops.mutate(copy, rngs[j]);
      island_seeds[j].push_back(std::move(copy));
    }
  }

  // Engines run with a nulled hook: the aggregate epoch hook below is the
  // single observer, so per-island telemetry never races.
  Nsga2Params island_params = params;
  island_params.on_generation = nullptr;
  std::vector<Nsga2Engine<Genome>> engines;
  engines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    island_params.population_size = shares[i];
    engines.emplace_back(island_params, ops, rngs[i],
                         std::move(island_seeds[i]));
  }

  // Cone separation (Branke et al., docs/SCALING.md): island k owns the k-th
  // of n equal bands of the normalized objective ratio r = f2 / (f1 + f2)
  // (a pure-arithmetic stand-in for the angular sector; monotone in the
  // objective-space angle for two objectives). Each engine's region bias
  // penalizes members outside its band by their distance to it, so
  // constrained dominance steers every island toward its own segment of the
  // front instead of n islands rediscovering the same knee. Bands activate
  // at the first migration, once a pooled ideal/nadir exists to normalize
  // against, and the bounds are refreshed between epochs — serially, so the
  // bias each engine reads during an epoch is fixed and the run stays
  // deterministic. Needs at least two objectives; with fewer the bias stays
  // inactive and only ring migration remains.
  struct RegionBand {
    bool active = false;
    double lo = 0.0;
    double hi = 1.0;
    Objectives ideal;
    Objectives nadir;

    double ratio(const Objectives& objectives) const {
      const auto normalized = [&](std::size_t m) {
        const double range = nadir[m] - ideal[m];
        return range > 0.0 ? (objectives[m] - ideal[m]) / range : 0.0;
      };
      const double f1 = normalized(0);
      const double f2 = normalized(1);
      return f1 + f2 > 0.0 ? f2 / (f1 + f2) : -1.0;  // -1: pooled ideal
    }
  };
  std::vector<RegionBand> bands(n);
  for (std::size_t i = 0; i < n; ++i) {
    bands[i].lo = static_cast<double>(i) / static_cast<double>(n);
    bands[i].hi = static_cast<double>(i + 1) / static_cast<double>(n);
    engines[i].set_region_bias([&bands, i](const Objectives& objectives) {
      const RegionBand& band = bands[i];
      if (!band.active || objectives.size() < 2) return 0.0;
      const double r = band.ratio(objectives);
      if (r < 0.0) return 0.0;  // the pooled ideal belongs everywhere
      return std::max({0.0, band.lo - r, r - band.hi});
    });
  }
  auto refresh_bands = [&] {
    // Normalization bounds from the feasible union across all islands
    // (fall back to the full union while nothing is feasible yet).
    Objectives ideal;
    Objectives nadir;
    bool seen_feasible = false;
    bool seen_any = false;
    for (const auto& engine : engines) {
      const auto& points = engine.points();
      const auto& violations = engine.violations();
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].size() < 2) return;  // single-objective: stay inactive
        const bool feasible = violations[i] == 0.0;
        if (feasible && !seen_feasible) {
          seen_feasible = true;
          seen_any = false;  // restart the bounds over feasible points only
        }
        if (seen_feasible && !feasible) continue;
        if (!seen_any) {
          ideal = points[i];
          nadir = points[i];
          seen_any = true;
          continue;
        }
        for (std::size_t m = 0; m < points[i].size(); ++m) {
          ideal[m] = std::min(ideal[m], points[i][m]);
          nadir[m] = std::max(nadir[m], points[i][m]);
        }
      }
    }
    if (!seen_any) return;
    for (RegionBand& band : bands) {
      band.ideal = ideal;
      band.nadir = nadir;
      band.active = true;
    }
  };

  auto total_evaluations = [&] {
    std::size_t total = 0;
    for (const auto& engine : engines) total += engine.evaluations();
    return total;
  };

  std::size_t done_gens = 0;
  while (done_gens < params.generations) {
    const std::size_t step =
        std::min(island.migration_interval, params.generations - done_gens);
    epochs_metric.add();
    {
      const util::TraceSpan epoch_span("island.epoch");
      // One pool item per island; the engines' inner evaluate batches nest
      // into serial inline loops, so each island is one deterministic
      // serial strand regardless of worker count.
      util::parallel_for(n, [&](std::size_t i) {
        const util::TraceSpan island_span("island.evolve");
        for (std::size_t g = 0; g < step; ++g) engines[i].advance();
      });
    }
    done_gens += step;

    if (done_gens < params.generations && island.migration_size > 0) {
      const util::TraceSpan migration_span("island.migration");
      // Collect every island's emigrants first, then deliver — simultaneous
      // exchange, not a sequential gossip whose outcome would depend on
      // island order. With active bands, delivery routes each migrant to
      // the island owning its objective-space sector, re-anchoring every
      // island with the pool's best individuals *for its own segment of the
      // front*; migrants the bands cannot place (fewer than two objectives,
      // or sitting exactly at the pooled ideal) go to the ring neighbor
      // (source + 1) % n, which is also the whole topology before the first
      // refresh. Pure arithmetic, deterministic for any population order
      // and thread count.
      refresh_bands();
      std::vector<std::vector<EvaluatedGenome<Genome>>> outbound;
      outbound.reserve(n);
      for (const auto& engine : engines) {
        outbound.push_back(engine.emigrants(island.migration_size));
      }
      std::vector<std::vector<EvaluatedGenome<Genome>>> inbound(n);
      std::size_t migrated = 0;
      for (std::size_t i = 0; i < n; ++i) {
        for (auto& member : outbound[i]) {
          const Objectives& objectives = member.eval.objectives;
          std::size_t target = (i + 1) % n;  // ring fallback
          if (bands[0].active && objectives.size() >= 2) {
            const double r = bands[0].ratio(objectives);
            if (r >= 0.0) {
              target = std::min(
                  n - 1, static_cast<std::size_t>(
                             std::max(0.0, r * static_cast<double>(n))));
            }
          }
          ++migrated;
          inbound[target].push_back(std::move(member));
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        engines[i].immigrate(std::move(inbound[i]));
      }
      migrants_metric.add(migrated);
    }

    if (params.on_generation && done_gens < params.generations) {
      // Aggregate epoch snapshot: union first front over all islands.
      std::vector<Objectives> points;
      std::vector<double> violations;
      for (const auto& engine : engines) {
        points.insert(points.end(), engine.points().begin(),
                      engine.points().end());
        violations.insert(violations.end(), engine.violations().begin(),
                          engine.violations().end());
      }
      const auto fronts = non_dominated_sort(points, violations);
      std::vector<std::size_t> rank(points.size(), 1);
      std::size_t front_size = 0;
      std::vector<Objectives> snapshot;
      if (!fronts.empty()) {
        front_size = fronts.front().size();
        for (std::size_t i : fronts.front()) {
          rank[i] = 0;
          if (violations[i] == 0.0) snapshot.push_back(points[i]);
        }
      }
      params.on_generation(GenerationProgress{
          done_gens, params.generations, total_evaluations(), front_size,
          detail::front_bbox_volume(points, rank, violations), &snapshot});
    }
  }

  // Deterministic merge: island populations concatenated in island-index
  // order (count-then-lex over the ring positions), one global
  // non-dominated sort for the final front, archives merged through the
  // same batched update the per-island archives used.
  Nsga2Result<Genome> merged;
  std::vector<Objectives> points;
  std::vector<double> violations;
  merged.population.reserve(params.population_size);
  points.reserve(params.population_size);
  violations.reserve(params.population_size);
  for (auto& engine : engines) {
    Nsga2Result<Genome> part = engine.finish();
    merged.evaluations += part.evaluations;
    if (params.archive_size > 0) {
      detail::update_archive(merged.archive, part.archive,
                             params.archive_size);
    }
    for (auto& member : part.population) {
      points.push_back(member.eval.objectives);
      violations.push_back(member.eval.violation);
      merged.population.push_back(std::move(member));
    }
  }
  const auto fronts = non_dominated_sort(points, violations);
  merged.front = fronts.empty() ? std::vector<std::size_t>{} : fronts.front();

  if (params.on_generation) {
    std::vector<std::size_t> rank(points.size(), 1);
    std::vector<Objectives> snapshot;
    for (std::size_t i : merged.front) {
      rank[i] = 0;
      if (violations[i] == 0.0) snapshot.push_back(points[i]);
    }
    params.on_generation(GenerationProgress{
        params.generations, params.generations, merged.evaluations,
        merged.front.size(),
        detail::front_bbox_volume(points, rank, violations), &snapshot});
  }
  return merged;
}

}  // namespace clrearly::moea
