// Hypervolume indicator for minimization fronts.
//
// The paper reports all system-level comparisons (TABLEs V-VII) as percentage
// increases of Pareto-front hypervolume, so this is the central quality
// metric of the reproduction. Exact O(n log n) sweep for two objectives;
// the WFG exclusive-hypervolume recursion for three or more.
#pragma once

#include <cstddef>
#include <vector>

#include "moea/pareto.hpp"

namespace clrearly::moea {

/// Hypervolume of the region dominated by `points` and bounded by
/// `reference` (minimization: every counted point must weakly dominate the
/// reference; points at or beyond the reference contribute nothing).
/// Dominated and duplicate points are handled internally. Throws
/// std::invalid_argument on dimension mismatches or empty input dimensions.
double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference);

/// A reference point for comparing several fronts: the component-wise
/// maximum over all fronts, inflated by `margin` (relative). Guarantees every
/// point of every front contributes positive volume when margin > 0.
Objectives common_reference(
    const std::vector<std::vector<Objectives>>& fronts, double margin = 0.05);

/// Percentage increase in hypervolume of `front` over `baseline` under a
/// shared reference point: 100 * (hv(front) - hv(base)) / hv(base).
double hypervolume_gain_percent(const std::vector<Objectives>& front,
                                const std::vector<Objectives>& baseline,
                                const Objectives& reference);

}  // namespace clrearly::moea
