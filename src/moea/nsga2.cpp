#include "moea/nsga2.hpp"

#include <algorithm>

namespace clrearly::moea {

RankCrowding rank_and_crowding(const std::vector<Objectives>& points,
                               const std::vector<double>& violations) {
  RankCrowding rc;
  rc.rank.assign(points.size(), 0);
  rc.crowding.assign(points.size(), 0.0);
  const auto fronts = non_dominated_sort(points, violations);
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    const std::vector<double> crowd = crowding_distance(points, fronts[f]);
    for (std::size_t i = 0; i < fronts[f].size(); ++i) {
      rc.rank[fronts[f][i]] = f;
      rc.crowding[fronts[f][i]] = crowd[i];
    }
  }
  return rc;
}

std::vector<std::size_t> survivor_selection(
    const std::vector<Objectives>& points,
    const std::vector<double>& violations, std::size_t target) {
  if (target > points.size()) {
    throw std::invalid_argument("survivor_selection: target exceeds pool");
  }
  std::vector<std::size_t> keep;
  keep.reserve(target);
  const auto fronts = non_dominated_sort(points, violations);
  for (const auto& front : fronts) {
    if (keep.size() + front.size() <= target) {
      keep.insert(keep.end(), front.begin(), front.end());
      if (keep.size() == target) break;
      continue;
    }
    // Partial front: keep the most crowded-out (largest distance) members.
    const std::vector<double> crowd = crowding_distance(points, front);
    std::vector<std::size_t> order(front.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return crowd[a] > crowd[b];
    });
    for (std::size_t i = 0; keep.size() < target; ++i) {
      keep.push_back(front[order[i]]);
    }
    break;
  }
  return keep;
}

}  // namespace clrearly::moea
