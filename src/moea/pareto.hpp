// Pareto-dominance utilities for minimization problems.
//
// Used in three places: task-level Pareto filtering (tDSE), NSGA-II's
// non-dominated sorting / crowding, and the benches' front post-processing.
// All objective vectors are *minimized*; callers negate maximization metrics.
#pragma once

#include <cstddef>
#include <vector>

namespace clrearly::moea {

using Objectives = std::vector<double>;

/// True when `a` weakly dominates `b` and is strictly better in at least one
/// objective. Vectors must be the same length.
bool dominates(const Objectives& a, const Objectives& b);

/// Deb's constrained dominance: feasible beats infeasible; among infeasible,
/// lower total violation wins; among feasible, Pareto dominance decides.
bool constrained_dominates(const Objectives& a, double violation_a,
                           const Objectives& b, double violation_b);

/// Indices of the non-dominated points (first Pareto front). Duplicate
/// points are all retained. O(n^2 m).
std::vector<std::size_t> pareto_front_indices(
    const std::vector<Objectives>& points);

/// The non-dominated subset itself, in input order.
std::vector<Objectives> pareto_filter(const std::vector<Objectives>& points);

/// Fast non-dominated sorting (NSGA-II): returns fronts of indices, best
/// first. `violations` is optional (empty = unconstrained); when provided it
/// must parallel `points` and constrained dominance is used.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<Objectives>& points,
    const std::vector<double>& violations = {});

/// Crowding distance of each member of `front` (indices into `points`);
/// boundary points get +infinity. Returned vector parallels `front`.
std::vector<double> crowding_distance(const std::vector<Objectives>& points,
                                      const std::vector<std::size_t>& front);

}  // namespace clrearly::moea
