#include "moea/operators.hpp"

#include <algorithm>
#include <stdexcept>

namespace clrearly::moea {

bool is_permutation(const Permutation& p) {
  std::vector<bool> seen(p.size(), false);
  for (std::size_t v : p) {
    if (v >= p.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

Permutation random_permutation(std::size_t n, util::Rng& rng) {
  Permutation p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  rng.shuffle(p);
  return p;
}

std::pair<Permutation, Permutation> order_crossover(const Permutation& a,
                                                    const Permutation& b,
                                                    util::Rng& rng) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("order_crossover: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return {a, b};

  const std::size_t cut = 1 + rng.index(n - 1);  // at least one element each side

  auto make_child = [n, cut](const Permutation& head, const Permutation& tail) {
    Permutation child(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(cut));
    std::vector<bool> used(n, false);
    for (std::size_t v : child) used[v] = true;
    for (std::size_t v : tail) {
      if (!used[v]) child.push_back(v);
    }
    return child;
  };
  return {make_child(a, b), make_child(b, a)};
}

void swap_mutation(Permutation& p, util::Rng& rng) {
  if (p.size() < 2) return;
  const std::size_t i = rng.index(p.size());
  std::size_t j = rng.index(p.size() - 1);
  if (j >= i) ++j;  // distinct positions
  std::swap(p[i], p[j]);
}

void two_point_crossover(GeneVector& a, GeneVector& b, util::Rng& rng) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("two_point_crossover: size mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) return;
  std::size_t cut1 = rng.index(n + 1);
  std::size_t cut2 = rng.index(n + 1);
  if (cut1 > cut2) std::swap(cut1, cut2);
  for (std::size_t i = cut1; i < cut2; ++i) std::swap(a[i], b[i]);
}

void random_reset_mutation(GeneVector& genes,
                           const std::vector<std::size_t>& cardinalities,
                           util::Rng& rng) {
  if (genes.size() != cardinalities.size()) {
    throw std::invalid_argument("random_reset_mutation: size mismatch");
  }
  if (genes.empty()) return;
  const std::size_t pos = rng.index(genes.size());
  if (cardinalities[pos] == 0) {
    throw std::invalid_argument("random_reset_mutation: zero cardinality");
  }
  genes[pos] = rng.index(cardinalities[pos]);
}

}  // namespace clrearly::moea
