// Generic genetic operators on permutations and bounded integer vectors.
//
// The paper's encoding (Fig. 5) is an ordered sequence of per-task
// sub-sequences: the task order is a permutation (implicit schedule) and the
// per-task configuration fields are bounded integers. Its four operators map
// onto these primitives:
//   * two-point crossover exchanging configuration data   -> two_point_crossover
//   * single-point crossover exchanging scheduling info    -> order_crossover
//   * single-point mutation of a random task's config      -> random_reset_mutation
//   * two-point mutation swapping two sub-sequences        -> swap_mutation
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace clrearly::moea {

using Permutation = std::vector<std::size_t>;
using GeneVector = std::vector<std::size_t>;

/// True when `p` is a permutation of 0..p.size()-1.
bool is_permutation(const Permutation& p);

/// Uniformly random permutation of 0..n-1.
Permutation random_permutation(std::size_t n, util::Rng& rng);

/// Single-point *order* crossover for permutations: the child keeps parent
/// A's prefix up to a random cut and appends the missing elements in parent
/// B's relative order. Always yields a valid permutation. Returns both
/// children (A-prefix and B-prefix variants).
std::pair<Permutation, Permutation> order_crossover(const Permutation& a,
                                                    const Permutation& b,
                                                    util::Rng& rng);

/// Swap two random positions in place (the paper's two-point scheduling
/// mutation: exchanging the position of two sub-sequences).
void swap_mutation(Permutation& p, util::Rng& rng);

/// Two-point crossover on parallel gene vectors: swap genes in [cut1, cut2)
/// between `a` and `b` in place. Vectors must be the same length.
void two_point_crossover(GeneVector& a, GeneVector& b, util::Rng& rng);

/// Reset one random position of `genes` to a fresh uniform value below the
/// corresponding cardinality (the paper's single-point configuration
/// mutation). `cardinalities[i]` must be >= 1.
void random_reset_mutation(GeneVector& genes,
                           const std::vector<std::size_t>& cardinalities,
                           util::Rng& rng);

/// Tournament selection: draw `k` indices below `population_size` uniformly
/// (with replacement) and return the one ranked best by `better(i, j)`
/// (true when i beats j).
template <typename BetterFn>
std::size_t tournament_select(std::size_t population_size, std::size_t k,
                              util::Rng& rng, BetterFn&& better) {
  std::size_t best = rng.index(population_size);
  for (std::size_t round = 1; round < k; ++round) {
    const std::size_t challenger = rng.index(population_size);
    if (better(challenger, best)) best = challenger;
  }
  return best;
}

}  // namespace clrearly::moea
