// Multi-objective quality indicators beyond hypervolume — the standard
// toolbox for comparing DSE fronts (all for minimization):
//
//   * generational distance (GD)           — how close A is to a reference R
//   * inverted generational distance (IGD) — how well A covers R
//   * additive epsilon indicator           — smallest shift making A cover R
//   * two-set coverage C(A, B)             — fraction of B dominated by A
//   * spread (Deb's Delta, 2-D)            — distribution uniformity
#pragma once

#include "moea/pareto.hpp"

namespace clrearly::moea {

/// Euclidean distance between objective vectors (same length required).
double objective_distance(const Objectives& a, const Objectives& b);

/// Generational distance: mean distance from each point of `front` to its
/// nearest neighbour in `reference`. 0 when the front lies on the reference.
/// Throws on empty inputs.
double generational_distance(const std::vector<Objectives>& front,
                             const std::vector<Objectives>& reference);

/// Inverted generational distance: mean distance from each reference point
/// to its nearest neighbour in `front` — penalizes gaps in coverage.
double inverted_generational_distance(
    const std::vector<Objectives>& front,
    const std::vector<Objectives>& reference);

/// Additive epsilon indicator: the smallest eps such that every reference
/// point is weakly dominated by some front point shifted by eps
/// (front[i] - eps <= ref[j] componentwise). <= 0 means the front already
/// covers the reference.
double epsilon_indicator(const std::vector<Objectives>& front,
                         const std::vector<Objectives>& reference);

/// Two-set coverage C(a, b): fraction of points in `b` weakly dominated by
/// at least one point of `a`. C(a, b) = 1 means a completely covers b.
/// Asymmetric: compare both directions. Throws when `b` is empty.
double coverage(const std::vector<Objectives>& a,
                const std::vector<Objectives>& b);

/// Deb's spread metric Delta for bi-objective fronts: 0 for a perfectly
/// uniform distribution, larger for clustered fronts. Requires >= 2 points
/// and exactly 2 objectives.
double spread_delta(std::vector<Objectives> front);

}  // namespace clrearly::moea
