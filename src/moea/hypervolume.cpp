#include "moea/hypervolume.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace clrearly::moea {

namespace {

// The WFG recursion operates in "gain space": g = ref - x (componentwise),
// keeping only points with all-positive gains. A point's inclusive
// hypervolume is the box [0, g]; limiting a set to p clips each gain to p's.

double inclusive(const Objectives& g) {
  double v = 1.0;
  for (double gi : g) v *= gi;
  return v;
}

std::vector<Objectives> limit_set(const std::vector<Objectives>& set,
                                  const Objectives& p) {
  std::vector<Objectives> limited;
  limited.reserve(set.size());
  for (const Objectives& q : set) {
    Objectives clipped(q.size());
    for (std::size_t j = 0; j < q.size(); ++j) {
      clipped[j] = std::min(q[j], p[j]);
    }
    limited.push_back(std::move(clipped));
  }
  // Remove dominated members (in gain space, a dominates b when a >= b
  // everywhere with one strict) — mandatory for the recursion's efficiency.
  std::vector<Objectives> front;
  for (std::size_t i = 0; i < limited.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < limited.size() && !dominated; ++j) {
      if (i == j) continue;
      bool weakly = true;
      bool strict = false;
      for (std::size_t k = 0; k < limited[i].size(); ++k) {
        if (limited[j][k] < limited[i][k]) { weakly = false; break; }
        if (limited[j][k] > limited[i][k]) strict = true;
      }
      // Ties: keep the first occurrence only.
      if (weakly && (strict || j < i)) dominated = true;
    }
    if (!dominated) front.push_back(limited[i]);
  }
  return front;
}

/// 2-D gain-space hypervolume by plane sweep.
double hv2d(std::vector<Objectives> gains) {
  std::sort(gains.begin(), gains.end(),
            [](const Objectives& a, const Objectives& b) {
              return a[0] > b[0];  // descending gain in dim 0
            });
  double volume = 0.0;
  double covered_g1 = 0.0;
  for (const Objectives& g : gains) {
    if (g[1] > covered_g1) {
      volume += g[0] * (g[1] - covered_g1);
      covered_g1 = g[1];
    }
  }
  return volume;
}

double wfg(std::vector<Objectives> gains);

double exclusive(const Objectives& p, const std::vector<Objectives>& rest) {
  if (rest.empty()) return inclusive(p);
  return inclusive(p) - wfg(limit_set(rest, p));
}

double wfg(std::vector<Objectives> gains) {
  if (gains.empty()) return 0.0;
  if (gains[0].size() == 1) {
    double best = 0.0;
    for (const Objectives& g : gains) best = std::max(best, g[0]);
    return best;
  }
  if (gains[0].size() == 2) return hv2d(std::move(gains));
  // Sort worst-first in the last dimension so limit sets shrink quickly.
  std::sort(gains.begin(), gains.end(),
            [](const Objectives& a, const Objectives& b) {
              return a.back() < b.back();
            });
  double volume = 0.0;
  for (std::size_t i = 0; i < gains.size(); ++i) {
    const std::vector<Objectives> rest(gains.begin() + i + 1, gains.end());
    volume += exclusive(gains[i], rest);
  }
  return volume;
}

}  // namespace

double hypervolume(const std::vector<Objectives>& points,
                   const Objectives& reference) {
  if (reference.empty()) {
    throw std::invalid_argument("hypervolume: empty reference point");
  }
  std::vector<Objectives> gains;
  gains.reserve(points.size());
  for (const Objectives& x : points) {
    if (x.size() != reference.size()) {
      throw std::invalid_argument("hypervolume: dimension mismatch");
    }
    Objectives g(x.size());
    bool inside = true;
    for (std::size_t j = 0; j < x.size(); ++j) {
      g[j] = reference[j] - x[j];
      if (g[j] <= 0.0) {
        inside = false;
        break;
      }
    }
    if (inside) gains.push_back(std::move(g));
  }
  if (gains.empty()) return 0.0;
  return wfg(std::move(gains));
}

Objectives common_reference(
    const std::vector<std::vector<Objectives>>& fronts, double margin) {
  Objectives ref;
  for (const auto& front : fronts) {
    for (const Objectives& x : front) {
      if (ref.empty()) {
        ref = x;
      } else {
        if (x.size() != ref.size()) {
          throw std::invalid_argument("common_reference: dimension mismatch");
        }
        for (std::size_t j = 0; j < x.size(); ++j) {
          ref[j] = std::max(ref[j], x[j]);
        }
      }
    }
  }
  if (ref.empty()) {
    throw std::invalid_argument("common_reference: no points given");
  }
  for (double& r : ref) {
    // Inflate away from the best direction; handle zero/negative coordinates.
    r += margin * std::max(std::abs(r), 1e-12);
  }
  return ref;
}

double hypervolume_gain_percent(const std::vector<Objectives>& front,
                                const std::vector<Objectives>& baseline,
                                const Objectives& reference) {
  const double hv_front = hypervolume(front, reference);
  const double hv_base = hypervolume(baseline, reference);
  return util::percent_change(hv_base, hv_front);
}

}  // namespace clrearly::moea
