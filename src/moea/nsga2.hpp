// NSGA-II engine, genome-agnostic.
//
// The paper implements its GA-based DSE with DEAP/PYGMO (tournament size 5,
// crossover probability 0.8, mutation probability 0.05). This is the same
// algorithm family: fast non-dominated sorting, crowding-distance diversity,
// elitist (mu + lambda) survivor selection and Deb's constrained dominance
// for the QoS limits of Eq. 5. Problem specifics (the Fig. 5 encoding) enter
// exclusively through the Nsga2Ops callbacks, and directed seeding — the
// backbone of the proposed pfCLR -> fcCLR flow — through the `seeds`
// argument of run_nsga2.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "moea/operators.hpp"
#include "moea/pareto.hpp"
#include "util/rng.hpp"

namespace clrearly::moea {

/// Result of evaluating one genome: objective vector (minimized) and total
/// constraint violation (0 = feasible).
struct Evaluation {
  Objectives objectives;
  double violation = 0.0;
};

struct Nsga2Params {
  std::size_t population_size = 100;
  std::size_t generations = 60;
  double crossover_prob = 0.8;  ///< paper Section VI-A
  /// Probability that an offspring undergoes the mutation operator at all.
  /// Defaults to 1: the CLR encoding's operator is itself probabilistic
  /// per task (see mutation_indpb), matching DEAP's mutpb/indpb split.
  double mutation_prob = 1.0;
  /// Per-task mutation probability handed to the problem's mutation
  /// operator (the paper's 0.05, DEAP indpb convention).
  double mutation_indpb = 0.05;
  std::size_t tournament_k = 5;  ///< paper Section V-C

  /// Capacity of the external non-dominated archive (0 disables it). When
  /// enabled, every feasible non-dominated point encountered across the
  /// whole run is retained (crowding-truncated to this capacity), so the
  /// reported front cannot lose solutions the search once had.
  std::size_t archive_size = 0;

  void validate() const {
    if (population_size < 2) {
      throw std::invalid_argument("Nsga2Params: population too small");
    }
    if (tournament_k == 0) {
      throw std::invalid_argument("Nsga2Params: tournament size must be >= 1");
    }
    if (crossover_prob < 0.0 || crossover_prob > 1.0 || mutation_prob < 0.0 ||
        mutation_prob > 1.0 || mutation_indpb < 0.0 || mutation_indpb > 1.0) {
      throw std::invalid_argument("Nsga2Params: probabilities outside [0,1]");
    }
  }
};

/// Problem plug-in: genome construction, variation and evaluation.
template <typename Genome>
struct Nsga2Ops {
  std::function<Genome(util::Rng&)> create;
  std::function<std::pair<Genome, Genome>(const Genome&, const Genome&,
                                          util::Rng&)>
      crossover;
  std::function<void(Genome&, util::Rng&)> mutate;
  std::function<Evaluation(const Genome&)> evaluate;
};

template <typename Genome>
struct EvaluatedGenome {
  Genome genome;
  Evaluation eval;
};

template <typename Genome>
struct Nsga2Result {
  std::vector<EvaluatedGenome<Genome>> population;  ///< final population
  std::vector<std::size_t> front;  ///< indices of the first (feasible) front
  std::size_t evaluations = 0;     ///< total fitness evaluations performed

  /// External archive (empty unless Nsga2Params::archive_size > 0): the
  /// non-dominated feasible points accumulated over the entire run.
  std::vector<EvaluatedGenome<Genome>> archive;

  /// Objective vectors of the final front.
  std::vector<Objectives> front_objectives() const {
    std::vector<Objectives> out;
    out.reserve(front.size());
    for (std::size_t i : front) out.push_back(population[i].eval.objectives);
    return out;
  }

  /// Objective vectors of the archive.
  std::vector<Objectives> archive_objectives() const {
    std::vector<Objectives> out;
    out.reserve(archive.size());
    for (const auto& member : archive) out.push_back(member.eval.objectives);
    return out;
  }
};

/// Parent-selection ranking: NSGA-II rank (front index) and crowding
/// distance for every population member.
struct RankCrowding {
  std::vector<std::size_t> rank;
  std::vector<double> crowding;
};
RankCrowding rank_and_crowding(const std::vector<Objectives>& points,
                               const std::vector<double>& violations);

/// Elitist survivor selection: choose `target` of the given points by front
/// rank, breaking the last front by descending crowding distance.
std::vector<std::size_t> survivor_selection(
    const std::vector<Objectives>& points,
    const std::vector<double>& violations, std::size_t target);

namespace detail {

/// Merge feasible `candidates` into the non-dominated `archive`, then
/// crowding-truncate to `capacity`. Duplicate objective vectors are kept
/// once.
template <typename Genome>
void update_archive(std::vector<EvaluatedGenome<Genome>>& archive,
                    const std::vector<EvaluatedGenome<Genome>>& candidates,
                    std::size_t capacity) {
  for (const auto& candidate : candidates) {
    if (candidate.eval.violation > 0.0) continue;
    bool rejected = false;
    for (const auto& member : archive) {
      if (member.eval.objectives == candidate.eval.objectives ||
          dominates(member.eval.objectives, candidate.eval.objectives)) {
        rejected = true;
        break;
      }
    }
    if (rejected) continue;
    std::erase_if(archive, [&](const EvaluatedGenome<Genome>& member) {
      return dominates(candidate.eval.objectives, member.eval.objectives);
    });
    archive.push_back(candidate);
  }
  if (archive.size() <= capacity) return;

  std::vector<Objectives> points;
  points.reserve(archive.size());
  for (const auto& member : archive) points.push_back(member.eval.objectives);
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const std::vector<double> crowd = crowding_distance(points, all);

  std::vector<std::size_t> order = all;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return crowd[a] > crowd[b]; });
  std::vector<EvaluatedGenome<Genome>> kept;
  kept.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    kept.push_back(std::move(archive[order[i]]));
  }
  archive = std::move(kept);
}

}  // namespace detail

/// Run NSGA-II. `seeds` pre-loads the initial population (truncated to the
/// population size; the remainder is filled by ops.create) — this implements
/// the paper's directed seeding of fcCLR with pfCLR's front.
template <typename Genome>
Nsga2Result<Genome> run_nsga2(const Nsga2Params& params,
                              const Nsga2Ops<Genome>& ops, util::Rng& rng,
                              std::vector<Genome> seeds = {}) {
  params.validate();
  if (!ops.create || !ops.crossover || !ops.mutate || !ops.evaluate) {
    throw std::invalid_argument("run_nsga2: all ops callbacks are required");
  }

  Nsga2Result<Genome> result;
  auto& population = result.population;
  population.reserve(params.population_size * 2);

  for (std::size_t i = 0; i < params.population_size; ++i) {
    Genome g = (i < seeds.size()) ? std::move(seeds[i]) : ops.create(rng);
    Evaluation e = ops.evaluate(g);
    ++result.evaluations;
    population.push_back({std::move(g), std::move(e)});
  }
  if (params.archive_size > 0) {
    detail::update_archive(result.archive, population, params.archive_size);
  }

  std::vector<Objectives> points(params.population_size);
  std::vector<double> violations(params.population_size);
  auto refresh_arrays = [&]() {
    points.resize(population.size());
    violations.resize(population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
      points[i] = population[i].eval.objectives;
      violations[i] = population[i].eval.violation;
    }
  };

  for (std::size_t gen = 0; gen < params.generations; ++gen) {
    refresh_arrays();
    const RankCrowding rc = rank_and_crowding(points, violations);
    auto better = [&](std::size_t a, std::size_t b) {
      if (rc.rank[a] != rc.rank[b]) return rc.rank[a] < rc.rank[b];
      return rc.crowding[a] > rc.crowding[b];
    };

    // Offspring generation (lambda = mu).
    std::vector<EvaluatedGenome<Genome>> offspring;
    offspring.reserve(params.population_size);
    while (offspring.size() < params.population_size) {
      const std::size_t pa = tournament_select(params.population_size,
                                               params.tournament_k, rng, better);
      const std::size_t pb = tournament_select(params.population_size,
                                               params.tournament_k, rng, better);
      Genome ca = population[pa].genome;
      Genome cb = population[pb].genome;
      if (rng.bernoulli(params.crossover_prob)) {
        auto [xa, xb] = ops.crossover(ca, cb, rng);
        ca = std::move(xa);
        cb = std::move(xb);
      }
      if (rng.bernoulli(params.mutation_prob)) ops.mutate(ca, rng);
      if (rng.bernoulli(params.mutation_prob)) ops.mutate(cb, rng);

      Evaluation ea = ops.evaluate(ca);
      ++result.evaluations;
      offspring.push_back({std::move(ca), std::move(ea)});
      if (offspring.size() < params.population_size) {
        Evaluation eb = ops.evaluate(cb);
        ++result.evaluations;
        offspring.push_back({std::move(cb), std::move(eb)});
      }
    }

    // (mu + lambda) elitist survival.
    for (auto& child : offspring) population.push_back(std::move(child));
    refresh_arrays();
    const std::vector<std::size_t> keep =
        survivor_selection(points, violations, params.population_size);
    std::vector<EvaluatedGenome<Genome>> next;
    next.reserve(params.population_size);
    for (std::size_t i : keep) next.push_back(std::move(population[i]));
    population = std::move(next);

    if (params.archive_size > 0) {
      detail::update_archive(result.archive, population, params.archive_size);
    }
  }

  refresh_arrays();
  const auto fronts = non_dominated_sort(points, violations);
  result.front = fronts.empty() ? std::vector<std::size_t>{} : fronts.front();
  return result;
}

}  // namespace clrearly::moea
