// NSGA-II engine, genome-agnostic.
//
// The paper implements its GA-based DSE with DEAP/PYGMO (tournament size 5,
// crossover probability 0.8, mutation probability 0.05). This is the same
// algorithm family: fast non-dominated sorting, crowding-distance diversity,
// elitist (mu + lambda) survivor selection and Deb's constrained dominance
// for the QoS limits of Eq. 5. Problem specifics (the Fig. 5 encoding) enter
// exclusively through the Nsga2Ops callbacks, and directed seeding — the
// backbone of the proposed pfCLR -> fcCLR flow — through the `seeds`
// argument of run_nsga2.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "moea/operators.hpp"
#include "moea/pareto.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace clrearly::moea {

/// Result of evaluating one genome: objective vector (minimized) and total
/// constraint violation (0 = feasible).
struct Evaluation {
  Objectives objectives;
  double violation = 0.0;
};

/// Per-generation convergence snapshot handed to Nsga2Params::on_generation.
/// Fired once per generation from already-computed telemetry (and once more
/// after the final generation), so observing progress costs nothing beyond
/// the callback itself.
struct GenerationProgress {
  std::size_t generation = 0;   ///< completed generations so far (0 = initial)
  std::size_t generations = 0;  ///< total planned generations
  std::size_t evaluations = 0;  ///< cumulative fitness evaluations
  std::size_t front_size = 0;   ///< current first-front size
  double hv_proxy = 0.0;        ///< bounding-box hypervolume proxy
};

/// Progress observer. Must not touch the RNG or mutate search state — the
/// hook is a pure observer, so hooked and unhooked runs are bit-identical.
/// Throwing from the hook aborts the run (the exception propagates out of
/// run_nsga2) — this is the sanctioned early-termination/cancellation path
/// for long-running jobs.
using ProgressHook = std::function<void(const GenerationProgress&)>;

struct Nsga2Params {
  std::size_t population_size = 100;
  std::size_t generations = 60;
  double crossover_prob = 0.8;  ///< paper Section VI-A
  /// Probability that an offspring undergoes the mutation operator at all.
  /// Defaults to 1: the CLR encoding's operator is itself probabilistic
  /// per task (see mutation_indpb), matching DEAP's mutpb/indpb split.
  double mutation_prob = 1.0;
  /// Per-task mutation probability handed to the problem's mutation
  /// operator (the paper's 0.05, DEAP indpb convention).
  double mutation_indpb = 0.05;
  std::size_t tournament_k = 5;  ///< paper Section V-C

  /// Capacity of the external non-dominated archive (0 disables it). When
  /// enabled, every feasible non-dominated point encountered across the
  /// whole run is retained (crowding-truncated to this capacity), so the
  /// reported front cannot lose solutions the search once had.
  std::size_t archive_size = 0;

  /// Optional per-generation progress observer (see GenerationProgress).
  /// Null by default; never serialized as part of any wire format.
  ProgressHook on_generation;

  void validate() const {
    if (population_size < 2) {
      throw std::invalid_argument("Nsga2Params: population too small");
    }
    if (tournament_k == 0) {
      throw std::invalid_argument("Nsga2Params: tournament size must be >= 1");
    }
    if (crossover_prob < 0.0 || crossover_prob > 1.0 || mutation_prob < 0.0 ||
        mutation_prob > 1.0 || mutation_indpb < 0.0 || mutation_indpb > 1.0) {
      throw std::invalid_argument("Nsga2Params: probabilities outside [0,1]");
    }
  }
};

/// Problem plug-in: genome construction, variation and evaluation.
template <typename Genome>
struct Nsga2Ops {
  std::function<Genome(util::Rng&)> create;
  std::function<std::pair<Genome, Genome>(const Genome&, const Genome&,
                                          util::Rng&)>
      crossover;
  std::function<void(Genome&, util::Rng&)> mutate;
  std::function<Evaluation(const Genome&)> evaluate;

  /// Optional content hash + equality. When both are provided, each
  /// evaluation batch is deduplicated before dispatch: genomes `equal` to an
  /// earlier batch member reuse its evaluation instead of being evaluated
  /// again (hash groups candidates, equality confirms them, so hash
  /// collisions merely cost a comparison). Evaluation must be a pure
  /// function of the genome — the same contract the parallel evaluation
  /// engine already relies on — which makes deduplicated runs bit-identical
  /// to exhaustive ones.
  std::function<std::uint64_t(const Genome&)> hash;
  std::function<bool(const Genome&, const Genome&)> equal;
};

template <typename Genome>
struct EvaluatedGenome {
  Genome genome;
  Evaluation eval;
};

template <typename Genome>
struct Nsga2Result {
  std::vector<EvaluatedGenome<Genome>> population;  ///< final population
  std::vector<std::size_t> front;  ///< indices of the first (feasible) front
  std::size_t evaluations = 0;     ///< total fitness evaluations performed

  /// External archive (empty unless Nsga2Params::archive_size > 0): the
  /// non-dominated feasible points accumulated over the entire run.
  std::vector<EvaluatedGenome<Genome>> archive;

  /// Objective vectors of the final front.
  std::vector<Objectives> front_objectives() const {
    std::vector<Objectives> out;
    out.reserve(front.size());
    for (std::size_t i : front) out.push_back(population[i].eval.objectives);
    return out;
  }

  /// Objective vectors of the archive.
  std::vector<Objectives> archive_objectives() const {
    std::vector<Objectives> out;
    out.reserve(archive.size());
    for (const auto& member : archive) out.push_back(member.eval.objectives);
    return out;
  }
};

/// Parent-selection ranking: NSGA-II rank (front index) and crowding
/// distance for every population member.
struct RankCrowding {
  std::vector<std::size_t> rank;
  std::vector<double> crowding;
};
RankCrowding rank_and_crowding(const std::vector<Objectives>& points,
                               const std::vector<double>& violations);

/// Elitist survivor selection: choose `target` of the given points by front
/// rank, breaking the last front by descending crowding distance.
std::vector<std::size_t> survivor_selection(
    const std::vector<Objectives>& points,
    const std::vector<double>& violations, std::size_t target);

namespace detail {

/// Merge feasible `candidates` into the non-dominated `archive`, then
/// crowding-truncate to `capacity`. Duplicate objective vectors are kept
/// once.
///
/// The merge is batched: over the union (archive members first, then the
/// feasible candidates, both in order) a single dominance pass keeps every
/// point no other point dominates, retaining only the first of each group
/// of equal objective vectors. This is exactly the fixed point the old
/// per-candidate insert-scan-and-erase loop converged to (dominance is
/// transitive, and the archive invariant — mutually non-dominated — holds
/// on entry), without the per-candidate archive scan + erase_if churn.
template <typename Genome>
void update_archive(std::vector<EvaluatedGenome<Genome>>& archive,
                    const std::vector<EvaluatedGenome<Genome>>& candidates,
                    std::size_t capacity) {
  std::vector<const EvaluatedGenome<Genome>*> pool;
  pool.reserve(archive.size() + candidates.size());
  for (const auto& member : archive) pool.push_back(&member);
  for (const auto& candidate : candidates) {
    if (candidate.eval.violation > 0.0) continue;
    pool.push_back(&candidate);
  }
  std::vector<char> keep(pool.size(), 1);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Objectives& mine = pool[i]->eval.objectives;
    for (std::size_t j = 0; j < pool.size() && keep[i]; ++j) {
      if (j == i) continue;
      const Objectives& other = pool[j]->eval.objectives;
      if (dominates(other, mine) || (j < i && other == mine)) keep[i] = 0;
    }
  }
  std::vector<EvaluatedGenome<Genome>> merged;
  merged.reserve(pool.size());
  const std::size_t members = archive.size();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!keep[i]) continue;
    if (i < members) {
      merged.push_back(std::move(archive[i]));
    } else {
      merged.push_back(*pool[i]);
    }
  }
  archive = std::move(merged);
  if (archive.size() <= capacity) return;

  std::vector<Objectives> points;
  points.reserve(archive.size());
  for (const auto& member : archive) points.push_back(member.eval.objectives);
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const std::vector<double> crowd = crowding_distance(points, all);

  std::vector<std::size_t> order = all;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return crowd[a] > crowd[b]; });
  std::vector<EvaluatedGenome<Genome>> kept;
  kept.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    kept.push_back(std::move(archive[order[i]]));
  }
  archive = std::move(kept);
}

/// Evaluate `genomes` concurrently (index-sharded over the global thread
/// pool) and append them to `population` and the parallel `points` /
/// `violations` arrays. Evaluation is pure — it never touches the RNG — so
/// each result lands in its own slot and the outcome is bit-identical to a
/// serial evaluation loop at any thread count.
///
/// When ops.hash/ops.equal are provided the batch is deduplicated first:
/// only the first occurrence of each distinct genome is dispatched and its
/// evaluation is fanned back out to the duplicates (offspring batches of a
/// converged GA repeat genomes heavily). `evaluations` always counts the
/// *logical* evaluations (`genomes.size()`), so evaluation budgets and
/// determinism checks are unaffected by deduplication or caching.
template <typename Genome>
void evaluate_append(const Nsga2Ops<Genome>& ops, std::vector<Genome> genomes,
                     std::vector<EvaluatedGenome<Genome>>& population,
                     std::vector<Objectives>& points,
                     std::vector<double>& violations,
                     std::size_t& evaluations) {
  // owner[i] == index of the first batch member equal to genomes[i].
  std::vector<std::size_t> owner(genomes.size());
  std::vector<std::size_t> unique;
  unique.reserve(genomes.size());
  if (ops.hash && ops.equal) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    buckets.reserve(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      std::vector<std::size_t>& bucket = buckets[ops.hash(genomes[i])];
      owner[i] = i;
      for (std::size_t j : bucket) {
        if (ops.equal(genomes[j], genomes[i])) {
          owner[i] = j;
          break;
        }
      }
      if (owner[i] == i) {
        bucket.push_back(i);
        unique.push_back(i);
      }
    }
  } else {
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      owner[i] = i;
      unique.push_back(i);
    }
  }

  std::vector<Evaluation> evals(genomes.size());
  util::parallel_for(unique.size(), [&](std::size_t k) {
    const std::size_t i = unique[k];
    evals[i] = ops.evaluate(genomes[i]);
  });
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    if (owner[i] != i) evals[i] = evals[owner[i]];
  }
  evaluations += genomes.size();
  {
    // Registry lookup once per process; per batch it's two striped adds.
    static util::Counter& evals_metric =
        util::metric_counter("nsga2.evaluations");
    static util::Counter& dedupe_metric =
        util::metric_counter("nsga2.dedupe_hits");
    evals_metric.add(genomes.size());
    dedupe_metric.add(genomes.size() - unique.size());
  }
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    points.push_back(evals[i].objectives);
    violations.push_back(evals[i].violation);
    population.push_back({std::move(genomes[i]), std::move(evals[i])});
  }
}

/// Bounding-box volume of the feasible rank-0 points: the product over
/// objectives of (max - min) across the front. A cheap convergence proxy
/// for per-generation monitoring — it tracks front *extent*, not true
/// hypervolume (no reference point, no dominated-volume accounting), but
/// costs O(front * m) and needs no extra sorting. 0 for fronts of fewer
/// than two points.
inline double front_bbox_volume(const std::vector<Objectives>& points,
                                const std::vector<std::size_t>& rank,
                                const std::vector<double>& violations) {
  std::size_t members = 0;
  Objectives lo;
  Objectives hi;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (rank[i] != 0 || violations[i] > 0.0) continue;
    if (members == 0) {
      lo = points[i];
      hi = points[i];
    } else {
      for (std::size_t m = 0; m < points[i].size(); ++m) {
        lo[m] = std::min(lo[m], points[i][m]);
        hi[m] = std::max(hi[m], points[i][m]);
      }
    }
    ++members;
  }
  if (members < 2) return 0.0;
  double volume = 1.0;
  for (std::size_t m = 0; m < lo.size(); ++m) volume *= hi[m] - lo[m];
  return volume;
}

}  // namespace detail

/// Run NSGA-II. `seeds` pre-loads the initial population (truncated to the
/// population size; the remainder is filled by ops.create) — this implements
/// the paper's directed seeding of fcCLR with pfCLR's front.
///
/// Every generation is two phases: a serial *variation* phase (selection,
/// crossover, mutation — the only RNG consumers, drawn in the exact order
/// the historical serial loop used) followed by a parallel *evaluation*
/// phase over the whole offspring batch. Fronts, archives and evaluation
/// counts are therefore bit-identical across thread counts.
template <typename Genome>
Nsga2Result<Genome> run_nsga2(const Nsga2Params& params,
                              const Nsga2Ops<Genome>& ops, util::Rng& rng,
                              std::vector<Genome> seeds = {}) {
  params.validate();
  if (!ops.create || !ops.crossover || !ops.mutate || !ops.evaluate) {
    throw std::invalid_argument("run_nsga2: all ops callbacks are required");
  }

  Nsga2Result<Genome> result;
  auto& population = result.population;
  population.reserve(params.population_size * 2);

  // Objective / violation arrays are kept in lock-step with `population`
  // (evaluation results only ever get appended or selected, never changed),
  // so nothing is rebuilt from scratch between phases.
  std::vector<Objectives> points;
  std::vector<double> violations;
  points.reserve(params.population_size * 2);
  violations.reserve(params.population_size * 2);

  std::vector<Genome> batch;
  batch.reserve(params.population_size);
  for (std::size_t i = 0; i < params.population_size; ++i) {
    batch.push_back((i < seeds.size()) ? std::move(seeds[i]) : ops.create(rng));
  }
  detail::evaluate_append(ops, std::move(batch), population, points,
                          violations, result.evaluations);
  if (params.archive_size > 0) {
    detail::update_archive(result.archive, population, params.archive_size);
  }

  // Scratch buffers for survivor selection, reused across generations.
  std::vector<EvaluatedGenome<Genome>> next;
  std::vector<Objectives> next_points;
  std::vector<double> next_violations;
  next.reserve(params.population_size);
  next_points.reserve(params.population_size);
  next_violations.reserve(params.population_size);

  static util::Counter& generations_metric =
      util::metric_counter("nsga2.generations");
  static util::Gauge& front_size_metric =
      util::metric_gauge("nsga2.front_size");
  static util::Gauge& hv_proxy_metric = util::metric_gauge("nsga2.hv_proxy");

  for (std::size_t gen = 0; gen < params.generations; ++gen) {
    const util::TraceSpan gen_span("nsga2.generation");
    generations_metric.add();

    const RankCrowding rc = rank_and_crowding(points, violations);

    // Per-generation convergence telemetry from already-computed data:
    // first-front size and the bounding-box hypervolume proxy. Pure reads —
    // never feeds back into selection or the RNG.
    {
      std::size_t front_size = 0;
      for (std::size_t r : rc.rank) front_size += (r == 0) ? 1 : 0;
      const double hv_proxy =
          detail::front_bbox_volume(points, rc.rank, violations);
      front_size_metric.set(static_cast<double>(front_size));
      hv_proxy_metric.set(hv_proxy);
      if (util::trace_enabled()) {
        util::trace_counter("nsga2.front_size",
                            static_cast<double>(front_size));
        util::trace_counter("nsga2.hv_proxy", hv_proxy);
      }
      if (params.on_generation) {
        params.on_generation(GenerationProgress{gen, params.generations,
                                                result.evaluations, front_size,
                                                hv_proxy});
      }
    }

    auto better = [&](std::size_t a, std::size_t b) {
      if (rc.rank[a] != rc.rank[b]) return rc.rank[a] < rc.rank[b];
      return rc.crowding[a] > rc.crowding[b];
    };

    // Variation phase (lambda = mu), serial and RNG-ordered.
    batch = std::vector<Genome>();
    batch.reserve(params.population_size);
    while (batch.size() < params.population_size) {
      const std::size_t pa = tournament_select(params.population_size,
                                               params.tournament_k, rng, better);
      const std::size_t pb = tournament_select(params.population_size,
                                               params.tournament_k, rng, better);
      Genome ca = population[pa].genome;
      Genome cb = population[pb].genome;
      if (rng.bernoulli(params.crossover_prob)) {
        auto [xa, xb] = ops.crossover(ca, cb, rng);
        ca = std::move(xa);
        cb = std::move(xb);
      }
      if (rng.bernoulli(params.mutation_prob)) ops.mutate(ca, rng);
      if (rng.bernoulli(params.mutation_prob)) ops.mutate(cb, rng);

      batch.push_back(std::move(ca));
      if (batch.size() < params.population_size) {
        batch.push_back(std::move(cb));
      }
    }

    // Evaluation phase over the whole batch, then (mu + lambda) elitist
    // survival over the combined arrays.
    detail::evaluate_append(ops, std::move(batch), population, points,
                            violations, result.evaluations);
    const std::vector<std::size_t> keep =
        survivor_selection(points, violations, params.population_size);
    next.clear();
    next_points.clear();
    next_violations.clear();
    for (std::size_t i : keep) {
      next.push_back(std::move(population[i]));
      next_points.push_back(std::move(points[i]));
      next_violations.push_back(violations[i]);
    }
    population.swap(next);
    points.swap(next_points);
    violations.swap(next_violations);

    if (params.archive_size > 0) {
      detail::update_archive(result.archive, population, params.archive_size);
    }
  }

  const auto fronts = non_dominated_sort(points, violations);
  result.front = fronts.empty() ? std::vector<std::size_t>{} : fronts.front();
  if (params.on_generation) {
    // Final snapshot after the last survivor selection, so observers always
    // see generation == generations exactly once per completed run.
    std::vector<std::size_t> rank(points.size(), 1);
    for (std::size_t i : result.front) rank[i] = 0;
    params.on_generation(GenerationProgress{
        params.generations, params.generations, result.evaluations,
        result.front.size(),
        detail::front_bbox_volume(points, rank, violations)});
  }
  return result;
}

}  // namespace clrearly::moea
