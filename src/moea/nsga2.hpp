// NSGA-II engine, genome-agnostic.
//
// The paper implements its GA-based DSE with DEAP/PYGMO (tournament size 5,
// crossover probability 0.8, mutation probability 0.05). This is the same
// algorithm family: fast non-dominated sorting, crowding-distance diversity,
// elitist (mu + lambda) survivor selection and Deb's constrained dominance
// for the QoS limits of Eq. 5. Problem specifics (the Fig. 5 encoding) enter
// exclusively through the Nsga2Ops callbacks, and directed seeding — the
// backbone of the proposed pfCLR -> fcCLR flow — through the `seeds`
// argument of run_nsga2.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "moea/operators.hpp"
#include "moea/pareto.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace clrearly::moea {

/// Result of evaluating one genome: objective vector (minimized) and total
/// constraint violation (0 = feasible).
struct Evaluation {
  Objectives objectives;
  double violation = 0.0;
};

/// Per-generation convergence snapshot handed to Nsga2Params::on_generation.
/// Fired once per generation from already-computed telemetry (and once more
/// after the final generation), so observing progress costs nothing beyond
/// the callback itself.
struct GenerationProgress {
  std::size_t generation = 0;   ///< completed generations so far (0 = initial)
  std::size_t generations = 0;  ///< total planned generations
  std::size_t evaluations = 0;  ///< cumulative fitness evaluations
  std::size_t front_size = 0;   ///< current first-front size
  double hv_proxy = 0.0;        ///< bounding-box hypervolume proxy
  /// Objective vectors of the *feasible* members of the current first front
  /// (so it can be one shorter than front_size while the search is still
  /// infeasible). Non-owning and valid only for the duration of the
  /// callback — observers that need the snapshot later (bench_scale's
  /// hypervolume-vs-evaluations curves) must copy it.
  const std::vector<Objectives>* front_points = nullptr;
};

/// Progress observer. Must not touch the RNG or mutate search state — the
/// hook is a pure observer, so hooked and unhooked runs are bit-identical.
/// Throwing from the hook aborts the run (the exception propagates out of
/// run_nsga2) — this is the sanctioned early-termination/cancellation path
/// for long-running jobs.
using ProgressHook = std::function<void(const GenerationProgress&)>;

struct Nsga2Params {
  std::size_t population_size = 100;
  std::size_t generations = 60;
  double crossover_prob = 0.8;  ///< paper Section VI-A
  /// Probability that an offspring undergoes the mutation operator at all.
  /// Defaults to 1: the CLR encoding's operator is itself probabilistic
  /// per task (see mutation_indpb), matching DEAP's mutpb/indpb split.
  double mutation_prob = 1.0;
  /// Per-task mutation probability handed to the problem's mutation
  /// operator (the paper's 0.05, DEAP indpb convention).
  double mutation_indpb = 0.05;
  std::size_t tournament_k = 5;  ///< paper Section V-C

  /// Capacity of the external non-dominated archive (0 disables it). When
  /// enabled, every feasible non-dominated point encountered across the
  /// whole run is retained (crowding-truncated to this capacity), so the
  /// reported front cannot lose solutions the search once had.
  std::size_t archive_size = 0;

  /// Optional per-generation progress observer (see GenerationProgress).
  /// Null by default; never serialized as part of any wire format.
  ProgressHook on_generation;

  void validate() const {
    if (population_size < 2) {
      throw std::invalid_argument("Nsga2Params: population too small");
    }
    if (tournament_k == 0) {
      throw std::invalid_argument("Nsga2Params: tournament size must be >= 1");
    }
    if (crossover_prob < 0.0 || crossover_prob > 1.0 || mutation_prob < 0.0 ||
        mutation_prob > 1.0 || mutation_indpb < 0.0 || mutation_indpb > 1.0) {
      throw std::invalid_argument("Nsga2Params: probabilities outside [0,1]");
    }
  }
};

/// Problem plug-in: genome construction, variation and evaluation.
template <typename Genome>
struct Nsga2Ops {
  std::function<Genome(util::Rng&)> create;
  std::function<std::pair<Genome, Genome>(const Genome&, const Genome&,
                                          util::Rng&)>
      crossover;
  std::function<void(Genome&, util::Rng&)> mutate;
  std::function<Evaluation(const Genome&)> evaluate;

  /// Optional content hash + equality. When both are provided, each
  /// evaluation batch is deduplicated before dispatch: genomes `equal` to an
  /// earlier batch member reuse its evaluation instead of being evaluated
  /// again (hash groups candidates, equality confirms them, so hash
  /// collisions merely cost a comparison). Evaluation must be a pure
  /// function of the genome — the same contract the parallel evaluation
  /// engine already relies on — which makes deduplicated runs bit-identical
  /// to exhaustive ones.
  std::function<std::uint64_t(const Genome&)> hash;
  std::function<bool(const Genome&, const Genome&)> equal;
};

template <typename Genome>
struct EvaluatedGenome {
  Genome genome;
  Evaluation eval;
};

template <typename Genome>
struct Nsga2Result {
  std::vector<EvaluatedGenome<Genome>> population;  ///< final population
  std::vector<std::size_t> front;  ///< indices of the first (feasible) front
  std::size_t evaluations = 0;     ///< total fitness evaluations performed

  /// External archive (empty unless Nsga2Params::archive_size > 0): the
  /// non-dominated feasible points accumulated over the entire run.
  std::vector<EvaluatedGenome<Genome>> archive;

  /// Objective vectors of the final front.
  std::vector<Objectives> front_objectives() const {
    std::vector<Objectives> out;
    out.reserve(front.size());
    for (std::size_t i : front) out.push_back(population[i].eval.objectives);
    return out;
  }

  /// Objective vectors of the archive.
  std::vector<Objectives> archive_objectives() const {
    std::vector<Objectives> out;
    out.reserve(archive.size());
    for (const auto& member : archive) out.push_back(member.eval.objectives);
    return out;
  }
};

/// Parent-selection ranking: NSGA-II rank (front index) and crowding
/// distance for every population member.
struct RankCrowding {
  std::vector<std::size_t> rank;
  std::vector<double> crowding;
};
RankCrowding rank_and_crowding(const std::vector<Objectives>& points,
                               const std::vector<double>& violations);

/// Elitist survivor selection: choose `target` of the given points by front
/// rank, breaking the last front by descending crowding distance.
std::vector<std::size_t> survivor_selection(
    const std::vector<Objectives>& points,
    const std::vector<double>& violations, std::size_t target);

namespace detail {

/// Merge feasible `candidates` into the non-dominated `archive`, then
/// crowding-truncate to `capacity`. Duplicate objective vectors are kept
/// once.
///
/// The merge is batched: over the union (archive members first, then the
/// feasible candidates, both in order) a single dominance pass keeps every
/// point no other point dominates, retaining only the first of each group
/// of equal objective vectors. This is exactly the fixed point the old
/// per-candidate insert-scan-and-erase loop converged to (dominance is
/// transitive, and the archive invariant — mutually non-dominated — holds
/// on entry), without the per-candidate archive scan + erase_if churn.
template <typename Genome>
void update_archive(std::vector<EvaluatedGenome<Genome>>& archive,
                    const std::vector<EvaluatedGenome<Genome>>& candidates,
                    std::size_t capacity) {
  std::vector<const EvaluatedGenome<Genome>*> pool;
  pool.reserve(archive.size() + candidates.size());
  for (const auto& member : archive) pool.push_back(&member);
  for (const auto& candidate : candidates) {
    if (candidate.eval.violation > 0.0) continue;
    pool.push_back(&candidate);
  }
  std::vector<char> keep(pool.size(), 1);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Objectives& mine = pool[i]->eval.objectives;
    for (std::size_t j = 0; j < pool.size() && keep[i]; ++j) {
      if (j == i) continue;
      const Objectives& other = pool[j]->eval.objectives;
      if (dominates(other, mine) || (j < i && other == mine)) keep[i] = 0;
    }
  }
  std::vector<EvaluatedGenome<Genome>> merged;
  merged.reserve(pool.size());
  const std::size_t members = archive.size();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!keep[i]) continue;
    if (i < members) {
      merged.push_back(std::move(archive[i]));
    } else {
      merged.push_back(*pool[i]);
    }
  }
  archive = std::move(merged);
  if (archive.size() <= capacity) return;

  std::vector<Objectives> points;
  points.reserve(archive.size());
  for (const auto& member : archive) points.push_back(member.eval.objectives);
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const std::vector<double> crowd = crowding_distance(points, all);

  std::vector<std::size_t> order = all;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return crowd[a] > crowd[b]; });
  std::vector<EvaluatedGenome<Genome>> kept;
  kept.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    kept.push_back(std::move(archive[order[i]]));
  }
  archive = std::move(kept);
}

/// Evaluate `genomes` concurrently (index-sharded over the global thread
/// pool) and append them to `population` and the parallel `points` /
/// `violations` arrays. Evaluation is pure — it never touches the RNG — so
/// each result lands in its own slot and the outcome is bit-identical to a
/// serial evaluation loop at any thread count.
///
/// When ops.hash/ops.equal are provided the batch is deduplicated first:
/// only the first occurrence of each distinct genome is dispatched and its
/// evaluation is fanned back out to the duplicates (offspring batches of a
/// converged GA repeat genomes heavily). `evaluations` always counts the
/// *logical* evaluations (`genomes.size()`), so evaluation budgets and
/// determinism checks are unaffected by deduplication or caching.
template <typename Genome>
void evaluate_append(const Nsga2Ops<Genome>& ops, std::vector<Genome> genomes,
                     std::vector<EvaluatedGenome<Genome>>& population,
                     std::vector<Objectives>& points,
                     std::vector<double>& violations,
                     std::size_t& evaluations) {
  // owner[i] == index of the first batch member equal to genomes[i].
  std::vector<std::size_t> owner(genomes.size());
  std::vector<std::size_t> unique;
  unique.reserve(genomes.size());
  if (ops.hash && ops.equal) {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    buckets.reserve(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      std::vector<std::size_t>& bucket = buckets[ops.hash(genomes[i])];
      owner[i] = i;
      for (std::size_t j : bucket) {
        if (ops.equal(genomes[j], genomes[i])) {
          owner[i] = j;
          break;
        }
      }
      if (owner[i] == i) {
        bucket.push_back(i);
        unique.push_back(i);
      }
    }
  } else {
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      owner[i] = i;
      unique.push_back(i);
    }
  }

  std::vector<Evaluation> evals(genomes.size());
  util::parallel_for(unique.size(), [&](std::size_t k) {
    const std::size_t i = unique[k];
    evals[i] = ops.evaluate(genomes[i]);
  });
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    if (owner[i] != i) evals[i] = evals[owner[i]];
  }
  evaluations += genomes.size();
  {
    // Registry lookup once per process; per batch it's two striped adds.
    static util::Counter& evals_metric =
        util::metric_counter("nsga2.evaluations");
    static util::Counter& dedupe_metric =
        util::metric_counter("nsga2.dedupe_hits");
    evals_metric.add(genomes.size());
    dedupe_metric.add(genomes.size() - unique.size());
  }
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    points.push_back(evals[i].objectives);
    violations.push_back(evals[i].violation);
    population.push_back({std::move(genomes[i]), std::move(evals[i])});
  }
}

/// Bounding-box volume of the feasible rank-0 points: the product over
/// objectives of (max - min) across the front. A cheap convergence proxy
/// for per-generation monitoring — it tracks front *extent*, not true
/// hypervolume (no reference point, no dominated-volume accounting), but
/// costs O(front * m) and needs no extra sorting. 0 for fronts of fewer
/// than two points.
inline double front_bbox_volume(const std::vector<Objectives>& points,
                                const std::vector<std::size_t>& rank,
                                const std::vector<double>& violations) {
  std::size_t members = 0;
  Objectives lo;
  Objectives hi;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (rank[i] != 0 || violations[i] > 0.0) continue;
    if (members == 0) {
      lo = points[i];
      hi = points[i];
    } else {
      for (std::size_t m = 0; m < points[i].size(); ++m) {
        lo[m] = std::min(lo[m], points[i][m]);
        hi[m] = std::max(hi[m], points[i][m]);
      }
    }
    ++members;
  }
  if (members < 2) return 0.0;
  double volume = 1.0;
  for (std::size_t m = 0; m < lo.size(); ++m) volume *= hi[m] - lo[m];
  return volume;
}

}  // namespace detail

/// Steppable NSGA-II: one engine = one population evolving generation by
/// generation. run_nsga2 below is a thin wrapper (construct, advance to the
/// end, finish) and stays bit-identical to the historical one-shot loop; the
/// island model (moea/island.hpp) drives several engines side by side and
/// exchanges individuals between generations through emigrants()/immigrate().
///
/// Every generation is two phases: a serial *variation* phase (selection,
/// crossover, mutation — the only RNG consumers, drawn in the exact order
/// the historical serial loop used) followed by a parallel *evaluation*
/// phase over the whole offspring batch. Fronts, archives and evaluation
/// counts are therefore bit-identical across thread counts.
///
/// `seeds` pre-loads the initial population (truncated to the population
/// size; the remainder is filled by ops.create) — this implements the
/// paper's directed seeding of fcCLR with pfCLR's front.
///
/// The engine holds references to `ops` and `rng`; both must outlive it.
template <typename Genome>
class Nsga2Engine {
 public:
  Nsga2Engine(const Nsga2Params& params, const Nsga2Ops<Genome>& ops,
              util::Rng& rng, std::vector<Genome> seeds = {})
      : params_(params), ops_(ops), rng_(rng) {
    params_.validate();
    if (!ops.create || !ops.crossover || !ops.mutate || !ops.evaluate) {
      throw std::invalid_argument("run_nsga2: all ops callbacks are required");
    }

    result_.population.reserve(params_.population_size * 2);
    // Objective / violation arrays are kept in lock-step with the population
    // (evaluation results only ever get appended or selected, never
    // changed), so nothing is rebuilt from scratch between phases.
    points_.reserve(params_.population_size * 2);
    violations_.reserve(params_.population_size * 2);

    std::vector<Genome> batch;
    batch.reserve(params_.population_size);
    for (std::size_t i = 0; i < params_.population_size; ++i) {
      batch.push_back((i < seeds.size()) ? std::move(seeds[i])
                                         : ops_.create(rng_));
    }
    detail::evaluate_append(ops_, std::move(batch), result_.population,
                            points_, violations_, result_.evaluations);
    if (params_.archive_size > 0) {
      detail::update_archive(result_.archive, result_.population,
                             params_.archive_size);
    }

    next_.reserve(params_.population_size);
    next_points_.reserve(params_.population_size);
    next_violations_.reserve(params_.population_size);
  }

  std::size_t generation() const noexcept { return generation_; }
  bool done() const noexcept { return generation_ >= params_.generations; }
  std::size_t evaluations() const noexcept { return result_.evaluations; }

  /// Optional objective-space search bias (the island model's cone
  /// separation, docs/SCALING.md): a non-negative penalty, a pure function
  /// of the objective vector, added to each member's constraint violation
  /// when ranking parents and selecting survivors. Members outside this
  /// engine's assigned region lose under constrained dominance, so search
  /// effort concentrates inside the region. The *true* violation still
  /// decides emigrants, archives and the final front — the bias redirects
  /// effort, it never fabricates or hides (in)feasibility in anything the
  /// engine reports. Null (the default, and the only mode run_nsga2 uses)
  /// keeps ranking bit-identical to the historical path.
  void set_region_bias(std::function<double(const Objectives&)> bias) {
    region_bias_ = std::move(bias);
  }

  const std::vector<EvaluatedGenome<Genome>>& population() const noexcept {
    return result_.population;
  }
  const std::vector<Objectives>& points() const noexcept { return points_; }
  const std::vector<double>& violations() const noexcept {
    return violations_;
  }

  /// Evolve one generation: rank, telemetry/hook, serial variation,
  /// parallel evaluation, (mu + lambda) survivor selection, archive update.
  void advance() {
    if (done()) {
      throw std::logic_error("Nsga2Engine::advance: already finished");
    }
    auto& population = result_.population;
    const std::size_t gen = generation_;

    const util::TraceSpan gen_span("nsga2.generation");
    generations_metric().add();

    const RankCrowding rc = rank_and_crowding(points_, selection_violations());

    // Per-generation convergence telemetry from already-computed data:
    // first-front size and the bounding-box hypervolume proxy. Pure reads —
    // never feeds back into selection or the RNG.
    {
      std::size_t front_size = 0;
      for (std::size_t r : rc.rank) front_size += (r == 0) ? 1 : 0;
      const double hv_proxy =
          detail::front_bbox_volume(points_, rc.rank, violations_);
      front_size_metric().set(static_cast<double>(front_size));
      hv_proxy_metric().set(hv_proxy);
      if (util::trace_enabled()) {
        util::trace_counter("nsga2.front_size",
                            static_cast<double>(front_size));
        util::trace_counter("nsga2.hv_proxy", hv_proxy);
      }
      if (params_.on_generation) {
        std::vector<Objectives> snapshot;
        for (std::size_t i = 0; i < points_.size(); ++i) {
          if (rc.rank[i] == 0 && violations_[i] == 0.0) {
            snapshot.push_back(points_[i]);
          }
        }
        params_.on_generation(GenerationProgress{gen, params_.generations,
                                                 result_.evaluations,
                                                 front_size, hv_proxy,
                                                 &snapshot});
      }
    }

    auto better = [&](std::size_t a, std::size_t b) {
      if (rc.rank[a] != rc.rank[b]) return rc.rank[a] < rc.rank[b];
      return rc.crowding[a] > rc.crowding[b];
    };

    // Variation phase (lambda = mu), serial and RNG-ordered.
    std::vector<Genome> batch;
    batch.reserve(params_.population_size);
    while (batch.size() < params_.population_size) {
      const std::size_t pa = tournament_select(
          params_.population_size, params_.tournament_k, rng_, better);
      const std::size_t pb = tournament_select(
          params_.population_size, params_.tournament_k, rng_, better);
      Genome ca = population[pa].genome;
      Genome cb = population[pb].genome;
      if (rng_.bernoulli(params_.crossover_prob)) {
        auto [xa, xb] = ops_.crossover(ca, cb, rng_);
        ca = std::move(xa);
        cb = std::move(xb);
      }
      if (rng_.bernoulli(params_.mutation_prob)) ops_.mutate(ca, rng_);
      if (rng_.bernoulli(params_.mutation_prob)) ops_.mutate(cb, rng_);

      batch.push_back(std::move(ca));
      if (batch.size() < params_.population_size) {
        batch.push_back(std::move(cb));
      }
    }

    // Evaluation phase over the whole batch, then (mu + lambda) elitist
    // survival over the combined arrays.
    detail::evaluate_append(ops_, std::move(batch), population, points_,
                            violations_, result_.evaluations);
    select_survivors();

    if (params_.archive_size > 0) {
      detail::update_archive(result_.archive, population,
                             params_.archive_size);
    }
    ++generation_;
  }

  /// Copies of (up to) `count` members of the current first feasible front:
  /// the front is ordered lexicographically by objective vector (population
  /// index breaks exact ties) and then sampled at an even stride, so the
  /// emigrants span the whole front instead of clustering in its
  /// lexicographic corner — repeated migrations would otherwise export the
  /// same few individuals every epoch and homogenize the ring. Fully
  /// deterministic regardless of how the population happens to be ordered.
  /// The migration payload of the island model's ring topology.
  std::vector<EvaluatedGenome<Genome>> emigrants(std::size_t count) const {
    const auto fronts = non_dominated_sort(points_, violations_);
    std::vector<std::size_t> first =
        fronts.empty() ? std::vector<std::size_t>{} : fronts.front();
    std::sort(first.begin(), first.end(), [&](std::size_t a, std::size_t b) {
      if (points_[a] != points_[b]) return points_[a] < points_[b];
      return a < b;
    });
    std::vector<EvaluatedGenome<Genome>> out;
    if (count == 0 || first.empty()) return out;
    const std::size_t take = std::min(count, first.size());
    out.reserve(take);
    for (std::size_t k = 0; k < take; ++k) {
      // k-th of `take` evenly spaced picks over the sorted front (always
      // includes index 0; covers the far end as take approaches the front
      // size).
      out.push_back(result_.population[first[k * first.size() / take]]);
    }
    return out;
  }

  /// Merge already-evaluated immigrants into the population and survivor-
  /// select back down to the population size. Immigrants were evaluated by
  /// their home island, so the evaluation count is NOT incremented — island
  /// runs spend exactly the same evaluation budget as a single-population
  /// run of equal size. Feasible immigrants also enter the archive.
  void immigrate(std::vector<EvaluatedGenome<Genome>> immigrants) {
    if (immigrants.empty()) return;
    if (params_.archive_size > 0) {
      detail::update_archive(result_.archive, immigrants,
                             params_.archive_size);
    }
    for (auto& member : immigrants) {
      points_.push_back(member.eval.objectives);
      violations_.push_back(member.eval.violation);
      result_.population.push_back(std::move(member));
    }
    select_survivors();
  }

  /// Final front extraction + the final progress snapshot. Call exactly once,
  /// after the last advance()/immigrate(); the engine is consumed.
  Nsga2Result<Genome> finish() {
    const auto fronts = non_dominated_sort(points_, violations_);
    result_.front =
        fronts.empty() ? std::vector<std::size_t>{} : fronts.front();
    if (params_.on_generation) {
      // Final snapshot after the last survivor selection, so observers
      // always see generation == generations exactly once per completed run.
      std::vector<std::size_t> rank(points_.size(), 1);
      for (std::size_t i : result_.front) rank[i] = 0;
      std::vector<Objectives> snapshot;
      for (std::size_t i : result_.front) {
        if (violations_[i] == 0.0) snapshot.push_back(points_[i]);
      }
      params_.on_generation(GenerationProgress{
          params_.generations, params_.generations, result_.evaluations,
          result_.front.size(),
          detail::front_bbox_volume(points_, rank, violations_), &snapshot});
    }
    return std::move(result_);
  }

 private:
  // Process-wide metric handles; function-local statics so every engine
  // instantiation shares one registry entry.
  static util::Counter& generations_metric() {
    static util::Counter& metric = util::metric_counter("nsga2.generations");
    return metric;
  }
  static util::Gauge& front_size_metric() {
    static util::Gauge& metric = util::metric_gauge("nsga2.front_size");
    return metric;
  }
  static util::Gauge& hv_proxy_metric() {
    static util::Gauge& metric = util::metric_gauge("nsga2.hv_proxy");
    return metric;
  }

  void select_survivors() {
    auto& population = result_.population;
    const std::vector<std::size_t> keep = survivor_selection(
        points_, selection_violations(), params_.population_size);
    next_.clear();
    next_points_.clear();
    next_violations_.clear();
    for (std::size_t i : keep) {
      next_.push_back(std::move(population[i]));
      next_points_.push_back(std::move(points_[i]));
      next_violations_.push_back(violations_[i]);
    }
    population.swap(next_);
    points_.swap(next_points_);
    violations_.swap(next_violations_);
  }

  /// Selection-time violations: the true violations with the region bias
  /// (when set) added per member. Returns violations_ itself when unbiased,
  /// so the historical path pays nothing.
  const std::vector<double>& selection_violations() {
    if (!region_bias_) return violations_;
    biased_violations_.resize(violations_.size());
    for (std::size_t i = 0; i < violations_.size(); ++i) {
      biased_violations_[i] = violations_[i] + region_bias_(points_[i]);
    }
    return biased_violations_;
  }

  Nsga2Params params_;
  const Nsga2Ops<Genome>& ops_;
  util::Rng& rng_;
  std::size_t generation_ = 0;
  std::function<double(const Objectives&)> region_bias_;

  Nsga2Result<Genome> result_;
  std::vector<Objectives> points_;
  std::vector<double> violations_;
  std::vector<double> biased_violations_;  ///< scratch for selection_violations

  // Scratch buffers for survivor selection, reused across generations.
  std::vector<EvaluatedGenome<Genome>> next_;
  std::vector<Objectives> next_points_;
  std::vector<double> next_violations_;
};

/// Run NSGA-II start to finish over a single population. See Nsga2Engine
/// for the phase structure and the determinism contract.
template <typename Genome>
Nsga2Result<Genome> run_nsga2(const Nsga2Params& params,
                              const Nsga2Ops<Genome>& ops, util::Rng& rng,
                              std::vector<Genome> seeds = {}) {
  Nsga2Engine<Genome> engine(params, ops, rng, std::move(seeds));
  while (!engine.done()) engine.advance();
  return engine.finish();
}

}  // namespace clrearly::moea
