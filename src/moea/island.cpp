#include "moea/island.hpp"

#include "util/cli.hpp"

namespace clrearly::moea {

void IslandParams::validate() const {
  if (islands == 0) {
    throw std::invalid_argument("IslandParams: islands must be >= 1");
  }
  if (migration_interval == 0) {
    throw std::invalid_argument(
        "IslandParams: migration_interval must be >= 1");
  }
}

IslandParams island_params_from_args(const util::ArgParser& parser) {
  IslandParams params;
  if (parser.try_get("islands")) {
    params.islands = parser.get_uint("islands");
  }
  if (parser.try_get("migration-interval")) {
    params.migration_interval = parser.get_uint("migration-interval");
  }
  if (parser.try_get("migration-size")) {
    params.migration_size = parser.get_uint("migration-size");
  }
  params.validate();
  return params;
}

}  // namespace clrearly::moea
