#include "moea/pareto.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace clrearly::moea {

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("dominates: mismatched objective vectors");
  }
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

bool constrained_dominates(const Objectives& a, double violation_a,
                           const Objectives& b, double violation_b) {
  const bool a_feasible = violation_a <= 0.0;
  const bool b_feasible = violation_b <= 0.0;
  if (a_feasible != b_feasible) return a_feasible;
  if (!a_feasible) return violation_a < violation_b;
  return dominates(a, b);
}

std::vector<std::size_t> pareto_front_indices(
    const std::vector<Objectives>& points) {
  std::vector<std::size_t> front;
  front.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool is_dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j && dominates(points[j], points[i])) {
        is_dominated = true;
        break;
      }
    }
    if (!is_dominated) front.push_back(i);
  }
  return front;
}

std::vector<Objectives> pareto_filter(const std::vector<Objectives>& points) {
  const std::vector<std::size_t> front = pareto_front_indices(points);
  std::vector<Objectives> out;
  out.reserve(front.size());
  for (std::size_t i : front) out.push_back(points[i]);
  return out;
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<Objectives>& points,
    const std::vector<double>& violations) {
  const std::size_t n = points.size();
  const bool constrained = !violations.empty();
  if (constrained && violations.size() != n) {
    throw std::invalid_argument("non_dominated_sort: violations size mismatch");
  }
  auto dom = [&](std::size_t i, std::size_t j) {
    return constrained
               ? constrained_dominates(points[i], violations[i], points[j],
                                       violations[j])
               : dominates(points[i], points[j]);
  };

  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;

  // Each unordered pair is compared once per direction (dominance is
  // antisymmetric), halving the dom() evaluations of the naive all-pairs
  // scan. Pushes into dominated_by[k] still arrive in ascending index
  // order — pairs (i, k) with i < k fire before the outer loop reaches k —
  // so the produced fronts are element-for-element identical.
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dom(i, j)) {
        dominated_by[i].push_back(j);
        ++domination_count[j];
      } else if (dom(j, i)) {
        dominated_by[j].push_back(i);
        ++domination_count[i];
      }
    }
  }
  current.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) current.push_back(i);
  }

  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distance(const std::vector<Objectives>& points,
                                      const std::vector<std::size_t>& front) {
  const std::size_t k = front.size();
  std::vector<double> distance(k, 0.0);
  if (k == 0) return distance;
  if (k <= 2) {
    // Every point is a boundary point.
    std::fill(distance.begin(), distance.end(),
              std::numeric_limits<double>::infinity());
    return distance;
  }
  const std::size_t m = points[front[0]].size();

  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;

  for (std::size_t obj = 0; obj < m; ++obj) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[front[a]][obj] < points[front[b]][obj];
    });
    const double lo = points[front[order.front()]][obj];
    const double hi = points[front[order.back()]][obj];
    const double span = hi - lo;
    // A degenerate objective separates nothing: skip it entirely (otherwise
    // the arbitrary sort order of equal keys would pick random "boundary"
    // points to promote to infinity).
    if (span <= 0.0) continue;
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i + 1 < k; ++i) {
      const double below = points[front[order[i - 1]]][obj];
      const double above = points[front[order[i + 1]]][obj];
      distance[order[i]] += (above - below) / span;
    }
  }
  return distance;
}

}  // namespace clrearly::moea
