#include "moea/indicators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace clrearly::moea {

namespace {

double nearest_distance(const Objectives& point,
                        const std::vector<Objectives>& set) {
  double best = std::numeric_limits<double>::infinity();
  for (const Objectives& other : set) {
    best = std::min(best, objective_distance(point, other));
  }
  return best;
}

}  // namespace

double objective_distance(const Objectives& a, const Objectives& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("objective_distance: dimension mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double generational_distance(const std::vector<Objectives>& front,
                             const std::vector<Objectives>& reference) {
  if (front.empty() || reference.empty()) {
    throw std::invalid_argument("generational_distance: empty input");
  }
  double acc = 0.0;
  for (const Objectives& p : front) acc += nearest_distance(p, reference);
  return acc / static_cast<double>(front.size());
}

double inverted_generational_distance(
    const std::vector<Objectives>& front,
    const std::vector<Objectives>& reference) {
  return generational_distance(reference, front);
}

double epsilon_indicator(const std::vector<Objectives>& front,
                         const std::vector<Objectives>& reference) {
  if (front.empty() || reference.empty()) {
    throw std::invalid_argument("epsilon_indicator: empty input");
  }
  double eps = -std::numeric_limits<double>::infinity();
  for (const Objectives& r : reference) {
    // Smallest shift with which *some* front point covers r.
    double best_for_r = std::numeric_limits<double>::infinity();
    for (const Objectives& f : front) {
      if (f.size() != r.size()) {
        throw std::invalid_argument("epsilon_indicator: dimension mismatch");
      }
      double needed = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < f.size(); ++i) {
        needed = std::max(needed, f[i] - r[i]);
      }
      best_for_r = std::min(best_for_r, needed);
    }
    eps = std::max(eps, best_for_r);
  }
  return eps;
}

double coverage(const std::vector<Objectives>& a,
                const std::vector<Objectives>& b) {
  if (b.empty()) {
    throw std::invalid_argument("coverage: empty second set");
  }
  std::size_t covered = 0;
  for (const Objectives& q : b) {
    for (const Objectives& p : a) {
      if (p.size() != q.size()) {
        throw std::invalid_argument("coverage: dimension mismatch");
      }
      // Weak domination: p <= q everywhere.
      bool weakly = true;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] > q[i]) {
          weakly = false;
          break;
        }
      }
      if (weakly) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(b.size());
}

double spread_delta(std::vector<Objectives> front) {
  if (front.size() < 2) {
    throw std::invalid_argument("spread_delta: need at least two points");
  }
  if (front[0].size() != 2) {
    throw std::invalid_argument("spread_delta: bi-objective fronts only");
  }
  std::sort(front.begin(), front.end());
  std::vector<double> gaps;
  gaps.reserve(front.size() - 1);
  double mean = 0.0;
  for (std::size_t i = 1; i < front.size(); ++i) {
    const double d = objective_distance(front[i - 1], front[i]);
    gaps.push_back(d);
    mean += d;
  }
  mean /= static_cast<double>(gaps.size());
  if (mean <= 0.0) return 0.0;  // all points coincide
  double acc = 0.0;
  for (double d : gaps) acc += std::abs(d - mean);
  return acc / (static_cast<double>(gaps.size()) * mean);
}

}  // namespace clrearly::moea
