#include "util/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace clrearly::util {

namespace detail {

std::atomic<bool> trace_active{false};

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

enum class Phase : char { kComplete = 'X', kCounter = 'C', kInstant = 'i' };

struct TraceEvent {
  const char* name;
  Phase phase;
  int tid;
  double ts_us;
  double dur_us;  // kComplete: duration; kCounter: the value
};

/// Small sequential thread ids: tid 0 is whichever thread touched the trace
/// first (normally main), workers follow in first-use order — stable within
/// a run under the deterministic pool.
int trace_thread_id() noexcept {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

/// Ring of the most recent kRingCapacity events, guarded by one mutex.
/// Spans are µs-scale phase boundaries, not per-evaluation events, so the
/// lock is uncontended in practice; the ring keeps the tail of a run when
/// a long exploration overflows it.
struct TraceState {
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;       // next write slot
  std::size_t count = 0;      // live events (<= kRingCapacity)
  std::uint64_t dropped = 0;  // events overwritten by wrap-around
  std::string path;
  JsonObject metadata;
  Clock::time_point epoch = Clock::now();
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState* instance = new TraceState();
  return *instance;
}

void push_event(const TraceEvent& event) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.ring.empty()) st.ring.resize(kRingCapacity);
  if (st.count == kRingCapacity) ++st.dropped;
  st.ring[st.head] = event;
  st.head = (st.head + 1) % kRingCapacity;
  if (st.count < kRingCapacity) ++st.count;
}

void flush_trace_at_exit() {
  if (!trace_enabled()) return;
  try {
    flush_trace();
  } catch (const std::exception&) {
    // Exit path: nothing sensible to do beyond leaving the file unwritten.
  }
}

}  // namespace

namespace detail {

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   state().epoch)
      .count();
}

void trace_record_span(const char* name, double ts_us, double dur_us) {
  push_event(
      {name, Phase::kComplete, trace_thread_id(), ts_us, dur_us});
}

}  // namespace detail

void set_trace_path(const std::string& path) {
  TraceState& st = state();
  bool enable = false;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.path = path;
    enable = !path.empty();
    if (!enable) {
      st.head = 0;
      st.count = 0;
      st.dropped = 0;
    } else if (!st.atexit_registered) {
      st.atexit_registered = true;
      std::atexit(flush_trace_at_exit);
    }
  }
  detail::trace_active.store(enable, std::memory_order_relaxed);
}

const std::string& trace_path() { return state().path; }

void set_trace_metadata(JsonObject metadata) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.metadata = std::move(metadata);
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  push_event({name, Phase::kCounter, trace_thread_id(),
              detail::trace_now_us(), value});
}

void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  push_event({name, Phase::kInstant, trace_thread_id(),
              detail::trace_now_us(), 0.0});
}

std::size_t trace_event_count() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.count;
}

std::uint64_t trace_dropped_events() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.dropped;
}

void flush_trace() {
  if (!trace_enabled()) return;

  // Copy the ring (oldest first) under the lock, serialize outside it.
  std::vector<TraceEvent> events;
  std::string path;
  JsonObject other_data;
  std::uint64_t dropped = 0;
  {
    TraceState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    events.reserve(st.count);
    const std::size_t oldest =
        (st.head + kRingCapacity - st.count) % kRingCapacity;
    for (std::size_t i = 0; i < st.count; ++i) {
      events.push_back(st.ring[(oldest + i) % kRingCapacity]);
    }
    path = st.path;
    other_data = st.metadata;
    dropped = st.dropped;
  }

  other_data["dropped_events"] = static_cast<std::size_t>(dropped);

  JsonArray trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    JsonObject e;
    e["name"] = std::string(event.name);
    e["ph"] = std::string(1, static_cast<char>(event.phase));
    e["ts"] = event.ts_us;
    e["pid"] = std::size_t{1};
    e["tid"] = static_cast<std::size_t>(event.tid);
    switch (event.phase) {
      case Phase::kComplete:
        e["dur"] = event.dur_us;
        break;
      case Phase::kCounter: {
        // Counter events carry their series in "args".
        JsonObject args;
        args["value"] = event.dur_us;
        e["args"] = JsonValue(std::move(args));
        break;
      }
      case Phase::kInstant:
        e["s"] = std::string("t");  // thread-scoped instant
        break;
    }
    trace_events.push_back(JsonValue(std::move(e)));
  }

  JsonObject root;
  root["displayTimeUnit"] = std::string("ms");
  root["otherData"] = JsonValue(std::move(other_data));
  root["traceEvents"] = JsonValue(std::move(trace_events));

  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace: cannot open trace output file: " + path);
  }
  out << json_serialize(JsonValue(std::move(root))) << '\n';
  if (!out) {
    throw std::runtime_error("trace: failed writing trace output: " + path);
  }
}

}  // namespace clrearly::util
