#include "util/linsolve.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace clrearly::util {

namespace {
// Alias for the shared threshold (see linsolve.hpp); kept so the factorize
// body below reads as before.
constexpr double kSingularTol = kLuSingularTol;
}  // namespace

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) { factorize(); }

void LuDecomposition::factor(const Matrix& a) {
  lu_ = a;  // vector copy-assignment reuses lu_'s storage when it fits
  perm_sign_ = 1;
  factorize();
}

void LuDecomposition::factor(Matrix&& a) {
  lu_ = std::move(a);
  perm_sign_ = 1;
  factorize();
}

void LuDecomposition::factorize() {
  if (!lu_.square()) {
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double max_entry = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      max_entry = std::max(max_entry, std::abs(lu_(i, j)));
    }
  }
  const double tol = kSingularTol * std::max(max_entry, 1.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining |entry| in column k up.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag <= tol) {
      throw std::domain_error("LuDecomposition: matrix is singular");
    }
    if (pivot_row != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(pivot_row, j));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / pivot;
      lu_(i, k) = factor;  // store L's multiplier in place
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  std::vector<double> x;
  solve_into(b, x);
  return x;
}

void LuDecomposition::solve_into(const std::vector<double>& b,
                                 std::vector<double>& x) const {
  const std::size_t n = dim();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: rhs length mismatch");
  }
  // Forward substitution with the permuted rhs (L has unit diagonal).
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution through U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
}

std::vector<double> LuDecomposition::solve_transposed(
    const std::vector<double>& b) const {
  std::vector<double> x;
  std::vector<double> scratch;
  solve_transposed_into(b, x, scratch);
  return x;
}

void LuDecomposition::solve_transposed_into(
    const std::vector<double>& b, std::vector<double>& x,
    std::vector<double>& scratch) const {
  const std::size_t n = dim();
  if (b.size() != n) {
    throw std::invalid_argument(
        "LuDecomposition::solve_transposed: rhs length mismatch");
  }
  // With P A = L U (perm_[i] = source row of factored row i):
  //   A^T x = b  <=>  U^T L^T P x = b.
  // Step 1, U^T y = b — U^T is lower triangular, forward substitution.
  scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * scratch[j];
    scratch[i] = acc / lu_(i, i);
  }
  // Step 2, L^T z = y — L^T is unit upper triangular, back substitution
  // (in place over scratch).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = scratch[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * scratch[j];
    scratch[ii] = acc;
  }
  // Step 3, x = P^{-1} z: undo the row permutation.
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = scratch[i];
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != dim()) {
    throw std::invalid_argument("LuDecomposition::solve: rhs rows mismatch");
  }
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  std::vector<double> xc;
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    solve_into(col, xc);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xc[i];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(dim()));
}

double LuDecomposition::determinant() const noexcept {
  double det = perm_sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b) {
  return LuDecomposition(a).solve(b);
}

Matrix invert(const Matrix& a) { return LuDecomposition(a).inverse(); }

}  // namespace clrearly::util
