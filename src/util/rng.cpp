#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace clrearly::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro requires a nonzero state; splitmix64 output of four consecutive
  // draws being all-zero cannot happen, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection-free Lemire-style bounded draw (bias negligible for our spans,
  // but do one rejection round for cleanliness).
  std::uint64_t x = next_u64();
  std::uint64_t r = x % span;
  return lo + static_cast<std::int64_t>(r);
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) noexcept {
  const double pc = std::clamp(p, 0.0, 1.0);
  return uniform() < pc;
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; avoid log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = mag * std::sin(angle);
  have_cached_normal_ = true;
  return mag * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return index(weights.size());
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= std::max(weights[i], 0.0);
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  Rng child(0);
  for (auto& word : child.s_) word = next_u64();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
    child.s_[0] = 1;
  }
  // The child must start with an empty Box-Muller cache: inheriting the
  // parent's cached_normal_ would hand the same draw to both streams (and
  // correlate every child split after a normal() call). The fresh Rng above
  // already guarantees this; the explicit reset pins the invariant, and
  // rng_test's SplitChildIgnoresCachedNormalState covers it.
  child.have_cached_normal_ = false;
  child.cached_normal_ = 0.0;
  return child;
}

}  // namespace clrearly::util
