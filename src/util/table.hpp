// Fixed-width text tables for bench output — the benches print the same rows
// the paper's tables report, so alignment matters for readability.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace clrearly::util {

/// Column-aligned ASCII table. Collect rows, then print(); widths are derived
/// from content. Intended for small result tables, not bulk data (use
/// CsvWriter for that).
class TextTable {
 public:
  /// Set the header row (optional).
  void header(std::vector<std::string> cells);

  /// Append a data row. Rows may have differing lengths; shorter rows are
  /// padded with empty cells when printed.
  void add_row(std::vector<std::string> cells);

  /// Convenience: append a row of already-formatted cells.
  template <typename... Cells>
  void row(Cells&&... cells) {
    add_row({to_cell(std::forward<Cells>(cells))...});
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with single-space-padded columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string to_string() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(long v) { return std::to_string(v); }
  static std::string to_cell(long long v) { return std::to_string(v); }
  static std::string to_cell(unsigned v) { return std::to_string(v); }
  static std::string to_cell(unsigned long v) { return std::to_string(v); }
  static std::string to_cell(unsigned long long v) { return std::to_string(v); }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clrearly::util
