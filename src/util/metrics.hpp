// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms for the DSE stack.
//
// The registry answers one question the benches' hand-rolled JSON never
// could: what did *this* run actually do — how many fitness evaluations,
// how many chain solves, how deep did the pool queue get, where did the
// wall-clock go — without recompiling or threading report structs through
// every layer.
//
// Design constraints, in priority order:
//  1. Near-zero hot-path cost. Counters are striped across cache-line-padded
//     atomic cells (the same contention-spreading idea as MemoCache's
//     per-shard stats): an increment is one relaxed fetch_add on a cell
//     indexed by a per-thread stripe id, so concurrent writers do not
//     bounce a shared line. Instrumented code caches the Counter& in a
//     function-local static — the name lookup happens once per process.
//  2. Exactness. Increments are never sampled or dropped; a snapshot sums
//     the stripes, so counter values are exact regardless of thread count
//     (pinned by MetricsTest under TSan).
//  3. Results untouched. Metrics never consult the RNG, never reorder work
//     and never feed back into any computation — instrumented runs are
//     bit-identical to uninstrumented ones (pinned by the observability
//     differential test).
//
// Snapshots serialize to util::json; metrics_snapshot() additionally
// re-exports every named MemoCache's hit/miss/evict counters — live caches
// plus the retained totals of already-destroyed ones (lifetime_cache_stats)
// — under "caches", so one file describes the whole run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace clrearly::util {

namespace detail {

/// Small per-thread stripe id, assigned on first use. Only used to spread
/// counter increments across cells — exactness never depends on it.
std::size_t metric_stripe() noexcept;

/// One cache line per cell so concurrent increments on different stripes
/// never share a line.
struct alignas(64) MetricCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotonic event counter. add() is wait-free (one relaxed fetch_add);
/// value() sums the stripes and is exact once concurrent writers are done
/// (e.g. after a parallel_for batch drains).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::metric_stripe() & (kStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;
  detail::MetricCell cells_[kStripes];
};

/// Last-value / level metric (queue depth, front size, hypervolume proxy).
/// Stores a double so it covers both integer levels and derived quantities;
/// set() and add() are lock-free (store / CAS loop).
class Gauge {
 public:
  void set(double value) noexcept {
    bits_.store(to_bits(value), std::memory_order_relaxed);
  }

  void add(double delta) noexcept {
    std::uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        observed, to_bits(from_bits(observed) + delta),
        std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }

  void reset() noexcept { set(0.0); }

 private:
  static std::uint64_t to_bits(double d) noexcept;
  static double from_bits(std::uint64_t bits) noexcept;

  std::atomic<std::uint64_t> bits_{0};
};

/// Aggregated view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
  std::vector<double> bounds;          ///< upper bucket bounds (inclusive)
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges in ascending
/// order; a sample lands in the first bucket whose bound is >= the sample,
/// or in the overflow bucket past the last bound. observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  HistogramSnapshot snapshot() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<detail::MetricCell> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

/// Look up (or create) a metric in the process-wide registry. References
/// stay valid for the life of the process — cache them in a function-local
/// static on hot paths. Names are free-form; the convention is
/// "<subsystem>.<what>" (see docs/OBSERVABILITY.md for the catalogue).
/// Re-registering a histogram name keeps the first call's bounds.
Counter& metric_counter(const std::string& name);
Gauge& metric_gauge(const std::string& name);
Histogram& metric_histogram(const std::string& name,
                            std::vector<double> bounds);

/// Observe `seconds` into metric_histogram(name) with the standard
/// wall-clock bucket ladder (1ms .. 100s) — the shared shape for phase
/// timings so snapshots stay comparable across subsystems.
void observe_seconds(const std::string& name, double seconds);

/// Snapshot every registered metric plus the cache counters:
///   {"counters": {...}, "gauges": {...}, "histograms": {...},
///    "caches": {"<name>": {"hits": ..., "misses": ..., ...}}}
/// Cache counts come from lifetime_cache_stats() at call time, so they
/// match what the caching layer itself reports (and still cover caches
/// already destroyed when the exit hook takes the final snapshot).
JsonObject metrics_snapshot();

/// Zero every registered metric (counters, gauges, histograms). Registered
/// references stay valid. Intended for tests and between-run isolation;
/// does not touch the MemoCache counters.
void reset_metrics();

}  // namespace clrearly::util
