#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace clrearly::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

void Matrix::assign(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("Matrix::operator*: inner dimension mismatch");
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: vector length mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

void Matrix::apply_into(const std::vector<double>& v,
                        std::vector<double>& out) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::apply_into: vector length mismatch");
  }
  out.resize(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw std::out_of_range("Matrix::block: out of range");
  }
  Matrix out(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    for (std::size_t j = 0; j < nc; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::vector<double> Matrix::row_sums() const {
  std::vector<double> s(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) s[i] += (*this)(i, j);
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << '[';
    for (std::size_t j = 0; j < m.cols(); ++j) {
      os << (j ? ", " : "") << m(i, j);
    }
    os << "]\n";
  }
  return os;
}

}  // namespace clrearly::util
