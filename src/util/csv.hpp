// CSV emission for bench results (one file per reproduced table/figure so the
// series can be re-plotted outside the harness).
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace clrearly::util {

/// RFC-4180-ish CSV writer: quotes fields containing separators/quotes/
/// newlines, doubles embedded quotes. Numeric overloads format with enough
/// precision to round-trip doubles.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a full row; fields are escaped individually.
  void row(const std::vector<std::string>& fields);

  /// Append one field to the current row (flushed by end_row()).
  CsvWriter& field(std::string_view text);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(std::size_t value);
  void end_row();

  /// Flush buffered output to disk.
  void flush();

 private:
  static std::string escape(std::string_view text);

  std::ofstream out_;
  bool row_open_ = false;
};

/// Format a double compactly (%.6g-style) for table output.
std::string format_compact(double value);

}  // namespace clrearly::util
