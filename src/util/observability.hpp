// Glue between the CLI surface and the metrics/trace/manifest modules:
// the --metrics-out and --trace-out flags, the process-wide output paths,
// and the end-of-run write. parse_standard_args wires this in for every
// driver (see util/cli.hpp); `clrearly` adds the same options to each
// subcommand explicitly.
//
// Flag semantics are strictly observational: the flags decide whether
// files get written, never what the run computes — the differential test
// pins DSE results bit-for-bit with the flags on vs off.
#pragma once

#include <chrono>
#include <string>

#include "util/manifest.hpp"

namespace clrearly::util {

class ArgParser;

/// Declare --metrics-out <path> and --trace-out <path>.
ArgParser& add_observability_options(ArgParser& parser);

/// Apply the declared options: store the output paths, capture the run
/// manifest (call after --threads/--cache-size/--log-level have been
/// applied so the manifest records effective values), attach it to the
/// trace as "otherData", and register an atexit hook that writes both
/// files on normal process exit. When neither flag was given this is a
/// no-op — no hook, no files, counters-only mode.
void apply_observability_options(const ArgParser& parser, int argc,
                                 char** argv);

/// Metrics snapshot destination ("" = disabled). set_metrics_path
/// registers the exit hook on first enablement, like set_trace_path.
void set_metrics_path(const std::string& path);
const std::string& metrics_path();

/// The manifest captured by apply_observability_options (default-
/// constructed until then). set_run_manifest also mirrors it into the
/// trace metadata.
void set_run_manifest(RunManifest manifest);
const RunManifest& run_manifest();

/// Write the metrics snapshot (with the manifest under "manifest") to
/// metrics_path() and flush the trace to trace_path(); either half is
/// skipped when its path is unset. Called automatically at exit; callable
/// earlier for mid-run snapshots. Throws std::runtime_error when a file
/// cannot be written (the exit hook swallows this).
void write_observability_files();

/// RAII phase timer for coarse stages (tDSE, pfCLR, fcCLR, report
/// writing): unlike TraceSpan it always measures — the duration lands in
/// the `<name>_seconds` histogram (standard observe_seconds ladder) even
/// in counters-only mode, and additionally becomes a trace span when
/// tracing is enabled. One clock read plus a registry lookup per scope;
/// use only at phase granularity, TraceSpan on warmer paths.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name) noexcept
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer();

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace clrearly::util
