#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace clrearly::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  throw std::invalid_argument("unknown log level '" + std::string(name) +
                              "' (expected debug|info|warn|error|off)");
}

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line;
  line.reserve(message.size() + 16);
  line += "[clrearly ";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace clrearly::util
