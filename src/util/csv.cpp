#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace clrearly::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view text) {
  if (row_open_) out_ << ',';
  out_ << escape(text);
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  // std::to_chars, not snprintf("%.17g"): printf honors LC_NUMERIC, so a
  // comma-decimal locale would write "1,5" and corrupt the CSV column
  // structure. to_chars is locale-independent with the same %g shape.
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                 std::chars_format::general, 17);
  (void)ec;
  return field(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

CsvWriter& CsvWriter::field(long long value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  return field(std::string_view(buf, static_cast<std::size_t>(ptr - buf)));
}

CsvWriter& CsvWriter::field(std::size_t value) {
  return field(static_cast<long long>(value));
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
}

void CsvWriter::flush() { out_.flush(); }

std::string CsvWriter::escape(std::string_view text) {
  const bool needs_quotes =
      text.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(text);
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_compact(double value) {
  // Locale-independent %.6g (see CsvWriter::field(double)).
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                 std::chars_format::general, 6);
  (void)ec;
  return std::string(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace clrearly::util
