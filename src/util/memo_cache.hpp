// Thread-safe sharded memoization cache for the DSE hot paths.
//
// The multi-stage DSE re-derives the same pure results over and over:
// NSGA-II re-encounters duplicate genomes across generations, and distinct
// genomes share identical per-task CLR configurations whose absorbing-chain
// solves are recomputed from scratch.  MemoCache turns those recomputations
// into lookups while guaranteeing bit-identical results: values are pure
// functions of their keys, a hit returns a stored copy of exactly what the
// miss path would compute, and a (harmless) false miss only costs a
// recompute — the cache can change throughput, never results.
//
// Structure: the key space is split across N shards, each an open-addressing
// table (linear probing, bounded probe window) under its own mutex.  The
// capacity is a hard structural bound — a shard never allocates past its
// fixed slot array; when an insert finds its probe window full it evicts the
// least-recently-used slot in the window (per-shard logical clock), which is
// the "LRU-ish" policy: cheap, bounded, and recency-respecting within a
// window without global list maintenance.  Hit/miss/evict counters are kept
// per shard and aggregated on demand; named caches additionally register
// with a process-wide registry so drivers can report every cache's counters
// (aggregate_cache_stats) without threading handles around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace clrearly::util {

/// Aggregated counters of one cache (or one shard).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;   ///< currently resident key/value pairs
  std::size_t capacity = 0;  ///< structural bound on entries

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  CacheStats& operator+=(const CacheStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    entries += other.entries;
    capacity += other.capacity;
    return *this;
  }
};

/// splitmix64 finalizer — avalanches a 64-bit state so that every input bit
/// affects every output bit (used as the final mixing step of HashStream and
/// to derive independent second streams).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Streaming 64-bit hash (FNV-1a core, splitmix64 finalizer). Deterministic
/// across runs and platforms; feed words in a canonical order.
class HashStream {
 public:
  explicit HashStream(std::uint64_t seed = 0)
      : state_(kOffsetBasis ^ mix64(seed)) {}

  // One multiply + shift-mix per 64-bit word (not the byte-at-a-time FNV
  // loop, whose eight serially dependent multiplies per word would dominate
  // the cache hit path). The shift breaks the affine structure between
  // words; digest() finalizes with mix64 for full avalanche.
  HashStream& add(std::uint64_t word) noexcept {
    state_ = (state_ ^ word) * kPrime;
    state_ ^= state_ >> 32;
    return *this;
  }

  /// Canonical double hashing: bit pattern, with -0.0 folded onto +0.0 so
  /// arithmetically equal zeros share a key.
  HashStream& add(double value) noexcept {
    std::uint64_t bits;
    const double canonical = (value == 0.0) ? 0.0 : value;
    std::memcpy(&bits, &canonical, sizeof bits);
    return add(bits);
  }

  std::uint64_t digest() const noexcept { return mix64(state_); }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t state_;
};

/// 128-bit content key: two independently seeded 64-bit streams. Collisions
/// are cryptographically unlikely (~2^-64 per pair even at billions of
/// entries), which is what lets hot paths key on the hash instead of the
/// full (potentially large) canonical form.
struct Key128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Key128&) const noexcept = default;
};

/// Builds a Key128 by streaming the same words into both halves.
class Key128Stream {
 public:
  Key128Stream() : lo_(0x7c15ull), hi_(0x9e37ull) {}

  Key128Stream& add(std::uint64_t word) noexcept {
    lo_.add(word);
    hi_.add(word);
    return *this;
  }
  Key128Stream& add(double value) noexcept {
    lo_.add(value);
    hi_.add(value);
    return *this;
  }

  Key128 digest() const noexcept { return {lo_.digest(), hi_.digest()}; }

 private:
  HashStream lo_;
  HashStream hi_;
};

struct Key128Hash {
  std::size_t operator()(const Key128& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
  }
};

namespace detail {

/// Parse a CLREARLY_CACHE-style value: nullptr, empty, negative, unparsable
/// or trailing garbage all yield kDefaultCacheCapacity. Exposed so the
/// rejection rules are directly testable — strtoull would otherwise wrap
/// "-1" to ULLONG_MAX.
std::size_t parse_cache_env(const char* text) noexcept;

/// Register a named cache's stats provider with the process-wide registry;
/// returns a token for unregister_cache. Thread-safe.
std::uint64_t register_cache(std::string name,
                             std::function<CacheStats()> stats);

/// Remove the cache from the live registry and fold `final_stats` (with
/// entries/capacity zeroed — the storage is gone) into the retained
/// per-name totals that lifetime_cache_stats() reports. Thread-safe.
void unregister_cache(std::uint64_t token, CacheStats final_stats);

inline std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace detail

/// Counters of every live named cache, summed per name (several
/// ClrMappingProblems each own a "fitness" cache; reporting wants the
/// union). Sorted by name for stable output.
std::vector<std::pair<std::string, CacheStats>> aggregate_cache_stats();

/// Like aggregate_cache_stats(), plus the final counters of every named
/// cache already destroyed (entries/capacity count live caches only).
/// This is what the --metrics-out exit snapshot reports: the per-problem
/// fitness caches die mid-run and process-wide caches can be torn down
/// before the exit hook fires, yet their hit/miss totals still belong in
/// the run's accounting. For live caches the two functions agree.
std::vector<std::pair<std::string, CacheStats>> lifetime_cache_stats();

/// Process-wide default capacity for the DSE caches (the --cache-size /
/// --no-cache flags). Precedence: set_cache_capacity() override, else the
/// CLREARLY_CACHE environment variable, else kDefaultCacheCapacity.
/// 0 at the top of the chain disables caching entirely.
inline constexpr std::size_t kDefaultCacheCapacity = 1u << 16;
void set_cache_capacity(std::size_t capacity);
void reset_cache_capacity();  ///< drop the override (back to env/default)
std::size_t cache_capacity();

template <typename Key, typename Value, typename KeyHash = std::hash<Key>>
class MemoCache {
 public:
  /// `capacity` bounds the total resident entries (rounded up to the shard
  /// grid; see capacity()). 0 builds a disabled cache: lookups always miss
  /// and inserts are dropped, so callers can keep one unconditional code
  /// path. `name` (optional) registers the cache for aggregate_cache_stats.
  explicit MemoCache(std::size_t capacity, std::string name = "")
      : name_(std::move(name)) {
    if (capacity > 0) {
      // Shards scale with capacity (one per 512 slots, capped) so small
      // caches stay compact while large ones spread lock pressure.
      const std::size_t shard_count = std::min<std::size_t>(
          64, detail::next_pow2((capacity + 511) / 512));
      const std::size_t slots = detail::next_pow2(
          (capacity + shard_count - 1) / shard_count);
      shards_.reserve(shard_count);
      for (std::size_t s = 0; s < shard_count; ++s) {
        shards_.push_back(std::make_unique<Shard>(slots));
      }
      shard_mask_ = shard_count - 1;
    }
    if (!name_.empty()) {
      token_ = detail::register_cache(name_, [this] { return stats(); });
    }
  }

  ~MemoCache() {
    if (!name_.empty()) detail::unregister_cache(token_, stats());
  }

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  bool enabled() const noexcept { return !shards_.empty(); }

  /// Structural capacity: shards * slots-per-shard (>= the requested
  /// capacity; entries can never exceed it).
  std::size_t capacity() const noexcept {
    return shards_.empty() ? 0 : shards_.size() * shards_[0]->slots.size();
  }

  /// Copy the cached value for `key` into `out`; true on hit.
  bool lookup(const Key& key, Value& out) const {
    if (shards_.empty()) return false;
    Shard& shard = shard_for(key);
    const std::size_t start = slot_index(shard, key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.tick;
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(start + p) & (shard.slots.size() - 1)];
      if (!slot.used) break;  // open addressing: first hole ends the chain
      if (slot.key == key) {
        slot.last_used = shard.tick;
        out = slot.value;
        ++shard.stats.hits;
        return true;
      }
    }
    ++shard.stats.misses;
    return false;
  }

  /// Insert (or refresh) `key` -> `value`. When the probe window is full,
  /// the least-recently-used slot in the window is evicted.
  void insert(const Key& key, Value value) const {
    if (shards_.empty()) return;
    Shard& shard = shard_for(key);
    const std::size_t start = slot_index(shard, key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.tick;
    Slot* empty = nullptr;
    Slot* oldest = nullptr;
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      Slot& slot = shard.slots[(start + p) & (shard.slots.size() - 1)];
      if (!slot.used) {
        if (empty == nullptr) empty = &slot;
        continue;
      }
      if (slot.key == key) {  // refresh (e.g. two threads raced the compute)
        slot.value = std::move(value);
        slot.last_used = shard.tick;
        return;
      }
      if (oldest == nullptr || slot.last_used < oldest->last_used) {
        oldest = &slot;
      }
    }
    Slot* target = empty;
    if (target == nullptr) {
      target = oldest;
      ++shard.stats.evictions;
      --shard.entries;
    }
    target->used = true;
    target->key = key;
    target->value = std::move(value);
    target->last_used = shard.tick;
    ++shard.entries;
  }

  /// lookup(); on miss, run `compute` (outside any lock — computations are
  /// the expensive part and may themselves use the cache) and insert the
  /// result. Concurrent computes of the same key are allowed: the value is
  /// a pure function of the key, so both produce identical bits.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& compute) const {
    Value value;
    if (lookup(key, value)) return value;
    value = compute();
    insert(key, value);
    return value;
  }

  CacheStats stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->stats;
      total.entries += shard->entries;
    }
    total.capacity = capacity();
    return total;
  }

  void clear() const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      for (Slot& slot : shard->slots) slot = Slot{};
      shard->entries = 0;
    }
  }

 private:
  /// Linear-probe window; beyond it an insert evicts instead of probing on.
  static constexpr std::size_t kProbeWindow = 8;

  struct Slot {
    bool used = false;
    std::uint64_t last_used = 0;
    Key key{};
    Value value{};
  };

  struct Shard {
    explicit Shard(std::size_t slot_count) : slots(slot_count) {}
    mutable std::mutex mutex;
    std::vector<Slot> slots;
    std::size_t entries = 0;
    std::uint64_t tick = 0;
    CacheStats stats;
  };

  Shard& shard_for(const Key& key) const {
    const std::size_t h = KeyHash{}(key);
    // Shard from the high bits, slot from the low bits, so the two indices
    // stay independent.
    return *shards_[(h >> 48) & shard_mask_];
  }

  std::size_t slot_index(const Shard& shard, const Key& key) const {
    return KeyHash{}(key) & (shard.slots.size() - 1);
  }

  std::string name_;
  std::uint64_t token_ = 0;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace clrearly::util
