#include "util/thread_pool.hpp"

#include <atomic>
#include <charconv>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/metrics.hpp"

namespace clrearly::util {

namespace detail {

std::size_t parse_thread_env(const char* text) noexcept {
  // from_chars is deliberately strict: no leading whitespace, no sign
  // (strtoul would wrap "-1" to ULONG_MAX and silently ask for ~2^64
  // threads), no trailing garbage, no locale dependence.
  if (text == nullptr || *text == '\0') return 0;
  std::size_t value = 0;
  const char* last = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, last, value);
  if (ec != std::errc{} || ptr != last) return 0;
  return value;
}

}  // namespace detail

namespace {

/// Set while this thread executes a parallel_for body; nested calls then
/// run inline instead of re-entering the queue (which could deadlock once
/// every worker waits on work only it could execute).
thread_local bool tls_inside_parallel = false;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t env_threads() {
  return detail::parse_thread_env(std::getenv("CLREARLY_THREADS"));
}

}  // namespace

struct ThreadPool::Impl {
  std::size_t total = 1;
  std::vector<std::thread> workers;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::function<void()>> queue;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        // Drain the queue even when stopping: a queued batch chunk must
        // check in or its issuer would wait forever.
        if (queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  impl_->total = threads == 0 ? hardware_threads() : threads;
  const std::size_t workers = impl_->total - 1;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->stopping = true;
  }
  impl_->queue_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::thread_count() const noexcept { return impl_->total; }

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || impl_->total <= 1 || tls_inside_parallel) {
    const bool was_inside = tls_inside_parallel;
    tls_inside_parallel = true;
    try {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } catch (...) {
      tls_inside_parallel = was_inside;
      throw;
    }
    tls_inside_parallel = was_inside;
    return;
  }

  // Per-call state, held by the queued chunks via shared_ptr. The caller
  // always waits for every chunk to check in before returning, which keeps
  // the `body` reference alive for chunks that start late.
  struct CallState {
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t pending = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<CallState>();
  state->n = n;
  state->body = &body;
  const std::size_t participants = std::min(impl_->total, n);
  state->pending = participants;

  // One registry lookup per process; per parallel_for call the metrics
  // cost is two striped adds and a gauge store — per *index* it is zero.
  static Counter& submitted_metric = metric_counter("pool.tasks_submitted");
  static Counter& executed_metric = metric_counter("pool.tasks_executed");
  static Gauge& queue_depth_metric = metric_gauge("pool.queue_depth");

  auto chunk = [state] {
    const bool was_inside = tls_inside_parallel;
    tls_inside_parallel = true;
    std::exception_ptr first;
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      try {
        (*state->body)(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    tls_inside_parallel = was_inside;
    executed_metric.add();
    std::lock_guard<std::mutex> lock(state->done_mutex);
    if (first && !state->error) state->error = first;
    if (--state->pending == 0) state->done_cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    for (std::size_t i = 0; i + 1 < participants; ++i) {
      impl_->queue.push_back(chunk);
    }
    submitted_metric.add(participants - 1);
    queue_depth_metric.set(static_cast<double>(impl_->queue.size()));
  }
  impl_->queue_cv.notify_all();

  chunk();  // the caller participates

  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done_cv.wait(lock, [&] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

struct GlobalPoolState {
  std::mutex mutex;
  std::optional<std::size_t> override_threads;
  std::unique_ptr<ThreadPool> pool;
  std::size_t pool_threads = 0;

  std::size_t resolve_locked() const {
    std::size_t n =
        override_threads.has_value() ? *override_threads : env_threads();
    if (n == 0) n = hardware_threads();
    return n;
  }
};

GlobalPoolState& global_state() {
  static GlobalPoolState state;
  return state;
}

}  // namespace

void set_thread_count(std::size_t threads) {
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.override_threads = threads;
}

std::size_t effective_thread_count() {
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.resolve_locked();
}

ThreadPool& global_pool() {
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t want = state.resolve_locked();
  if (!state.pool || state.pool_threads != want) {
    state.pool.reset();  // join the old workers before replacing
    state.pool = std::make_unique<ThreadPool>(want);
    state.pool_threads = want;
  }
  return *state.pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(n, body);
}

}  // namespace clrearly::util
