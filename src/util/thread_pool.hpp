// Work-queue thread pool powering every parallel evaluation path in the
// library (NSGA-II fitness batches, the dense Markov-table builds of
// ClrMappingProblem, per-type tDSE fan-out).
//
// Design constraints, in priority order:
//  1. Determinism — parallel_for(n, body) runs body(i) exactly once per
//     index; callers write per-index slots, so results are bit-identical to
//     a serial loop regardless of the thread count or scheduling.
//  2. Safety under nesting — a body that itself calls parallel_for (on any
//     pool) degrades to an inline serial loop instead of deadlocking.
//  3. A single process-wide configuration point: set_thread_count() (the
//     --threads flag) overrides the CLREARLY_THREADS environment variable,
//     which overrides hardware concurrency. 0 at any level means "use the
//     hardware concurrency".
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace clrearly::util {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread
  /// (a pool of 4 spawns 3 workers; the caller participates in every
  /// parallel_for). 0 picks std::thread::hardware_concurrency(). A pool of
  /// 1 spawns nothing and runs every parallel_for inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + calling thread).
  std::size_t thread_count() const noexcept;

  /// Run body(0) .. body(n-1), each exactly once, and block until all have
  /// finished. Indices are claimed dynamically by the workers and the
  /// calling thread; the body must confine its writes to per-index state
  /// (slot i of a result array) — under that contract the outcome is
  /// bit-identical to the serial loop. The first exception thrown by any
  /// index is rethrown here after the batch drains. Nested invocations from
  /// inside a body run serially inline. Concurrent top-level calls from
  /// different threads are safe and share the workers.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

namespace detail {

/// Parse a CLREARLY_THREADS-style value: nullptr, empty, unparsable,
/// negative or trailing garbage all yield 0 ("defer to hardware"). Exposed
/// so the rejection rules are directly testable — strtoul would otherwise
/// happily wrap "-1" to ~2^64 threads.
std::size_t parse_thread_env(const char* text) noexcept;

}  // namespace detail

/// Override the global thread count (the --threads flag). 0 = hardware
/// concurrency. Takes effect on the next global_pool() access; call it at
/// startup or between runs, never while parallel work is in flight.
void set_thread_count(std::size_t threads);

/// The thread count the global pool (re)builds with: set_thread_count()
/// override if any, else CLREARLY_THREADS, else hardware concurrency.
std::size_t effective_thread_count();

/// Lazily-built process-wide pool at effective_thread_count(); rebuilt when
/// the configured count changes.
ThreadPool& global_pool();

/// parallel_for on the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace clrearly::util
