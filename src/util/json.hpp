// Minimal JSON value model, parser and writer — enough for the library's
// model-exchange format (io/serialize.hpp): null, bool, number, string,
// array, object. No external dependencies.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace clrearly::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted — serialization is canonical, which makes
/// round-trip tests and diffs trivial.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::size_t u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member access; throws std::runtime_error when `key` is absent
  /// or this is not an object.
  const JsonValue& at(const std::string& key) const;
  /// Member lookup returning nullptr when absent.
  const JsonValue* find(const std::string& key) const;
  /// Member access with a default for absent keys.
  double number_or(const std::string& key, double fallback) const;

  bool operator==(const JsonValue&) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Serialize with 2-space indentation (stable, diff-friendly).
std::string json_serialize(const JsonValue& value);

/// Parse a complete JSON document; throws std::runtime_error with a
/// character offset on malformed input (including trailing garbage).
JsonValue json_parse(const std::string& text);

}  // namespace clrearly::util
