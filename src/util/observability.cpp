#include "util/observability.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/signal_guard.hpp"
#include "util/trace.hpp"

namespace clrearly::util {

namespace {

struct ObservabilityState {
  std::mutex mutex;
  std::string metrics_path;
  RunManifest manifest;
  bool atexit_registered = false;
};

ObservabilityState& state() {
  static ObservabilityState* instance = new ObservabilityState();
  return *instance;
}

void write_files_at_exit() {
  try {
    write_observability_files();
  } catch (const std::exception&) {
    // Exit path: nothing sensible to do beyond leaving the file unwritten.
  }
}

}  // namespace

ArgParser& add_observability_options(ArgParser& parser) {
  parser.option("metrics-out",
                "write a JSON metrics snapshot (counters, gauges, "
                "histograms, cache stats, run manifest) to this path at "
                "exit",
                "");
  return parser.option(
      "trace-out",
      "write Chrome trace-event JSON (load in chrome://tracing or "
      "ui.perfetto.dev) to this path at exit",
      "");
}

void apply_observability_options(const ArgParser& parser, int argc,
                                 char** argv) {
  const std::string* metrics = parser.try_get("metrics-out");
  const std::string* trace = parser.try_get("trace-out");
  const bool any = (metrics != nullptr && !metrics->empty()) ||
                   (trace != nullptr && !trace->empty());
  if (!any) return;
  if (trace != nullptr) set_trace_path(*trace);
  if (metrics != nullptr) set_metrics_path(*metrics);
  set_run_manifest(capture_run_manifest(parser, argc, argv));
  // atexit covers normal exit; ^C / SIGTERM would otherwise drop the files
  // the user explicitly asked for. Daemons re-install kNotifyOnly on top.
  install_signal_handlers(SignalMode::kFlushAndExit);
}

void set_metrics_path(const std::string& path) {
  ObservabilityState& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.metrics_path = path;
  if (!path.empty() && !st.atexit_registered) {
    st.atexit_registered = true;
    std::atexit(write_files_at_exit);
  }
}

const std::string& metrics_path() { return state().metrics_path; }

void set_run_manifest(RunManifest manifest) {
  ObservabilityState& st = state();
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.manifest = std::move(manifest);
  }
  set_trace_metadata(st.manifest.to_json());
}

const RunManifest& run_manifest() { return state().manifest; }

void write_observability_files() {
  std::string path;
  JsonObject manifest_json;
  {
    ObservabilityState& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    path = st.metrics_path;
    manifest_json = st.manifest.to_json();
  }
  if (!path.empty()) {
    JsonObject snapshot = metrics_snapshot();
    snapshot["manifest"] = JsonValue(std::move(manifest_json));
    std::ofstream out(path);
    if (!out) {
      throw std::runtime_error("metrics: cannot open output file: " + path);
    }
    out << json_serialize(JsonValue(std::move(snapshot))) << '\n';
    if (!out) {
      throw std::runtime_error("metrics: failed writing output: " + path);
    }
  }
  if (trace_enabled()) flush_trace();
}

PhaseTimer::~PhaseTimer() {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  observe_seconds(std::string(name_) + "_seconds", seconds);
  if (trace_enabled()) {
    const double end_us = detail::trace_now_us();
    detail::trace_record_span(name_, end_us - seconds * 1e6,
                              seconds * 1e6);
  }
}

}  // namespace clrearly::util
