// Minimal leveled logging to stderr. The DSE flows report per-stage progress
// at Info; set_level(Level::Warn) silences them (the benches do this when a
// machine-readable stream is wanted).
#pragma once

#include <sstream>
#include <string_view>

namespace clrearly::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level (default Info).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Canonical lowercase name of a level ("debug", "info", "warn", "error",
/// "off") — the vocabulary of the shared --log-level option.
std::string_view to_string(LogLevel level) noexcept;

/// Inverse of to_string(); throws std::invalid_argument on anything else.
LogLevel parse_log_level(std::string_view name);

/// Emit one line at `level` (filtered against the process-wide minimum).
void log_line(LogLevel level, std::string_view message);

namespace detail {

/// Stream-style one-shot logger: Log(level) << "x=" << x; flushes on
/// destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, oss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::Debug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::Error); }

}  // namespace clrearly::util
