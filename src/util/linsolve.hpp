// Direct dense linear solvers built on util::Matrix.
//
// The Markov-chain analysis needs (I - Q)^{-1} applied to residence-time
// vectors and to the absorbing-transition block R. Chains stay small (a few
// states per inter-checkpoint interval), so an O(n^3) partially-pivoted LU is
// the right tool; no iterative machinery is warranted.
//
// The chain-analysis hot path factors once and then performs O(n^2) solves
// against the stored factors — including *adjoint* (transposed) solves, which
// extract a single row of A^{-1} without ever forming the inverse. The
// `*_into` overloads write into caller-owned buffers so a warm workspace
// performs no heap allocation.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace clrearly::util {

/// Relative threshold below which an LU pivot is treated as zero. Shared
/// with the batched chain kernel, whose per-lane singularity test must match
/// LuDecomposition::factorize bit for bit.
inline constexpr double kLuSingularTol = 1e-13;

/// Partially pivoted LU decomposition of a square matrix.
///
/// Factorization is performed once (at construction or via factor()); solves
/// against multiple right-hand sides reuse it. Throws std::invalid_argument
/// for non-square input and std::domain_error when the matrix is numerically
/// singular.
class LuDecomposition {
 public:
  /// Empty decomposition; call factor() before any solve.
  LuDecomposition() = default;

  explicit LuDecomposition(Matrix a);

  /// (Re)factor `a`, reusing this object's internal storage when capacity
  /// permits — the workspace-reuse path: no allocation once the high-water
  /// dimension has been seen.
  void factor(const Matrix& a);

  /// (Re)factor, taking ownership of `a`'s storage.
  void factor(Matrix&& a);

  /// Solve A x = b. b.size() must equal the matrix dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A x = b into `x` (resized to dim(), capacity reused). `x` must
  /// not alias `b`. Bit-identical to solve().
  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

  /// Solve A^T x = b — the adjoint solve. Row `i` of A^{-1} is the solution
  /// for b = e_i, so a single adjoint solve replaces the n column solves of
  /// inverse() when only one row is needed.
  std::vector<double> solve_transposed(const std::vector<double>& b) const;

  /// Adjoint solve into caller buffers. `scratch` holds the intermediate
  /// triangular solutions; `x`, `scratch` and `b` must be three distinct
  /// vectors. No allocation once both have dim() capacity.
  void solve_transposed_into(const std::vector<double>& b,
                             std::vector<double>& x,
                             std::vector<double>& scratch) const;

  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// A^{-1} (solve against the identity).
  Matrix inverse() const;

  /// det(A), from the product of U's diagonal and the permutation sign.
  double determinant() const noexcept;

  std::size_t dim() const noexcept { return lu_.rows(); }

  /// Doubles of factor storage currently held (capacity, for the workspace
  /// footprint gauges).
  std::size_t capacity_doubles() const noexcept {
    return lu_.capacity() + perm_.capacity() * sizeof(std::size_t) / sizeof(double);
  }

  /// Drop factor storage (the shrink action); factor() again before solving.
  void release() noexcept {
    lu_.release();
    perm_ = std::vector<std::size_t>();  // not `= {}`: that keeps capacity
    perm_sign_ = 1;
  }

 private:
  /// Factor lu_ in place; shared by the constructor and factor().
  void factorize();

  Matrix lu_;                  // packed L (unit diagonal, below) and U (above)
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b);

/// One-shot convenience: A^{-1}.
Matrix invert(const Matrix& a);

}  // namespace clrearly::util
