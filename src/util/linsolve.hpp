// Direct dense linear solvers built on util::Matrix.
//
// The Markov-chain analysis needs (I - Q)^{-1} applied to residence-time
// vectors and to the absorbing-transition block R. Chains stay small (a few
// states per inter-checkpoint interval), so an O(n^3) partially-pivoted LU is
// the right tool; no iterative machinery is warranted.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace clrearly::util {

/// Partially pivoted LU decomposition of a square matrix.
///
/// Factorization is performed once at construction; solves against multiple
/// right-hand sides reuse it. Throws std::invalid_argument for non-square
/// input and std::domain_error when the matrix is numerically singular.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solve A x = b. b.size() must equal the matrix dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// A^{-1} (solve against the identity).
  Matrix inverse() const;

  /// det(A), from the product of U's diagonal and the permutation sign.
  double determinant() const noexcept;

  std::size_t dim() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                  // packed L (unit diagonal, below) and U (above)
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b);

/// One-shot convenience: A^{-1}.
Matrix invert(const Matrix& a);

}  // namespace clrearly::util
