#include "util/cpu_features.hpp"

#include <atomic>
#include <cstdlib>

#include "util/log.hpp"

namespace clrearly::util {

namespace {

// Sentinel meaning "no forced override": outside the enum range.
constexpr int kNoOverride = -1;

std::atomic<int> g_forced_level{kNoOverride};

SimdLevel clamp(SimdLevel requested, SimdLevel detected) noexcept {
  return static_cast<int>(requested) <= static_cast<int>(detected) ? requested
                                                                   : detected;
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx512: return "avx512";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kScalar: return "scalar";
  }
  return "scalar";
}

bool parse_simd_level(const std::string& text, SimdLevel& out) noexcept {
  if (text == "scalar") {
    out = SimdLevel::kScalar;
  } else if (text == "avx2") {
    out = SimdLevel::kAvx2;
  } else if (text == "avx512") {
    out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

SimdLevel detected_simd_level() noexcept {
#if defined(CLREARLY_HAVE_AVX_TUS) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads cpuid once and caches; cheap to re-ask.
  // AVX-512 lanes additionally need the compiler to have accepted
  // -mavx512f for the dedicated TU (CLREARLY_HAVE_AVX512_TU).
#if defined(CLREARLY_HAVE_AVX512_TU)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

namespace detail {

SimdLevel parse_simd_env(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return SimdLevel::kAvx512;
  SimdLevel parsed;
  if (parse_simd_level(text, parsed)) return parsed;
  if (std::string(text) != "auto") {
    log_warn() << "CLREARLY_SIMD: unknown level '" << text
               << "' ignored (want scalar|avx2|avx512|auto)";
  }
  return SimdLevel::kAvx512;  // no cap
}

}  // namespace detail

SimdLevel active_simd_level() noexcept {
  const SimdLevel detected = detected_simd_level();
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced != kNoOverride) {
    return clamp(static_cast<SimdLevel>(forced), detected);
  }
  static const SimdLevel env_cap =
      detail::parse_simd_env(std::getenv("CLREARLY_SIMD"));
  return clamp(env_cap, detected);
}

void force_simd_level(SimdLevel level) noexcept {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_simd_level() noexcept {
  g_forced_level.store(kNoOverride, std::memory_order_relaxed);
}

}  // namespace clrearly::util
