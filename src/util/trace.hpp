// Chrome trace-event emission for the DSE stack (the --trace-out flag).
//
// Spans are RAII timers: `TraceSpan span("nsga2.generation");` records a
// complete ("X") event with the calling thread's id when the span is
// destroyed. trace_counter() records counter ("C") events — per-generation
// series such as front size render as stacked charts in the viewer. Events
// land in a fixed-capacity ring buffer under a mutex; when the ring wraps,
// the oldest events are overwritten and the drop is counted, so a
// long-running process keeps the most recent window instead of growing
// without bound. flush_trace() (called automatically at exit once a path is
// set) writes the standard JSON object format:
//
//   {"displayTimeUnit": "ms",
//    "otherData": {...manifest...},
//    "traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
//                     "pid": 1, "tid": ...}, ...]}
//
// Load the file in chrome://tracing, Perfetto (ui.perfetto.dev) or
// `about:tracing` — see docs/OBSERVABILITY.md.
//
// When tracing is disabled (no --trace-out), constructing a TraceSpan is a
// single relaxed atomic load and no event is ever recorded — the layer
// costs nothing on unobserved runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/json.hpp"

namespace clrearly::util {

namespace detail {

/// Global trace switch, read on every span construction.
extern std::atomic<bool> trace_active;

/// Record a complete ("X") event. `ts_us`/`dur_us` are microseconds since
/// the trace epoch (the first set_trace_path call).
void trace_record_span(const char* name, double ts_us, double dur_us);

/// Microseconds since the trace epoch.
double trace_now_us();

}  // namespace detail

/// True once a trace output path has been set.
inline bool trace_enabled() noexcept {
  return detail::trace_active.load(std::memory_order_relaxed);
}

/// Enable tracing to `path` (empty disables and drops buffered events).
/// The first call anchors the trace epoch; an atexit hook flushes the ring
/// to the path on normal process exit.
void set_trace_path(const std::string& path);
const std::string& trace_path();

/// Attach metadata (typically the run manifest) emitted as "otherData".
void set_trace_metadata(JsonObject metadata);

/// Record a counter ("C") event — a named scalar series over trace time.
void trace_counter(const char* name, double value);

/// Record an instant ("i") event — a point-in-time marker.
void trace_instant(const char* name);

/// Write the buffered events to `trace_path()` as Chrome trace-event JSON.
/// No-op when tracing is disabled. The buffer is not cleared, so flushing
/// twice produces two consistent files. Throws std::runtime_error when the
/// file cannot be written.
void flush_trace();

/// Events currently buffered / dropped by ring wrap-around (for tests and
/// the "dropped_events" field of the emitted file).
std::size_t trace_event_count();
std::uint64_t trace_dropped_events();

/// RAII wall-clock span. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      start_us_ = detail::trace_now_us();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) {
      const double end_us = detail::trace_now_us();
      detail::trace_record_span(name_, start_us_, end_us - start_us_);
    }
  }

  /// Seconds elapsed since construction (0 when tracing is disabled) —
  /// lets instrumentation reuse the span's clock for a histogram sample.
  double elapsed_seconds() const noexcept {
    return name_ == nullptr ? 0.0
                            : (detail::trace_now_us() - start_us_) * 1e-6;
  }

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace clrearly::util
