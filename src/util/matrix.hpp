// Dense row-major matrix of double, sized for the small systems that arise in
// absorbing-Markov-chain analysis (tens of states). Deliberately minimal: the
// library needs construction, element access, slicing, products and a linear
// solve (see linsolve.hpp) — not a general BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace clrearly::util {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Construct from nested initializer lists; all rows must be equally long.
  /// Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Reshape to rows x cols with every element zeroed, reusing the existing
  /// storage when capacity permits (no heap traffic once a workspace matrix
  /// has reached its high-water size). Invalidates data() on growth only.
  void assign(std::size_t rows, std::size_t cols);

  /// Contiguous row-major storage (row r starts at data()[r*cols()]).
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Doubles of backing storage currently held (>= rows()*cols()). The
  /// workspace footprint gauges report this, not the logical size — it is
  /// what a shrink policy actually reclaims.
  std::size_t capacity() const noexcept { return data_.capacity(); }

  /// Drop all storage and reset to 0 x 0 (the shrink action). Move-assigns
  /// a fresh vector — `data_ = {}` would keep the capacity alive.
  void release() noexcept {
    data_ = std::vector<double>();
    rows_ = 0;
    cols_ = 0;
  }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) noexcept { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) noexcept { return rhs *= s; }

  /// Matrix product; throws std::invalid_argument on dimension mismatch.
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Matrix-vector product into a caller buffer (resized to rows(), reusing
  /// its capacity). `out` must not alias `v`. Bit-identical to apply().
  void apply_into(const std::vector<double>& v, std::vector<double>& out) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Copy of the sub-matrix [r0, r0+nr) x [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// max_ij |a_ij - b_ij|; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Row sums (length rows()).
  std::vector<double> row_sums() const;

  bool operator==(const Matrix& rhs) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Human-readable form, one row per line — debugging aid only.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace clrearly::util
