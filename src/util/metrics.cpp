#include "util/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/memo_cache.hpp"

namespace clrearly::util {

namespace detail {

std::size_t metric_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

namespace {

std::uint64_t double_bits(double d) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

/// CAS-accumulate `delta` onto the double stored in `bits`.
void atomic_double_add(std::atomic<std::uint64_t>& bits,
                       double delta) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      observed, double_bits(bits_double(observed) + delta),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void atomic_double_min(std::atomic<std::uint64_t>& bits, double x) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  while (x < bits_double(observed) &&
         !bits.compare_exchange_weak(observed, double_bits(x),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<std::uint64_t>& bits, double x) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  while (x > bits_double(observed) &&
         !bits.compare_exchange_weak(observed, double_bits(x),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

/// The registry proper. Node-based maps keep metric addresses stable;
/// leaked (like the cache registry) so metrics registered from static-
/// storage objects stay usable during process exit.
struct MetricsRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace

std::uint64_t Gauge::to_bits(double d) noexcept { return double_bits(d); }
double Gauge::from_bits(std::uint64_t bits) noexcept {
  return bits_double(bits);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_bits_(double_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_bits(-std::numeric_limits<double>::infinity())) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].value.fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(sum_bits_, x);
  atomic_double_min(min_bits_, x);
  atomic_double_max(max_bits_, x);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.buckets.push_back(bucket.value.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = bits_double(sum_bits_.load(std::memory_order_relaxed));
  if (snap.count > 0) {
    snap.min = bits_double(min_bits_.load(std::memory_order_relaxed));
    snap.max = bits_double(max_bits_.load(std::memory_order_relaxed));
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.value.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(double_bits(0.0), std::memory_order_relaxed);
  min_bits_.store(double_bits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(double_bits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

Counter& metric_counter(const std::string& name) {
  MetricsRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto& slot = reg.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& metric_gauge(const std::string& name) {
  MetricsRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto& slot = reg.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& metric_histogram(const std::string& name,
                            std::vector<double> bounds) {
  MetricsRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto& slot = reg.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void observe_seconds(const std::string& name, double seconds) {
  metric_histogram(name, {0.001, 0.01, 0.1, 1.0, 10.0, 100.0})
      .observe(seconds);
}

JsonObject metrics_snapshot() {
  // Take stable pointers under the lock, read values outside it — metric
  // reads are lock-free and the objects are never destroyed.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& [name, counter] : reg.counters) {
      counters.emplace_back(name, counter.get());
    }
    for (const auto& [name, gauge] : reg.gauges) {
      gauges.emplace_back(name, gauge.get());
    }
    for (const auto& [name, histogram] : reg.histograms) {
      histograms.emplace_back(name, histogram.get());
    }
  }

  JsonObject counters_json;
  for (const auto& [name, counter] : counters) {
    counters_json[name] = static_cast<std::size_t>(counter->value());
  }
  JsonObject gauges_json;
  for (const auto& [name, gauge] : gauges) {
    gauges_json[name] = gauge->value();
  }
  JsonObject histograms_json;
  for (const auto& [name, histogram] : histograms) {
    const HistogramSnapshot snap = histogram->snapshot();
    JsonObject h;
    h["count"] = static_cast<std::size_t>(snap.count);
    h["sum"] = snap.sum;
    h["min"] = snap.min;
    h["max"] = snap.max;
    JsonArray buckets;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      JsonObject bucket;
      if (i < snap.bounds.size()) {
        bucket["le"] = snap.bounds[i];
      } else {
        bucket["overflow"] = true;
      }
      bucket["count"] = static_cast<std::size_t>(snap.buckets[i]);
      buckets.push_back(JsonValue(std::move(bucket)));
    }
    h["buckets"] = JsonValue(std::move(buckets));
    histograms_json[name] = JsonValue(std::move(h));
  }

  // Lifetime view, not just live caches: the exit snapshot must still see
  // the totals of caches destroyed before the hook fires (per-problem
  // fitness caches, the process-wide chain cache under LIFO teardown).
  JsonObject caches_json;
  for (const auto& [name, stats] : lifetime_cache_stats()) {
    JsonObject cache;
    cache["hits"] = static_cast<std::size_t>(stats.hits);
    cache["misses"] = static_cast<std::size_t>(stats.misses);
    cache["evictions"] = static_cast<std::size_t>(stats.evictions);
    cache["entries"] = stats.entries;
    cache["capacity"] = stats.capacity;
    cache["hit_rate"] = stats.hit_rate();
    caches_json[name] = JsonValue(std::move(cache));
  }

  JsonObject snapshot;
  snapshot["counters"] = JsonValue(std::move(counters_json));
  snapshot["gauges"] = JsonValue(std::move(gauges_json));
  snapshot["histograms"] = JsonValue(std::move(histograms_json));
  snapshot["caches"] = JsonValue(std::move(caches_json));
  return snapshot;
}

void reset_metrics() {
  MetricsRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, counter] : reg.counters) counter->reset();
  for (auto& [name, gauge] : reg.gauges) gauge->reset();
  for (auto& [name, histogram] : reg.histograms) histogram->reset();
}

}  // namespace clrearly::util
