// Small statistics helpers shared by the benches and EXPERIMENTS reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace clrearly::util {

/// Streaming mean / variance / extrema accumulator (Welford).
class RunningStats {
 public:
  /// Throws std::domain_error on a NaN sample (which would silently poison
  /// every derived statistic).
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty sample.
double mean(const std::vector<double>& xs) noexcept;

/// Geometric mean; requires strictly positive entries, 0 for empty input.
double geometric_mean(const std::vector<double>& xs);

/// Median (interpolated for even sizes); copies and sorts internally.
double median(std::vector<double> xs);

/// q-th quantile in [0,1] with linear interpolation; copies and sorts.
/// Throws std::domain_error when the sample contains a NaN (which breaks
/// the sort's ordering and would put the NaN at an arbitrary position).
double quantile(std::vector<double> xs, double q);

/// Percentage change from `base` to `value`: 100 * (value - base) / base.
/// Returns 0 when base == 0 and value == 0; +/-inf preserved otherwise.
double percent_change(double base, double value) noexcept;

/// Closed interval [lo, hi] — the reporting unit of the confidence-interval
/// helpers below.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double half_width() const noexcept { return 0.5 * (hi - lo); }
  bool contains(double x) const noexcept { return x >= lo && x <= hi; }

  bool operator==(const Interval&) const noexcept = default;
};

/// 95% normal-approximation confidence interval for a mean estimated from
/// `n` samples with the given *sample* standard deviation:
///   mean +/- 1.96 * stddev / sqrt(n).
/// Degenerates to [mean, mean] for n < 2 or a non-positive stddev (the
/// caller has no spread information either way).
Interval confidence_interval_95(double mean, double stddev,
                                std::size_t n) noexcept;

/// Wilson score 95% interval for a binomial proportion with `successes`
/// successes out of `n` trials. Unlike the Wald interval it never collapses
/// to a zero-width interval at p = 0 or 1, which is exactly the regime the
/// simulator's rare-error estimates live in. `successes` may be fractional
/// (criticality-weighted outcomes) but must lie in [0, n]. Returns [0, 1]
/// for n == 0; throws std::invalid_argument for negative or NaN successes
/// and for successes > n (an accounting bug upstream, not a proportion).
Interval wilson_interval_95(double successes, std::size_t n);

}  // namespace clrearly::util
