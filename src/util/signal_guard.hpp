// Process termination-signal guard (SIGINT/SIGTERM).
//
// Two cooperating modes:
//   kFlushAndExit — batch CLI runs: flush observability files (metrics
//     snapshot, trace) best-effort, restore the default disposition and
//     re-raise, so `clrearly dse --metrics-out m.json` interrupted with ^C
//     still leaves m.json behind and the shell still sees death-by-signal.
//   kNotifyOnly — long-lived daemons (clrearly serve): just latch the signal
//     into an atomic flag; the owner polls termination_requested() and runs
//     its own orderly drain (finish running jobs, write spool, flush, exit).
//
// install_signal_handlers is idempotent and re-installable; the last call
// wins, so a daemon started through parse_standard_args (which installs
// kFlushAndExit when observability outputs are configured) simply installs
// kNotifyOnly on top.
#pragma once

namespace clrearly::util {

enum class SignalMode {
  kFlushAndExit,  ///< flush observability files, then die by the signal
  kNotifyOnly,    ///< latch the signal; caller polls termination_requested()
};

/// Install handlers for SIGINT and SIGTERM. Safe to call repeatedly.
void install_signal_handlers(SignalMode mode);

/// True once a handled termination signal has been received.
bool termination_requested() noexcept;

/// The signal number latched by the handler (0 if none yet).
int termination_signal() noexcept;

/// Clear the latch (tests; also lets a daemon treat a second ^C as "now").
void reset_termination_flag() noexcept;

}  // namespace clrearly::util
