#include "util/manifest.hpp"

#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/memo_cache.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::util {

JsonObject RunManifest::to_json() const {
  JsonObject out;
  out["program"] = program;
  JsonArray args_json;
  args_json.reserve(args.size());
  for (const std::string& arg : args) args_json.push_back(JsonValue(arg));
  out["args"] = JsonValue(std::move(args_json));
  out["seed"] = seed;
  out["threads"] = threads;
  out["cache_capacity"] = cache_capacity;
  out["build_type"] = build_type;
  out["log_level"] = log_level;
  return out;
}

RunManifest RunManifest::from_json(const JsonValue& value) {
  RunManifest manifest;
  manifest.program = value.at("program").as_string();
  for (const JsonValue& arg : value.at("args").as_array()) {
    manifest.args.push_back(arg.as_string());
  }
  manifest.seed = value.at("seed").as_string();
  manifest.threads =
      static_cast<std::size_t>(value.at("threads").as_number());
  manifest.cache_capacity =
      static_cast<std::size_t>(value.at("cache_capacity").as_number());
  manifest.build_type = value.at("build_type").as_string();
  manifest.log_level = value.at("log_level").as_string();
  return manifest;
}

RunManifest capture_run_manifest(const ArgParser& parser, int argc,
                                 char** argv) {
  RunManifest manifest;
  manifest.program = argc > 0 && argv[0] != nullptr ? argv[0]
                                                    : parser.program();
  for (int i = 1; i < argc; ++i) manifest.args.emplace_back(argv[i]);
  if (const std::string* seed = parser.try_get("seed")) {
    manifest.seed = *seed;
  }
  manifest.threads = effective_thread_count();
  manifest.cache_capacity = cache_capacity();
#ifdef NDEBUG
  manifest.build_type = "Release";
#else
  manifest.build_type = "Debug";
#endif
  manifest.log_level = std::string(to_string(log_level()));
  return manifest;
}

}  // namespace clrearly::util
