#include "util/memo_cache.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>

namespace clrearly::util {

namespace {

struct Registry {
  std::mutex mutex;
  std::uint64_t next_token = 1;
  std::map<std::uint64_t, std::pair<std::string, std::function<CacheStats()>>>
      caches;
  // Final counters of destroyed named caches, summed per name — the
  // lifetime_cache_stats() tail. Tokens remember their name so unregister
  // can fold without re-threading it through the destructor.
  std::map<std::string, CacheStats> retired;
};

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: caches with
  return *instance;  // static storage duration may unregister during exit
}

struct CapacityState {
  std::mutex mutex;
  std::optional<std::size_t> override_capacity;
};

CapacityState& capacity_state() {
  static CapacityState state;
  return state;
}

std::size_t env_capacity() {
  return detail::parse_cache_env(std::getenv("CLREARLY_CACHE"));
}

}  // namespace

namespace detail {

std::size_t parse_cache_env(const char* text) noexcept {
  // from_chars is deliberately strict: no leading whitespace, no sign
  // (strtoull would wrap "-1" to ULLONG_MAX instead of failing), no
  // trailing garbage, no locale dependence.
  if (text == nullptr || *text == '\0') return kDefaultCacheCapacity;
  std::size_t value = 0;
  const char* last = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, last, value);
  if (ec != std::errc{} || ptr != last) return kDefaultCacheCapacity;
  return value;
}

std::uint64_t register_cache(std::string name,
                             std::function<CacheStats()> stats) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const std::uint64_t token = reg.next_token++;
  reg.caches.emplace(token,
                     std::make_pair(std::move(name), std::move(stats)));
  return token;
}

void unregister_cache(std::uint64_t token, CacheStats final_stats) {
  // The storage dies with the cache; only the event counters outlive it.
  final_stats.entries = 0;
  final_stats.capacity = 0;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.caches.find(token);
  if (it == reg.caches.end()) return;
  reg.retired[it->second.first] += final_stats;
  reg.caches.erase(it);
}

}  // namespace detail

namespace {

std::vector<std::pair<std::string, CacheStats>> collect_cache_stats(
    bool include_retired) {
  // Snapshot the providers first: a stats() callback may take its cache's
  // shard locks, which must not nest inside the registry lock.
  std::vector<std::pair<std::string, std::function<CacheStats()>>> providers;
  std::map<std::string, CacheStats> by_name;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    providers.reserve(reg.caches.size());
    for (const auto& [token, entry] : reg.caches) providers.push_back(entry);
    if (include_retired) by_name = reg.retired;
  }
  for (const auto& [name, stats] : providers) by_name[name] += stats();
  return {by_name.begin(), by_name.end()};
}

}  // namespace

std::vector<std::pair<std::string, CacheStats>> aggregate_cache_stats() {
  return collect_cache_stats(/*include_retired=*/false);
}

std::vector<std::pair<std::string, CacheStats>> lifetime_cache_stats() {
  return collect_cache_stats(/*include_retired=*/true);
}

void set_cache_capacity(std::size_t capacity) {
  CapacityState& state = capacity_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.override_capacity = capacity;
}

void reset_cache_capacity() {
  CapacityState& state = capacity_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.override_capacity.reset();
}

std::size_t cache_capacity() {
  CapacityState& state = capacity_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.override_capacity.has_value() ? *state.override_capacity
                                             : env_capacity();
}

}  // namespace clrearly::util
