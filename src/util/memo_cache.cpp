#include "util/memo_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>

namespace clrearly::util {

namespace {

struct Registry {
  std::mutex mutex;
  std::uint64_t next_token = 1;
  std::map<std::uint64_t, std::pair<std::string, std::function<CacheStats()>>>
      caches;
};

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: caches with
  return *instance;  // static storage duration may unregister during exit
}

struct CapacityState {
  std::mutex mutex;
  std::optional<std::size_t> override_capacity;
};

CapacityState& capacity_state() {
  static CapacityState state;
  return state;
}

std::size_t env_capacity() {
  const char* env = std::getenv("CLREARLY_CACHE");
  if (env == nullptr || *env == '\0') return kDefaultCacheCapacity;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') return kDefaultCacheCapacity;
  return static_cast<std::size_t>(value);
}

}  // namespace

namespace detail {

std::uint64_t register_cache(std::string name,
                             std::function<CacheStats()> stats) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const std::uint64_t token = reg.next_token++;
  reg.caches.emplace(token,
                     std::make_pair(std::move(name), std::move(stats)));
  return token;
}

void unregister_cache(std::uint64_t token) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.caches.erase(token);
}

}  // namespace detail

std::vector<std::pair<std::string, CacheStats>> aggregate_cache_stats() {
  // Snapshot the providers first: a stats() callback may take its cache's
  // shard locks, which must not nest inside the registry lock.
  std::vector<std::pair<std::string, std::function<CacheStats()>>> providers;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    providers.reserve(reg.caches.size());
    for (const auto& [token, entry] : reg.caches) providers.push_back(entry);
  }
  std::map<std::string, CacheStats> by_name;
  for (const auto& [name, stats] : providers) by_name[name] += stats();
  return {by_name.begin(), by_name.end()};
}

void set_cache_capacity(std::size_t capacity) {
  CapacityState& state = capacity_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.override_capacity = capacity;
}

void reset_cache_capacity() {
  CapacityState& state = capacity_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.override_capacity.reset();
}

std::size_t cache_capacity() {
  CapacityState& state = capacity_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.override_capacity.has_value() ? *state.override_capacity
                                             : env_capacity();
}

}  // namespace clrearly::util
