#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace clrearly::util {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_cell(double v) { return format_compact(v); }

void TextTable::print(std::ostream& os) const {
  std::size_t n_cols = header_.size();
  for (const auto& r : rows_) n_cols = std::max(n_cols, r.size());

  std::vector<std::size_t> widths(n_cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < n_cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < n_cols) os << "  ";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < n_cols; ++i) rule += widths[i] + (i ? 2 : 0);
    os << std::string(rule, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace clrearly::util
