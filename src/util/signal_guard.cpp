#include "util/signal_guard.hpp"

#include <atomic>
#include <csignal>
#include <exception>

#include "util/observability.hpp"

namespace clrearly::util {

namespace {

std::atomic<int> g_signal{0};
std::atomic<SignalMode> g_mode{SignalMode::kNotifyOnly};

// Caveat, documented rather than hidden: write_observability_files() is not
// async-signal-safe (it allocates and does buffered I/O). For the batch-CLI
// interrupt path this is the standard pragmatic trade — the process is
// single-purposed, about to die anyway, and the alternative is always losing
// the metrics/trace the user explicitly asked for. Daemons must use
// kNotifyOnly, where the handler only touches atomics.
void handle_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  if (g_mode.load(std::memory_order_relaxed) == SignalMode::kNotifyOnly) {
    return;
  }
  try {
    write_observability_files();
  } catch (...) {
    // Best effort only; still die by the signal below.
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_signal_handlers(SignalMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

bool termination_requested() noexcept {
  return g_signal.load(std::memory_order_relaxed) != 0;
}

int termination_signal() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

void reset_termination_flag() noexcept {
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace clrearly::util
