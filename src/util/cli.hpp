// Tiny command-line argument parser for the clrearly tools: long options
// (--key value or --key=value), boolean flags, typed accessors with
// defaults, and generated help text. Deliberately minimal — no subcommand
// support here; tools dispatch on argv[1] themselves.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/log.hpp"

namespace clrearly::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare a boolean flag (--name). Returns *this for chaining.
  ArgParser& flag(const std::string& name, const std::string& help);

  /// Declare a valued option (--name <value>) with a default.
  ArgParser& option(const std::string& name, const std::string& help,
                    const std::string& default_value);

  /// Parse `args` (argv[1:]; the program name must not be included).
  /// Throws std::invalid_argument on unknown options, missing values or a
  /// flag given a value. "--" ends option parsing; the rest are positionals.
  void parse(const std::vector<std::string>& args);

  /// True when a declared flag was present (or an option explicitly set).
  bool has(const std::string& name) const;

  /// Value of an option (explicit or default); throws for unknown names.
  const std::string& get(const std::string& name) const;
  double get_number(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;

  /// Like get(), but returns nullptr for undeclared names instead of
  /// throwing — lets generic consumers (the run manifest) probe for
  /// driver-specific options such as --seed.
  const std::string* try_get(const std::string& name) const;

  const std::string& program() const noexcept { return program_; }

  /// Arguments that were not options.
  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Usage text listing every declared flag/option with its help string.
  std::string help() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string default_value;
  };

  std::string program_;
  std::string description_;
  std::vector<std::string> declaration_order_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

/// Declare the shared --threads option (the one flag every clrearly driver
/// exposes): worker threads for the parallel evaluation engine, 0 = hardware
/// concurrency. An explicit --threads overrides CLREARLY_THREADS.
ArgParser& add_threads_option(ArgParser& parser);

/// Declare the shared --log-level option ({debug,info,warn,error,off}).
/// `default_level` is the driver's choice of verbosity when the flag is
/// absent (benches default to warn so their stdout stays machine-readable).
ArgParser& add_log_level_option(ArgParser& parser,
                                LogLevel default_level = LogLevel::Info);

/// Declare the shared memoization-cache options: --cache-size <entries>
/// (capacity of the chain-solve and fitness caches; 0 disables) and
/// --no-cache (shorthand for --cache-size 0).
ArgParser& add_cache_options(ArgParser& parser);

/// Apply the declared cache options via set_cache_capacity(): --no-cache
/// wins over --cache-size; when neither was given the global default
/// (CLREARLY_CACHE env or kDefaultCacheCapacity) stays in effect.
void apply_cache_options(const ArgParser& parser);

/// Declare the shared island-model options (docs/SCALING.md): --islands N
/// (independent NSGA-II sub-populations; 1 = plain single-population run),
/// --migration-interval G (generations between ring migrations) and
/// --migration-size M (emigrants per island per migration). Consumed via
/// moea::island_params_from_args, which tolerates parsers that never
/// declared them.
ArgParser& add_island_options(ArgParser& parser);

/// Standard driver prologue: declares --help, --threads, --log-level,
/// --cache-size/--no-cache and the island options
/// (--islands/--migration-interval/--migration-size) on `parser` (after any
/// driver-specific declarations), parses argv[1:], and
///  * on --help prints the generated usage text and returns false (drivers
///    then exit 0),
///  * on a parse error prints the error + usage to stderr and exits with 2,
///  * otherwise applies --threads via set_thread_count(), the cache options
///    via set_cache_capacity(), and the log level (an explicit --log-level
///    beats `default_log_level`, which beats whatever the process had set
///    before), then returns true.
bool parse_standard_args(ArgParser& parser, int argc, char** argv,
                         LogLevel default_log_level = LogLevel::Info);

}  // namespace clrearly::util
