// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (TGFF-style graph generation,
// implementation characterization, GA operators) takes an explicit Rng so
// experiments are reproducible bit-for-bit from a single seed. The engine is
// xoshiro256** (Blackman & Vigna) — tiny state, excellent statistical quality
// and trivially fork-able for independent sub-streams.
#pragma once

#include <cstdint>
#include <vector>

namespace clrearly::util {

class Rng {
 public:
  /// Seeded via SplitMix64 expansion of `seed` (an all-zero state is
  /// impossible by construction).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n); requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller.
  double normal() noexcept;

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(normal(mu, sigma)) — used for execution-time spreads.
  double lognormal(double mu, double sigma) noexcept;

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Draw an index according to (unnormalized, non-negative) weights.
  /// Falls back to uniform choice when all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Independent child stream, deterministically derived from this one.
  Rng split() noexcept;

  /// UTF state equality — used by tests to check split() independence setup.
  bool operator==(const Rng&) const noexcept = default;

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace clrearly::util
