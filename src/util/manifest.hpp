// Per-run manifest: the configuration a run actually executed with — the
// program, its argv, the seed (when the driver declares a --seed option),
// the effective thread count, the cache capacity, the build type and the
// log level. Written alongside results ("manifest" in the --metrics-out
// snapshot, "otherData" in the --trace-out file) so a metrics file or a
// trace is self-describing: no cross-referencing shell history to learn
// what produced it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace clrearly::util {

class ArgParser;

struct RunManifest {
  std::string program;
  std::vector<std::string> args;  ///< argv[1:] verbatim
  std::string seed;          ///< --seed text when declared; "" otherwise
  std::size_t threads = 0;   ///< effective_thread_count() at capture
  std::size_t cache_capacity = 0;  ///< cache_capacity() at capture
  std::string build_type;    ///< "Release" (NDEBUG) or "Debug"
  std::string log_level;     ///< canonical name, see util/log.hpp

  bool operator==(const RunManifest&) const = default;

  JsonObject to_json() const;
  /// Inverse of to_json(); throws std::runtime_error on missing/mistyped
  /// fields (via the JsonValue accessors).
  static RunManifest from_json(const JsonValue& value);
};

/// Capture the manifest for the current process: program/args from argv,
/// seed probed from the parser's --seed option (if the driver declared
/// one), the rest from the process-wide configuration — call it after
/// parse_standard_args has applied --threads/--cache-size/--log-level.
RunManifest capture_run_manifest(const ArgParser& parser, int argc,
                                 char** argv);

}  // namespace clrearly::util
