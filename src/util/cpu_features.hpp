// Runtime CPU-feature detection and SIMD dispatch policy for the batched
// chain kernel.
//
// The batched solver ships three code paths — portable C++ (any ISA), AVX2
// (4 doubles per vector) and AVX-512F (8 doubles per vector) — compiled into
// separate translation units with the matching -m flags. Which one runs is a
// *runtime* decision: default builds stay portable (no -march leakage into
// generic TUs) and a binary built on one machine runs on another. All paths
// produce bit-identical results per chain (see chain_batch_kernel.hpp), so
// dispatch can only change throughput, never values.
//
// The CLREARLY_SIMD environment variable ("scalar" | "avx2" | "avx512" |
// "auto", default auto) caps the level below what the CPU supports — the CI
// hook for exercising every dispatch path on one machine. Requests above
// hardware support fall back to the best available level.
#pragma once

#include <cstddef>
#include <string>

namespace clrearly::util {

/// SIMD tier of the batched kernel, ordered by capability.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* to_string(SimdLevel level) noexcept;

/// Parse "scalar" / "avx2" / "avx512"; returns false on anything else.
bool parse_simd_level(const std::string& text, SimdLevel& out) noexcept;

/// Best level this CPU (and this build) can execute. Detected once via
/// cpuid on x86-64; always kScalar elsewhere or when the arch-specific TUs
/// were not compiled.
SimdLevel detected_simd_level() noexcept;

/// The level the batched kernel dispatches to:
///   min(detected_simd_level(), CLREARLY_SIMD cap, forced override).
/// The environment variable is read once, on first call.
SimdLevel active_simd_level() noexcept;

/// Test/bench hook: pin active_simd_level() to min(level, detected).
/// Call reset_simd_level() to return to environment-driven selection.
/// Reconfigure between runs, not while batch solves are in flight.
void force_simd_level(SimdLevel level) noexcept;
void reset_simd_level() noexcept;

namespace detail {
/// Parse a CLREARLY_SIMD-style value; "auto", empty or null mean "no cap"
/// (returns kAvx512); unknown text is ignored the same way so a typo can
/// never change results, only a log line. Exposed for tests.
SimdLevel parse_simd_env(const char* text) noexcept;
}  // namespace detail

}  // namespace clrearly::util
