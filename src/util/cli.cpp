#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/memo_cache.hpp"
#include "util/observability.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::flag(const std::string& name, const std::string& help) {
  if (!specs_.emplace(name, Spec{help, /*is_flag=*/true, ""}).second) {
    throw std::invalid_argument("ArgParser: duplicate declaration of " + name);
  }
  declaration_order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::option(const std::string& name, const std::string& help,
                             const std::string& default_value) {
  if (!specs_.emplace(name, Spec{help, /*is_flag=*/false, default_value})
           .second) {
    throw std::invalid_argument("ArgParser: duplicate declaration of " + name);
  }
  declaration_order_.push_back(name);
  return *this;
}

void ArgParser::parse(const std::vector<std::string>& args) {
  values_.clear();
  positionals_.clear();
  bool options_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (options_done || arg.size() < 2 || arg.compare(0, 2, "--") != 0) {
      positionals_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw std::invalid_argument("unknown option --" + name);
    }
    if (it->second.is_flag) {
      if (has_inline_value) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      values_[name] = "true";
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("option --" + name + " needs a value");
      }
      value = args[++i];
    }
    values_[name] = value;
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.contains(name);
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto value = values_.find(name);
  if (value != values_.end()) return value->second;
  const auto spec = specs_.find(name);
  if (spec == specs_.end() || spec->second.is_flag) {
    throw std::invalid_argument("ArgParser::get: unknown option " + name);
  }
  return spec->second.default_value;
}

const std::string* ArgParser::try_get(const std::string& name) const {
  const auto value = values_.find(name);
  if (value != values_.end()) return &value->second;
  const auto spec = specs_.find(name);
  if (spec == specs_.end() || spec->second.is_flag) return nullptr;
  return &spec->second.default_value;
}

double ArgParser::get_number(const std::string& name) const {
  // std::from_chars, not std::stod: stod honors LC_NUMERIC (under a
  // comma-decimal locale "1.5" stops parsing at the dot), and from_chars
  // rejects trailing garbage and leading whitespace without a second
  // `consumed` check.
  const std::string& text = get(name);
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    throw std::invalid_argument("option --" + name + ": '" + text +
                                "' is not a number");
  }
  return value;
}

std::uint64_t ArgParser::get_uint(const std::string& name) const {
  const double value = get_number(name);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::uint64_t>(value))) {
    throw std::invalid_argument("option --" + name +
                                " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

std::string ArgParser::help() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\noptions:\n";
  for (const std::string& name : declaration_order_) {
    const Spec& spec = specs_.at(name);
    oss << "  --" << name;
    if (!spec.is_flag) {
      oss << " <value>";
      if (!spec.default_value.empty()) {
        oss << " (default: " << spec.default_value << ")";
      }
    }
    oss << "\n      " << spec.help << "\n";
  }
  return oss.str();
}

ArgParser& add_threads_option(ArgParser& parser) {
  return parser.option(
      "threads",
      "worker threads for parallel evaluation (0 = hardware concurrency; "
      "overrides CLREARLY_THREADS)",
      "0");
}

ArgParser& add_log_level_option(ArgParser& parser, LogLevel default_level) {
  return parser.option("log-level",
                       "minimum log level: debug|info|warn|error|off",
                       std::string(to_string(default_level)));
}

ArgParser& add_cache_options(ArgParser& parser) {
  parser.option("cache-size",
                "memoization-cache capacity in entries for the chain-solve "
                "and fitness caches (0 disables; overrides CLREARLY_CACHE)",
                "");
  return parser.flag("no-cache",
                     "disable the memoization caches (same as --cache-size 0)");
}

ArgParser& add_island_options(ArgParser& parser) {
  parser.option("islands",
                "island-model NSGA-II sub-populations sharing the GA "
                "population (1 = single population; docs/SCALING.md)",
                "1");
  parser.option("migration-interval",
                "generations between ring migrations of non-dominated "
                "individuals between islands",
                "10");
  return parser.option(
      "migration-size",
      "individuals each island emigrates per migration (0 disables "
      "migration)",
      "4");
}

void apply_cache_options(const ArgParser& parser) {
  if (parser.has("no-cache")) {
    set_cache_capacity(0);
  } else if (parser.has("cache-size")) {
    set_cache_capacity(static_cast<std::size_t>(parser.get_uint("cache-size")));
  }
}

bool parse_standard_args(ArgParser& parser, int argc, char** argv,
                         LogLevel default_log_level) {
  parser.flag("help", "print this help and exit");
  add_threads_option(parser);
  add_log_level_option(parser, default_log_level);
  add_cache_options(parser);
  add_island_options(parser);
  add_observability_options(parser);
  std::vector<std::string> args;
  args.reserve(argc > 1 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  try {
    parser.parse(args);
    if (!parser.has("help")) {
      if (parser.has("threads")) {
        set_thread_count(static_cast<std::size_t>(parser.get_uint("threads")));
      }
      apply_cache_options(parser);
      // Unconditional: the declared default carries the driver's verbosity
      // choice, so no driver needs an ad-hoc set_log_level() call anymore.
      set_log_level(parse_log_level(parser.get("log-level")));
      // After threads/cache/log level, so the manifest records the
      // effective values.
      apply_observability_options(parser, argc, argv);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n\n%s", error.what(), parser.help().c_str());
    std::exit(2);
  }
  if (parser.has("help")) {
    std::fputs(parser.help().c_str(), stdout);
    return false;
  }
  return true;
}

}  // namespace clrearly::util
