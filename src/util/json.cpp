#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace clrearly::util {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error(std::string("JsonValue: not a ") + expected);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<JsonObject>(value_);
}

JsonArray& JsonValue::as_array() {
  if (!is_array()) type_error("array");
  return std::get<JsonArray>(value_);
}

JsonObject& JsonValue::as_object() {
  if (!is_object()) type_error("object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("JsonValue: missing key '" + key + "'");
  }
  return it->second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const JsonObject& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr ? member->as_number() : fallback;
}

// ---------------------------------------------------------------- writer

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    throw std::runtime_error("json_serialize: non-finite number");
  }
  // Integers print without exponent/decimals for readability.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d,
                                   std::chars_format::fixed, 0);
    (void)ec;
    out.append(buf, static_cast<std::size_t>(ptr - buf));
    return;
  }
  // std::to_chars, not snprintf("%.17g"): printf honors LC_NUMERIC and a
  // comma-decimal locale would emit "1,5" — invalid JSON.
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d,
                                 std::chars_format::general, 17);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void write_value(std::string& out, const JsonValue& v, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    write_number(out, v.as_number());
  } else if (v.is_string()) {
    write_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const JsonArray& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad_in;
      write_value(out, arr[i], indent + 1);
      if (i + 1 < arr.size()) out += ',';
      out += '\n';
    }
    out += pad + "]";
  } else {
    const JsonObject& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    std::size_t i = 0;
    for (const auto& [key, member] : obj) {
      out += pad_in;
      write_escaped(out, key);
      out += ": ";
      write_value(out, member, indent + 1);
      if (++i < obj.size()) out += ',';
      out += '\n';
    }
    out += pad + "}";
  }
}

}  // namespace

std::string json_serialize(const JsonValue& value) {
  std::string out;
  write_value(out, value, 0);
  out += '\n';
  return out;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json_parse: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue(nullptr);
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        break;
      }
      fail("expected ',' or '}'");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        break;
      }
      fail("expected ',' or ']'");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape");
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    // BMP only (no surrogate pairing) — sufficient for model files.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    // std::from_chars, not strtod: strtod honors LC_NUMERIC, so under a
    // comma-decimal locale it would stop at the '.' of a valid JSON
    // number and reject the document.
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      pos_ = start;
      fail("bad number");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace clrearly::util
