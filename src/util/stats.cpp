#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace clrearly::util {

void RunningStats::add(double x) {
  if (std::isnan(x)) {
    // A NaN would silently poison mean/m2 and break the min/max ordering
    // below; fail loudly instead of producing a plausible-looking table.
    throw std::domain_error("RunningStats::add: NaN sample");
  }
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) {
      throw std::domain_error("geometric_mean: non-positive sample");
    }
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  for (double x : xs) {
    // NaN breaks the strict-weak-ordering sort below, so its position —
    // and every interpolated quantile — would be arbitrary.
    if (std::isnan(x)) throw std::domain_error("quantile: NaN sample");
  }
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Interval confidence_interval_95(double mean, double stddev,
                                std::size_t n) noexcept {
  constexpr double kZ95 = 1.959963984540054;
  if (n < 2 || stddev <= 0.0) return Interval{mean, mean};
  const double half = kZ95 * stddev / std::sqrt(static_cast<double>(n));
  return Interval{mean - half, mean + half};
}

Interval wilson_interval_95(double successes, std::size_t n) {
  if (!(successes >= 0.0)) {  // negative or NaN
    throw std::invalid_argument("wilson_interval_95: negative successes");
  }
  if (n == 0) return Interval{0.0, 1.0};
  const double nn = static_cast<double>(n);
  if (successes > nn) {
    // More successes than trials is an accounting bug upstream, not a
    // proportion to clamp — rejecting it matches the negative path.
    throw std::invalid_argument(
        "wilson_interval_95: successes exceed trials");
  }
  constexpr double kZ95 = 1.959963984540054;
  const double p = successes / nn;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / nn;
  const double center = p + z2 / (2.0 * nn);
  const double spread =
      kZ95 * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  return Interval{std::max(0.0, (center - spread) / denom),
                  std::min(1.0, (center + spread) / denom)};
}

double percent_change(double base, double value) noexcept {
  if (base == 0.0) {
    if (value == 0.0) return 0.0;
    return value > 0.0 ? std::numeric_limits<double>::infinity()
                       : -std::numeric_limits<double>::infinity();
  }
  return 100.0 * (value - base) / base;
}

}  // namespace clrearly::util
