#include "app/characterizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "app/tgff.hpp"

namespace clrearly::app {

void CharacterizerOptions::validate() const {
  if (exec_time_median_us <= 0.0 || exec_time_sigma < 0.0) {
    throw std::invalid_argument("CharacterizerOptions: bad exec-time model");
  }
  if (proc_power_min_w <= 0.0 || proc_power_max_w < proc_power_min_w) {
    throw std::invalid_argument("CharacterizerOptions: bad power range");
  }
  if (fabric_speedup_min < 1.0 || fabric_speedup_max < fabric_speedup_min) {
    throw std::invalid_argument("CharacterizerOptions: bad speedup range");
  }
  if (fabric_power_factor_min <= 0.0 ||
      fabric_power_factor_max < fabric_power_factor_min) {
    throw std::invalid_argument("CharacterizerOptions: bad power factor range");
  }
  if (fabric_availability < 0.0 || fabric_availability > 1.0) {
    throw std::invalid_argument(
        "CharacterizerOptions: fabric_availability outside [0,1]");
  }
  if (software_variants == 0) {
    throw std::invalid_argument(
        "CharacterizerOptions: need at least one software variant");
  }
}

std::vector<std::vector<reliability::BaseImpl>> characterize_types(
    std::size_t num_types, const CharacterizerOptions& options,
    util::Rng& rng) {
  options.validate();
  std::vector<std::vector<reliability::BaseImpl>> impls(num_types);

  for (std::size_t type = 0; type < num_types; ++type) {
    const double base_time = rng.lognormal(
        std::log(options.exec_time_median_us), options.exec_time_sigma);
    const double base_power =
        rng.uniform(options.proc_power_min_w, options.proc_power_max_w);
    // Kernel-specific reliability character (live-state fraction and
    // checkpoint/result-check cost) — shared by all variants of the type.
    const double vulnerability = rng.uniform(0.8, 1.25);
    const double ssw_cost = rng.uniform(0.7, 1.4);
    const double footprint = rng.uniform(16.0, 160.0);  // code + buffers, KB

    for (std::size_t v = 0; v < options.software_variants; ++v) {
      // Later variants trade time for power (e.g. unrolled/vectorized code):
      // ~15% faster per step, ~12% more power.
      const double speed = std::pow(0.85, static_cast<double>(v));
      const double power = std::pow(1.12, static_cast<double>(v));
      reliability::BaseImpl sw;
      sw.name = "type" + std::to_string(type) + "-sw" + std::to_string(v);
      sw.target = platform::PeClass::kEmbeddedProcessor;
      sw.base_exec_time_us = base_time * speed;
      sw.base_power_w = base_power * power;
      sw.vulnerability = vulnerability;
      sw.ssw_overhead_factor = ssw_cost;
      sw.footprint_kb = footprint;
      impls[type].push_back(sw);
    }

    if (rng.bernoulli(options.fabric_availability)) {
      const double speedup =
          rng.uniform(options.fabric_speedup_min, options.fabric_speedup_max);
      const double pf = rng.uniform(options.fabric_power_factor_min,
                                    options.fabric_power_factor_max);
      reliability::BaseImpl hw;
      hw.name = "type" + std::to_string(type) + "-hls";
      hw.target = platform::PeClass::kReconfigurableRegion;
      hw.base_exec_time_us = base_time / speedup;
      hw.base_power_w = base_power * pf;
      // SRAM configuration memory raises exposure; accelerator state
      // checkpoints need a readback.
      hw.vulnerability = vulnerability * 1.2;
      hw.ssw_overhead_factor = ssw_cost * 1.15;
      hw.footprint_kb = footprint * 0.6;  // streaming accelerators buffer less
      impls[type].push_back(hw);
    }
  }
  return impls;
}

Application make_synthetic_application(std::size_t num_tasks,
                                       std::size_t num_types,
                                       std::uint64_t seed) {
  util::Rng rng(seed);

  TgffOptions graph_options;
  graph_options.num_tasks = num_tasks;
  graph_options.num_types = std::min(num_types, num_tasks);

  Application syn;
  syn.name = "synthetic-" + std::to_string(num_tasks) + "t";
  syn.graph = generate_tgff_graph(graph_options, rng);

  CharacterizerOptions impl_options;
  syn.impls =
      characterize_types(syn.graph.num_types(), impl_options, rng);

  double total_median = 0.0;
  for (const auto& task : syn.graph.tasks()) {
    total_median += syn.impls[task.type].front().base_exec_time_us;
  }
  syn.period_us = std::max(1.0e3, 2.0 * total_median);

  syn.validate();
  return syn;
}

}  // namespace clrearly::app
