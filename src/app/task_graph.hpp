// Application model (Section III-B): a periodic task graph
// Gapp = (Tapp, Eapp, Papp). Each task carries a type (functionality) — the
// set of implementations is attached per *type* (see Application below), and
// a criticality weight used by the functional-reliability estimate
// (TABLE III, Eq. 3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reliability/task_metrics.hpp"

namespace clrearly::app {

struct Task {
  std::size_t id = 0;
  std::size_t type = 0;        ///< task-type (functionality) index
  std::string name;
  double criticality = 1.0;    ///< relative weight; normalized at QoS time
};

struct Edge {
  std::size_t src = 0;
  std::size_t dst = 0;
  /// Data volume carried by the dependency (KB); consumed by the optional
  /// communication model, ignored when the interconnect is disabled.
  double data_kb = 0.0;

  bool operator==(const Edge&) const noexcept = default;
};

/// Directed acyclic task graph. Mutation is append-only; acyclicity is
/// enforced on demand (topological_order throws on cycles, validate() checks
/// everything).
class TaskGraph {
 public:
  /// Add a task of `type`; returns its id (dense, starting at 0).
  std::size_t add_task(std::size_t type, std::string name,
                       double criticality = 1.0);

  /// Add a dependency edge src -> dst carrying `data_kb` of data; both tasks
  /// must exist, self-loops rejected. A duplicate (src, dst) pair is ignored
  /// (the original edge and its data volume are kept).
  void add_edge(std::size_t src, std::size_t dst, double data_kb = 0.0);

  /// The edge src -> dst, or nullptr when absent.
  const Edge* find_edge(std::size_t src, std::size_t dst) const;

  std::size_t num_tasks() const noexcept { return tasks_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Number of distinct task types = max type index + 1.
  std::size_t num_types() const noexcept;

  const Task& task(std::size_t id) const;
  const std::vector<Task>& tasks() const noexcept { return tasks_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  const std::vector<std::size_t>& predecessors(std::size_t id) const;
  const std::vector<std::size_t>& successors(std::size_t id) const;

  /// Tasks with no predecessors / successors.
  std::vector<std::size_t> sources() const;
  std::vector<std::size_t> sinks() const;

  /// Kahn topological order; throws std::invalid_argument on a cycle.
  std::vector<std::size_t> topological_order() const;

  /// Length (in tasks) of the longest path — a lower bound on schedule depth.
  std::size_t critical_path_length() const;

  /// Criticality weights normalized to sum to 1 (zeta_t of TABLE III).
  std::vector<double> normalized_criticality() const;

  /// Full structural validation (ids, types dense-ish, DAG); throws on
  /// violation.
  void validate() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<std::vector<std::size_t>> succs_;
};

/// A complete application: the task graph, the per-task-type implementation
/// sets (Impl_t of Section III-B; from app::ImplCharacterizer or hand-built)
/// and the application period Papp used by the lifetime model.
struct Application {
  std::string name;
  TaskGraph graph;
  /// impls[type] = the base implementations available for that task type.
  std::vector<std::vector<reliability::BaseImpl>> impls;
  double period_us = 1.0e6;

  /// Structural validation: every task type has at least one implementation,
  /// the graph validates, period positive.
  void validate() const;
};

}  // namespace clrearly::app
