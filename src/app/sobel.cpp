#include "app/sobel.hpp"

namespace clrearly::app {

namespace {

reliability::BaseImpl proc_impl(const char* name, double time_us,
                                double power_w, double vulnerability,
                                double ssw_cost, double footprint_kb) {
  reliability::BaseImpl impl;
  impl.name = name;
  impl.target = platform::PeClass::kEmbeddedProcessor;
  impl.base_exec_time_us = time_us;
  impl.base_power_w = power_w;
  impl.vulnerability = vulnerability;
  impl.ssw_overhead_factor = ssw_cost;
  impl.footprint_kb = footprint_kb;
  return impl;
}

reliability::BaseImpl fabric_impl(const char* name, double time_us,
                                  double power_w, double vulnerability,
                                  double ssw_cost, double footprint_kb) {
  reliability::BaseImpl impl;
  impl.name = name;
  impl.target = platform::PeClass::kReconfigurableRegion;
  impl.base_exec_time_us = time_us;
  impl.base_power_w = power_w;
  // SRAM-based configuration memory raises the fabric's exposure, and
  // checkpointing accelerator state costs a readback.
  impl.vulnerability = vulnerability * 1.2;
  impl.ssw_overhead_factor = ssw_cost * 1.15;
  impl.footprint_kb = footprint_kb * 0.6;
  return impl;
}

}  // namespace

Application make_sobel_application() {
  Application sobel;
  sobel.name = "sobel-edge-detection";

  const std::size_t t0 = sobel.graph.add_task(kGScale, "GScale", 0.8);
  const std::size_t t1 = sobel.graph.add_task(kGSmth, "GSmth", 0.9);
  const std::size_t t2 = sobel.graph.add_task(kSobGrad, "SobGradX", 1.0);
  const std::size_t t3 = sobel.graph.add_task(kSobGrad, "SobGradY", 1.0);
  const std::size_t t4 = sobel.graph.add_task(kCombThr, "CombThr", 1.3);

  // Edge payloads: one QVGA grayscale frame (320x240 = 75 KB) flows through
  // the pipeline; each gradient image feeds the combiner separately.
  constexpr double kFrameKb = 75.0;
  sobel.graph.add_edge(t0, t1, kFrameKb);
  sobel.graph.add_edge(t1, t2, kFrameKb);
  sobel.graph.add_edge(t1, t3, kFrameKb);
  sobel.graph.add_edge(t2, t4, kFrameKb);
  sobel.graph.add_edge(t3, t4, kFrameKb);

  // Synthetic stand-in for the Gem5/McPAT characterization: execution time
  // (us), dynamic power (W), program-level vulnerability and relative SSW
  // overhead per task type at the nominal operating point. Fabric
  // implementations trade a ~3x kernel speedup for higher power. The
  // vulnerability/overhead spread reflects the kernels' state sizes:
  // streaming scale/threshold stages checkpoint cheaply, the smoothing
  // window buffer does not.
  sobel.impls.resize(4);
  sobel.impls[kGScale] = {
      proc_impl("gscale-c", 420.0, 0.35, 0.90, 0.80, 90.0),
      fabric_impl("gscale-hls", 155.0, 0.58, 0.90, 0.80, 90.0)};
  sobel.impls[kGSmth] = {
      proc_impl("gsmth-c", 760.0, 0.38, 1.15, 1.30, 160.0),
      fabric_impl("gsmth-hls", 240.0, 0.62, 1.15, 1.30, 160.0)};
  sobel.impls[kSobGrad] = {
      proc_impl("sobgrad-c", 545.0, 0.41, 1.00, 1.00, 120.0),
      fabric_impl("sobgrad-hls", 195.0, 0.60, 1.00, 1.00, 120.0)};
  sobel.impls[kCombThr] = {
      proc_impl("combthr-c", 350.0, 0.33, 0.82, 0.70, 80.0),
      fabric_impl("combthr-hls", 140.0, 0.52, 0.82, 0.70, 80.0)};

  // One frame per 10 ms (100 fps headroom for a QVGA pipeline).
  sobel.period_us = 1.0e4;

  sobel.validate();
  return sobel;
}

}  // namespace clrearly::app
