// Synthetic implementation characterization — the stand-in for the paper's
// Gem5 (execution cycles) + McPAT (power) runs.
//
// For every task type it emits a set of BaseImpl records: software
// implementations for the embedded cores and, with configurable probability,
// accelerator implementations for the reconfigurable fabric (faster, hotter).
// Deterministic for a given Rng state, so synthetic experiments are
// reproducible end-to-end from one seed.
#pragma once

#include <cstddef>
#include <vector>

#include "app/task_graph.hpp"
#include "util/rng.hpp"

namespace clrearly::app {

struct CharacterizerOptions {
  /// Log-normal execution-time distribution across task types (us).
  double exec_time_median_us = 500.0;
  double exec_time_sigma = 0.45;
  /// Dynamic-power range for processor implementations (W).
  double proc_power_min_w = 0.30;
  double proc_power_max_w = 0.45;
  /// Accelerator speedup factor range (fabric vs processor).
  double fabric_speedup_min = 2.2;
  double fabric_speedup_max = 3.6;
  /// Accelerator power multiplier range (fabric vs processor).
  double fabric_power_factor_min = 1.4;
  double fabric_power_factor_max = 1.9;
  /// Probability a task type has a fabric implementation at all.
  double fabric_availability = 1.0;
  /// Number of alternative software implementations per task type
  /// (algorithmic variants with a time/power trade-off).
  std::size_t software_variants = 1;

  void validate() const;
};

/// Generate impls[type] tables for `num_types` task types.
std::vector<std::vector<reliability::BaseImpl>> characterize_types(
    std::size_t num_types, const CharacterizerOptions& options,
    util::Rng& rng);

/// Convenience: build a full synthetic application — TGFF-style graph plus
/// characterized implementations plus a period sized to the workload
/// (2x the summed median execution time, floored at 1 ms).
Application make_synthetic_application(std::size_t num_tasks,
                                       std::size_t num_types,
                                       std::uint64_t seed);

}  // namespace clrearly::app
