// Graphviz DOT export for task graphs — a debugging/documentation aid for
// the tool's users (dot -Tpng app.dot -o app.png).
#pragma once

#include <iosfwd>
#include <string>

#include "app/task_graph.hpp"

namespace clrearly::app {

/// Emit `graph` in DOT syntax. Nodes are labeled "name\n(type k)" and
/// colored by task type (cycling over a small palette); edges carry their
/// data volume when non-zero.
void write_dot(std::ostream& os, const TaskGraph& graph,
               const std::string& name = "taskgraph");

/// Convenience: DOT text as a string.
std::string to_dot(const TaskGraph& graph,
                   const std::string& name = "taskgraph");

}  // namespace clrearly::app
