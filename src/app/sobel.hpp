// The paper's real-life application: Sobel edge detection (Fig. 2b) —
// five tasks of four types:
//
//   T0 GScale -> T1 GSmth -> { T2 SobGradX, T3 SobGradY } -> T4 CombThr
//
// (5 edges; SobGradX and SobGradY share the SobGrad task type).
// The implementation table stands in for the paper's Gem5/McPAT
// characterization: one embedded-processor implementation and one
// reconfigurable-fabric implementation per task type, with accelerator
// speedups and power ratios typical of image-processing kernels.
#pragma once

#include "app/task_graph.hpp"

namespace clrearly::app {

/// Task-type indices of the Sobel application.
enum SobelType : std::size_t {
  kGScale = 0,
  kGSmth = 1,
  kSobGrad = 2,
  kCombThr = 3,
};

/// Build the complete Sobel application (graph + implementation sets +
/// period).
Application make_sobel_application();

}  // namespace clrearly::app
