// TGFF-style synthetic task-graph generation.
//
// The paper generates its synthetic applications (10..100 tasks, 10 task
// types) with the Task Graphs For Free tool. We reimplement the essential
// generative model: a layered series/parallel DAG grown fan-out-first with
// bounded in/out degree, yielding graphs whose depth/width statistics match
// TGFF's defaults. Deterministic for a given seed.
#pragma once

#include <cstddef>

#include "app/task_graph.hpp"
#include "util/rng.hpp"

namespace clrearly::app {

struct TgffOptions {
  std::size_t num_tasks = 20;
  std::size_t num_types = 10;   ///< task-type pool (Fig. 9 uses 10)
  std::size_t max_out_degree = 3;
  std::size_t max_in_degree = 3;
  /// Average branching when expanding a layer; larger -> wider graphs.
  double fan_out_mean = 2.0;
  /// Probability that a new task also picks extra predecessors from earlier
  /// layers (cross edges), creating fan-in joins.
  double cross_edge_prob = 0.3;
  /// Criticality weights are drawn uniformly from this range.
  double criticality_min = 0.5;
  double criticality_max = 1.5;

  /// Edge data volumes (KB) are drawn uniformly from this range
  /// (TGFF's arc attributes); both 0 disables payload generation.
  double edge_data_min_kb = 8.0;
  double edge_data_max_kb = 128.0;

  void validate() const;
};

/// Generate a connected DAG with exactly `options.num_tasks` tasks. Types are
/// assigned so that every type in [0, num_types) appears when
/// num_tasks >= num_types (TGFF reuses types across tasks the same way).
TaskGraph generate_tgff_graph(const TgffOptions& options, util::Rng& rng);

}  // namespace clrearly::app
