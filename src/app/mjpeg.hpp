// A second real-life application: an MJPEG encoder pipeline.
//
// The CLR literature the paper builds on (Lee et al. MM'08, Rehman et al.)
// repeatedly targets multimedia encoders — they mix error-tolerant stages
// (pixel-domain transforms, where a flipped bit is one bad block) with
// error-critical ones (entropy coding, where a flipped bit corrupts the
// bitstream from that point on). That asymmetry is exactly what per-task CLR
// configuration exploits, making this a sharper testbed than Sobel for
// criticality-weighted functional reliability.
//
//   T0 RGB2YCbCr -> {T1 DCT-Y, T2 DCT-Cb, T3 DCT-Cr}
//                -> {T4 Quant-Y, T5 Quant-Cb, T6 Quant-Cr}
//                -> T7 ZigZag/RLE -> T8 Huffman
//
// Nine tasks of five types; criticalities rise toward the bitstream end.
#pragma once

#include "app/task_graph.hpp"

namespace clrearly::app {

/// Task-type indices of the MJPEG application.
enum MjpegType : std::size_t {
  kColorConvert = 0,
  kDct = 1,
  kQuantize = 2,
  kZigZagRle = 3,
  kHuffman = 4,
};

/// Build the complete MJPEG encoder application (graph + implementation
/// table + period).
Application make_mjpeg_application();

}  // namespace clrearly::app
