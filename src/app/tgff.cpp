#include "app/tgff.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace clrearly::app {

void TgffOptions::validate() const {
  if (num_tasks == 0) {
    throw std::invalid_argument("TgffOptions: num_tasks must be positive");
  }
  if (num_types == 0) {
    throw std::invalid_argument("TgffOptions: num_types must be positive");
  }
  if (max_out_degree == 0 || max_in_degree == 0) {
    throw std::invalid_argument("TgffOptions: degrees must be positive");
  }
  if (fan_out_mean < 1.0) {
    throw std::invalid_argument("TgffOptions: fan_out_mean must be >= 1");
  }
  if (cross_edge_prob < 0.0 || cross_edge_prob > 1.0) {
    throw std::invalid_argument("TgffOptions: cross_edge_prob outside [0,1]");
  }
  if (criticality_min <= 0.0 || criticality_max < criticality_min) {
    throw std::invalid_argument("TgffOptions: bad criticality range");
  }
  if (edge_data_min_kb < 0.0 || edge_data_max_kb < edge_data_min_kb) {
    throw std::invalid_argument("TgffOptions: bad edge data range");
  }
}

TaskGraph generate_tgff_graph(const TgffOptions& options, util::Rng& rng) {
  options.validate();
  TaskGraph graph;

  // Type assignment: a shuffled round-robin pool guarantees full type
  // coverage once num_tasks >= num_types, mirroring TGFF's type reuse.
  std::vector<std::size_t> type_pool;
  type_pool.reserve(options.num_tasks);
  for (std::size_t i = 0; i < options.num_tasks; ++i) {
    type_pool.push_back(i % options.num_types);
  }
  rng.shuffle(type_pool);

  auto new_task = [&](std::size_t id) {
    const double crit =
        rng.uniform(options.criticality_min, options.criticality_max);
    return graph.add_task(type_pool[id], "syn_t" + std::to_string(id), crit);
  };

  std::vector<std::size_t> out_degree(options.num_tasks, 0);
  std::vector<std::size_t> in_degree(options.num_tasks, 0);

  // Layer-by-layer growth from a single root: each frontier task spawns
  // 1..max_out_degree children (geometric-ish around fan_out_mean), children
  // may also join onto earlier tasks as cross edges.
  std::vector<std::size_t> frontier;
  frontier.push_back(new_task(0));
  std::size_t created = 1;
  std::vector<std::size_t> all_tasks = frontier;

  while (created < options.num_tasks) {
    std::vector<std::size_t> next_frontier;
    for (std::size_t parent : frontier) {
      if (created >= options.num_tasks) break;
      // Draw the child count; the mean of 1 + draws approximates
      // fan_out_mean, clamped by the parent's remaining out-degree budget
      // (cross edges may already have consumed part of it).
      if (out_degree[parent] >= options.max_out_degree) continue;
      const std::size_t budget = options.max_out_degree - out_degree[parent];
      std::size_t want = 1;
      while (want < budget &&
             rng.bernoulli(1.0 - 1.0 / options.fan_out_mean)) {
        ++want;
      }
      for (std::size_t c = 0; c < want && created < options.num_tasks; ++c) {
        const std::size_t child = new_task(created);
        ++created;
        graph.add_edge(parent, child,
                       rng.uniform(options.edge_data_min_kb,
                                   options.edge_data_max_kb));
        ++out_degree[parent];
        ++in_degree[child];
        // Optional extra predecessors from anywhere earlier (fan-in joins).
        while (in_degree[child] < options.max_in_degree &&
               rng.bernoulli(options.cross_edge_prob)) {
          const std::size_t extra = all_tasks[rng.index(all_tasks.size())];
          if (extra == child || out_degree[extra] >= options.max_out_degree) {
            break;
          }
          const std::size_t before = graph.num_edges();
          graph.add_edge(extra, child,
                         rng.uniform(options.edge_data_min_kb,
                                     options.edge_data_max_kb));
          if (graph.num_edges() > before) {
            ++out_degree[extra];
            ++in_degree[child];
          }
        }
        next_frontier.push_back(child);
        all_tasks.push_back(child);
      }
    }
    if (next_frontier.empty()) {
      // Every frontier task hit its degree cap before the budget ran out;
      // restart growth from a random existing task with spare out-degree.
      std::vector<std::size_t> candidates;
      for (std::size_t id : all_tasks) {
        if (out_degree[id] < options.max_out_degree) candidates.push_back(id);
      }
      if (candidates.empty()) {
        // Extremely unlikely (requires tiny degree caps); widen by allowing
        // one more child on the last task.
        candidates.push_back(all_tasks.back());
      }
      next_frontier.push_back(candidates[rng.index(candidates.size())]);
    }
    frontier = std::move(next_frontier);
  }

  graph.validate();
  return graph;
}

}  // namespace clrearly::app
