#include "app/mjpeg.hpp"

namespace clrearly::app {

namespace {

reliability::BaseImpl impl_for(const char* name, platform::PeClass target,
                               double time_us, double power_w,
                               double vulnerability, double ssw_cost,
                               double footprint_kb) {
  reliability::BaseImpl impl;
  impl.name = name;
  impl.target = target;
  impl.base_exec_time_us = time_us;
  impl.base_power_w = power_w;
  impl.vulnerability = vulnerability;
  impl.ssw_overhead_factor = ssw_cost;
  impl.footprint_kb = footprint_kb;
  return impl;
}

}  // namespace

Application make_mjpeg_application() {
  using platform::PeClass;
  Application mjpeg;
  mjpeg.name = "mjpeg-encoder";

  // Pixel-domain stages tolerate errors (one bad block); entropy-coding
  // stages do not (bitstream desynchronization) — criticality encodes that.
  const std::size_t t0 = mjpeg.graph.add_task(kColorConvert, "RGB2YCbCr", 0.5);
  const std::size_t t1 = mjpeg.graph.add_task(kDct, "DCT-Y", 0.7);
  const std::size_t t2 = mjpeg.graph.add_task(kDct, "DCT-Cb", 0.6);
  const std::size_t t3 = mjpeg.graph.add_task(kDct, "DCT-Cr", 0.6);
  const std::size_t t4 = mjpeg.graph.add_task(kQuantize, "Quant-Y", 0.9);
  const std::size_t t5 = mjpeg.graph.add_task(kQuantize, "Quant-Cb", 0.8);
  const std::size_t t6 = mjpeg.graph.add_task(kQuantize, "Quant-Cr", 0.8);
  const std::size_t t7 = mjpeg.graph.add_task(kZigZagRle, "ZigZagRLE", 1.4);
  const std::size_t t8 = mjpeg.graph.add_task(kHuffman, "Huffman", 2.0);

  // Luma carries a full-resolution plane; chroma is 4:2:0 subsampled.
  constexpr double kLumaKb = 64.0;
  constexpr double kChromaKb = 16.0;
  mjpeg.graph.add_edge(t0, t1, kLumaKb);
  mjpeg.graph.add_edge(t0, t2, kChromaKb);
  mjpeg.graph.add_edge(t0, t3, kChromaKb);
  mjpeg.graph.add_edge(t1, t4, kLumaKb);
  mjpeg.graph.add_edge(t2, t5, kChromaKb);
  mjpeg.graph.add_edge(t3, t6, kChromaKb);
  mjpeg.graph.add_edge(t4, t7, kLumaKb);
  mjpeg.graph.add_edge(t5, t7, kChromaKb);
  mjpeg.graph.add_edge(t6, t7, kChromaKb);
  mjpeg.graph.add_edge(t7, t8, 48.0);  // RLE symbols

  // Synthetic Gem5/McPAT stand-in. DCT has an efficient fabric datapath;
  // Huffman's data-dependent control flow stays on the cores. The entropy
  // stages carry higher vulnerability (every live bit matters) and large
  // table state (costly checkpoints).
  mjpeg.impls.resize(5);
  mjpeg.impls[kColorConvert] = {
      impl_for("csc-c", PeClass::kEmbeddedProcessor, 310.0, 0.34, 0.85, 0.75,
               70.0),
      impl_for("csc-hls", PeClass::kReconfigurableRegion, 110.0, 0.55, 1.00,
               0.85, 45.0)};
  mjpeg.impls[kDct] = {
      impl_for("dct-c", PeClass::kEmbeddedProcessor, 620.0, 0.42, 0.95, 1.00,
               110.0),
      impl_for("dct-hls", PeClass::kReconfigurableRegion, 175.0, 0.66, 1.10,
               1.10, 70.0)};
  mjpeg.impls[kQuantize] = {
      impl_for("quant-c", PeClass::kEmbeddedProcessor, 240.0, 0.31, 1.05,
               0.80, 60.0)};
  mjpeg.impls[kZigZagRle] = {
      impl_for("rle-c", PeClass::kEmbeddedProcessor, 280.0, 0.33, 1.20, 0.90,
               85.0)};
  mjpeg.impls[kHuffman] = {
      impl_for("huff-c", PeClass::kEmbeddedProcessor, 540.0, 0.39, 1.30, 1.25,
               150.0)};

  // 30 fps encode budget per stripe batch.
  mjpeg.period_us = 3.3e4;

  mjpeg.validate();
  return mjpeg;
}

}  // namespace clrearly::app
