#include "app/dot.hpp"

#include <array>
#include <ostream>
#include <sstream>

namespace clrearly::app {

namespace {

constexpr std::array<const char*, 8> kPalette = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"};

/// DOT string literals need escaped quotes/backslashes.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& graph,
               const std::string& name) {
  os << "digraph \"" << escape(name) << "\" {\n";
  os << "  rankdir=TB;\n";
  os << "  node [shape=box, style=filled];\n";
  for (const Task& task : graph.tasks()) {
    os << "  t" << task.id << " [label=\"" << escape(task.name) << "\\n(type "
       << task.type << ")\", fillcolor=\""
       << kPalette[task.type % kPalette.size()] << "\"];\n";
  }
  for (const Edge& edge : graph.edges()) {
    os << "  t" << edge.src << " -> t" << edge.dst;
    if (edge.data_kb > 0.0) {
      std::ostringstream label;
      label << edge.data_kb << " KB";
      os << " [label=\"" << label.str() << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const TaskGraph& graph, const std::string& name) {
  std::ostringstream oss;
  write_dot(oss, graph, name);
  return oss.str();
}

}  // namespace clrearly::app
