#include "app/task_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clrearly::app {

std::size_t TaskGraph::add_task(std::size_t type, std::string name,
                                double criticality) {
  if (criticality < 0.0) {
    throw std::invalid_argument("TaskGraph: criticality must be non-negative");
  }
  const std::size_t id = tasks_.size();
  tasks_.push_back(Task{id, type, std::move(name), criticality});
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void TaskGraph::add_edge(std::size_t src, std::size_t dst, double data_kb) {
  if (src >= tasks_.size() || dst >= tasks_.size()) {
    throw std::out_of_range("TaskGraph::add_edge: unknown task");
  }
  if (src == dst) {
    throw std::invalid_argument("TaskGraph::add_edge: self-loop");
  }
  if (data_kb < 0.0) {
    throw std::invalid_argument("TaskGraph::add_edge: negative data volume");
  }
  if (find_edge(src, dst) != nullptr) return;
  edges_.push_back(Edge{src, dst, data_kb});
  succs_[src].push_back(dst);
  preds_[dst].push_back(src);
}

const Edge* TaskGraph::find_edge(std::size_t src, std::size_t dst) const {
  const auto it = std::find_if(
      edges_.begin(), edges_.end(),
      [&](const Edge& e) { return e.src == src && e.dst == dst; });
  return it == edges_.end() ? nullptr : &*it;
}

std::size_t TaskGraph::num_types() const noexcept {
  std::size_t n = 0;
  for (const Task& t : tasks_) n = std::max(n, t.type + 1);
  return n;
}

const Task& TaskGraph::task(std::size_t id) const {
  if (id >= tasks_.size()) throw std::out_of_range("TaskGraph::task");
  return tasks_[id];
}

const std::vector<std::size_t>& TaskGraph::predecessors(std::size_t id) const {
  if (id >= tasks_.size()) throw std::out_of_range("TaskGraph::predecessors");
  return preds_[id];
}

const std::vector<std::size_t>& TaskGraph::successors(std::size_t id) const {
  if (id >= tasks_.size()) throw std::out_of_range("TaskGraph::successors");
  return succs_[id];
}

std::vector<std::size_t> TaskGraph::sources() const {
  std::vector<std::size_t> out;
  for (const Task& t : tasks_) {
    if (preds_[t.id].empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<std::size_t> TaskGraph::sinks() const {
  std::vector<std::size_t> out;
  for (const Task& t : tasks_) {
    if (succs_[t.id].empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<std::size_t> TaskGraph::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size(), 0);
  for (const Edge& e : edges_) ++in_degree[e.dst];

  std::vector<std::size_t> frontier;
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    if (in_degree[id] == 0) frontier.push_back(id);
  }

  std::vector<std::size_t> order;
  order.reserve(tasks_.size());
  // Process in id order within the frontier for determinism.
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::size_t id = frontier[head];
    order.push_back(id);
    for (std::size_t succ : succs_[id]) {
      if (--in_degree[succ] == 0) frontier.push_back(succ);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::invalid_argument("TaskGraph: graph contains a cycle");
  }
  return order;
}

std::size_t TaskGraph::critical_path_length() const {
  const std::vector<std::size_t> order = topological_order();
  std::vector<std::size_t> depth(tasks_.size(), 1);
  std::size_t longest = tasks_.empty() ? 0 : 1;
  for (std::size_t id : order) {
    for (std::size_t succ : succs_[id]) {
      depth[succ] = std::max(depth[succ], depth[id] + 1);
      longest = std::max(longest, depth[succ]);
    }
  }
  return longest;
}

std::vector<double> TaskGraph::normalized_criticality() const {
  std::vector<double> zeta(tasks_.size(), 0.0);
  double total = 0.0;
  for (const Task& t : tasks_) total += t.criticality;
  if (total <= 0.0) {
    // Degenerate all-zero criticality: treat tasks as equally critical.
    const double uniform = tasks_.empty() ? 0.0 : 1.0 / static_cast<double>(tasks_.size());
    for (double& z : zeta) z = uniform;
    return zeta;
  }
  for (const Task& t : tasks_) zeta[t.id] = t.criticality / total;
  return zeta;
}

void TaskGraph::validate() const {
  if (tasks_.empty()) {
    throw std::invalid_argument("TaskGraph: no tasks");
  }
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].id != id) {
      throw std::invalid_argument("TaskGraph: task id mismatch");
    }
  }
  (void)topological_order();  // throws on cycles
}

void Application::validate() const {
  graph.validate();
  if (period_us <= 0.0) {
    throw std::invalid_argument("Application: period must be positive");
  }
  const std::size_t types = graph.num_types();
  if (impls.size() < types) {
    throw std::invalid_argument(
        "Application: missing implementation set for some task type");
  }
  for (std::size_t type = 0; type < types; ++type) {
    if (impls[type].empty()) {
      throw std::invalid_argument("Application: task type " +
                                  std::to_string(type) +
                                  " has no implementations");
    }
    for (const auto& impl : impls[type]) impl.validate();
  }
}

}  // namespace clrearly::app
