#include "server/server.hpp"

#include <unistd.h>

#include <utility>

#include "util/metrics.hpp"

namespace clrearly::server {

HttpServer::HttpServer(DseService& service, ServerOptions options)
    : service_(service),
      listener_(options.host, options.port),
      handler_threads_(options.handler_threads == 0 ? 1
                                                    : options.handler_threads) {
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (!handlers_.empty()) return;
  handlers_.reserve(handler_threads_);
  for (std::size_t i = 0; i < handler_threads_; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
}

void HttpServer::stop() {
  stopping_.store(true);
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  listener_.close();
}

void HttpServer::handler_loop() {
  // accept(2) on a shared listening fd is thread-safe; the kernel hands each
  // connection to exactly one accepter, so the threads need no coordination
  // beyond the stop flag (checked between short poll timeouts).
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = listener_.accept_once(/*timeout_ms=*/200);
    if (fd < 0) continue;
    static util::Counter& requests =
        util::metric_counter("server.http.requests");
    if (auto request = read_request(fd)) {
      requests.add();
      write_response(fd, service_.handle(*request));
    }
    ::close(fd);
  }
}

}  // namespace clrearly::server
