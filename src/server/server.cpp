#include "server/server.hpp"

#include <unistd.h>

#include <utility>

#include "util/metrics.hpp"

namespace clrearly::server {

HttpServer::HttpServer(DseService& service, ServerOptions options)
    : service_(service),
      listener_(options.host, options.port),
      options_([&options] {
        if (options.handler_threads == 0) options.handler_threads = 1;
        if (options.max_requests_per_connection == 0) {
          options.max_requests_per_connection = 1;
        }
        if (options.idle_timeout_ms <= 0) {
          options.idle_timeout_ms = kKeepAliveIdleMs;
        }
        return options;
      }()) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (!handlers_.empty()) return;
  handlers_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
}

void HttpServer::stop() {
  stopping_.store(true);
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  listener_.close();
}

void HttpServer::handler_loop() {
  // accept(2) on a shared listening fd is thread-safe; the kernel hands each
  // connection to exactly one accepter, so the threads need no coordination
  // beyond the stop flag (checked between short poll timeouts).
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = listener_.accept_once(/*timeout_ms=*/200);
    if (fd < 0) continue;
    static util::Counter& connections =
        util::metric_counter("server.keepalive.connections");
    connections.add();
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  static util::Counter& requests =
      util::metric_counter("server.http.requests");
  static util::Counter& keepalive_requests =
      util::metric_counter("server.keepalive.requests");

  RequestReader reader(fd, &stopping_);
  for (std::size_t served = 0;
       served < options_.max_requests_per_connection; ++served) {
    auto request = reader.next(options_.idle_timeout_ms);
    if (!request.has_value()) break;  // closed, idle-timed-out, or stopping
    requests.add();
    if (served > 0) keepalive_requests.add();

    if (DseService::wants_sse(*request)) {
      // An SSE stream takes over the connection until the job finishes (or
      // the client/server goes away); headers are written lazily so a
      // non-streamable request still gets a plain error response.
      bool headers_sent = false;
      const auto sink = [fd, &headers_sent](const std::string& frame) {
        if (!headers_sent) {
          if (!write_stream_headers(fd, "text/event-stream")) return false;
          headers_sent = true;
        }
        return write_chunk(fd, frame);
      };
      const auto error = service_.stream_events_sse(*request, sink);
      if (error.has_value()) {
        write_response(fd, *error, /*keep_alive=*/false);
      } else if (headers_sent) {
        write_last_chunk(fd);
      }
      break;  // the stream (or its error) is the connection's last exchange
    }

    const bool keep_alive =
        request->keep_alive() &&
        served + 1 < options_.max_requests_per_connection &&
        !stopping_.load(std::memory_order_relaxed);
    if (!write_response(fd, service_.handle(*request), keep_alive)) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

}  // namespace clrearly::server
