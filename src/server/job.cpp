#include "server/job.hpp"

#include <chrono>
#include <utility>

#include "core/scenario.hpp"
#include "util/memo_cache.hpp"
#include "util/metrics.hpp"

namespace clrearly::server {

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

JobState job_state_from_string(const std::string& name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  throw std::invalid_argument("unknown job state: " + name);
}

const char* to_string(JobPriority priority) noexcept {
  return priority == JobPriority::kHigh ? "high" : "normal";
}

JobPriority priority_from_string(const std::string& name) {
  if (name == "high") return JobPriority::kHigh;
  if (name == "normal") return JobPriority::kNormal;
  throw std::invalid_argument("unknown job priority: " + name);
}

util::JsonValue to_json(const ProgressEvent& event) {
  return util::JsonValue(util::JsonObject{
      {"sequence", event.sequence},
      {"stage", event.stage},
      {"generation", event.generation},
      {"generations", event.generations},
      {"evaluations", event.evaluations},
      {"front_size", event.front_size},
      {"hv_proxy", event.hv_proxy}});
}

util::JsonValue to_json(const CacheDelta& delta) {
  return util::JsonValue(util::JsonObject{
      {"fitness_hits", static_cast<double>(delta.fitness_hits)},
      {"fitness_misses", static_cast<double>(delta.fitness_misses)},
      {"chain_hits", static_cast<double>(delta.chain_hits)},
      {"chain_misses", static_cast<double>(delta.chain_misses)}});
}

CacheDelta cache_counters_now() {
  CacheDelta now;
  for (const auto& [name, stats] : util::lifetime_cache_stats()) {
    if (name == "fitness") {
      now.fitness_hits = stats.hits;
      now.fitness_misses = stats.misses;
    } else if (name == "chain_solve") {
      now.chain_hits = stats.hits;
      now.chain_misses = stats.misses;
    }
  }
  return now;
}

// ------------------------------------------------------------------ record

JobRecord::JobRecord(std::string id, io::JobSpec spec, JobPriority priority)
    : id_(std::move(id)), spec_(std::move(spec)), priority_(priority) {}

JobState JobRecord::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool JobRecord::try_start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != JobState::kQueued) return false;
  state_ = JobState::kRunning;
  return true;
}

void JobRecord::finish(JobResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (is_terminal(state_)) return;
  state_ = JobState::kDone;
  result_ = std::move(result);
}

void JobRecord::fail(const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (is_terminal(state_)) return;
  state_ = JobState::kFailed;
  error_ = error;
}

void JobRecord::cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (is_terminal(state_)) return;
  state_ = JobState::kCancelled;
}

void JobRecord::push_event(ProgressEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.sequence = events_.size();
  events_.push_back(std::move(event));
}

std::vector<ProgressEvent> JobRecord::events_since(std::size_t from) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (from >= events_.size()) return {};
  return std::vector<ProgressEvent>(events_.begin() +
                                        static_cast<std::ptrdiff_t>(from),
                                    events_.end());
}

std::size_t JobRecord::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

util::JsonValue JobRecord::status_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::JsonObject status{{"id", id_},
                          {"state", to_string(state_)},
                          {"flow", spec_.flow},
                          {"seed", spec_.seed},
                          {"priority", to_string(priority_)},
                          {"events", events_.size()}};
  if (!spec_.name.empty()) status.emplace("name", spec_.name);
  if (!events_.empty()) status.emplace("progress", to_json(events_.back()));
  if (state_ == JobState::kFailed) status.emplace("error", error_);
  if (result_.has_value()) {
    status.emplace("front_size", result_->outcome.front.size());
    status.emplace("evaluations", result_->outcome.evaluations);
    status.emplace("wall_seconds", result_->wall_seconds);
    status.emplace("cache", to_json(result_->cache));
  }
  return util::JsonValue(std::move(status));
}

util::JsonValue JobRecord::result_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != JobState::kDone || !result_.has_value()) {
    throw std::logic_error("JobRecord::result_json: job not done");
  }
  util::JsonArray front;
  for (const moea::Objectives& point : result_->outcome.front) {
    util::JsonArray values;
    for (double v : point) values.push_back(util::JsonValue(v));
    front.push_back(util::JsonValue(std::move(values)));
  }
  util::JsonArray genomes;
  for (const core::MappingGenome& genome : result_->outcome.front_genomes) {
    util::JsonArray order;
    for (std::size_t t : genome.order) order.push_back(util::JsonValue(t));
    util::JsonArray genes;
    for (auto g : genome.genes) {
      genes.push_back(util::JsonValue(static_cast<std::size_t>(g)));
    }
    genomes.push_back(util::JsonValue(
        util::JsonObject{{"order", std::move(order)},
                         {"genes", std::move(genes)}}));
  }
  return util::JsonValue(util::JsonObject{
      {"id", id_},
      {"state", to_string(state_)},
      {"flow", spec_.flow},
      {"seed", spec_.seed},
      {"format_version", spec_.format_version},
      {"front", std::move(front)},
      {"front_genomes", std::move(genomes)},
      {"evaluations", result_->outcome.evaluations},
      {"wall_seconds", result_->wall_seconds},
      {"cache", to_json(result_->cache)}});
}

// ----------------------------------------------------------------- session

namespace {

core::DseOptions model_half(const io::JobSpec& spec) {
  core::DseOptions options;
  options.objectives = spec.objectives;
  options.spec = spec.spec;
  options.tdse_objectives = spec.tdse_objectives;
  options.resilience = spec.resilience;
  // Island sharding is part of the model key (io::JobSpec::model_key), so
  // sessions never alias across island configurations; mirror it here so the
  // session's options match the key that selected it. Problem construction
  // itself does not depend on it.
  options.island = spec.island;
  return options;
}

}  // namespace

ModelSession::ModelSession(const io::JobSpec& spec)
    : model_options_(model_half(spec)),
      methodology_(spec.application, spec.architecture,
                   core::make_condition_analyzer(
                       spec.scenario.environment_factor)) {}

const core::ClrMappingProblem& ModelSession::fc_problem() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fc_.has_value()) {
    fc_.emplace(methodology_.build_fcclr_problem(model_options_));
  }
  return *fc_;
}

const core::ResilientProblem& ModelSession::resilient_problem() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!resilient_.has_value()) {
    resilient_.emplace(methodology_.build_resilient_problem(model_options_));
  }
  return *resilient_;
}

const core::ClrMappingProblem& ModelSession::pf_problem() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pf_.has_value()) {
    if (!tdse_.has_value()) tdse_ = methodology_.run_tdse(model_options_);
    pf_.emplace(methodology_.build_pfclr_problem(model_options_, *tdse_));
  }
  return *pf_;
}

SessionCache::SessionCache(std::size_t max_sessions)
    : max_sessions_(max_sessions == 0 ? 1 : max_sessions) {}

SessionCache::Lease SessionCache::acquire(const io::JobSpec& spec) {
  const std::string key = spec.model_key();
  std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (auto& [session_key, session] : sessions_) {
    if (session_key == key) {
      session->touch(tick_);
      session->pin();
      static util::Counter& hits =
          util::metric_counter("server.sessions.hits");
      hits.add();
      return Lease(session);
    }
  }
  // Evict LRU sessions down to the bound — but only unpinned ones: a
  // session some job still runs against must stay addressable so same-key
  // jobs keep hitting its fitness cache. When every session is pinned the
  // pool grows past max_sessions_ transiently and shrinks on later
  // acquires.
  while (sessions_.size() >= max_sessions_) {
    std::size_t oldest = sessions_.size();
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      if (sessions_[i].second->pins() > 0) continue;
      if (oldest == sessions_.size() ||
          sessions_[i].second->last_used() <
              sessions_[oldest].second->last_used()) {
        oldest = i;
      }
    }
    if (oldest == sessions_.size()) break;  // all pinned: grow instead
    sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(oldest));
    static util::Counter& evictions =
        util::metric_counter("server.sessions.evictions");
    evictions.add();
  }
  auto session = std::make_shared<ModelSession>(spec);
  session->touch(tick_);
  session->pin();
  sessions_.emplace_back(key, session);
  static util::Counter& misses = util::metric_counter("server.sessions.misses");
  misses.add();
  return Lease(session);
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

// ------------------------------------------------------------------ runner

void run_job(JobRecord& job, ModelSession& session) {
  if (!job.try_start()) return;  // cancelled while queued
  const auto start = std::chrono::steady_clock::now();
  const CacheDelta before = cache_counters_now();
  try {
    core::DseOptions options = job.spec().options();
    const std::string stage = job.spec().flow;
    // For island jobs (spec.islands.count > 1) this hook fires once per
    // migration epoch over the merged front rather than once per generation,
    // so progress events and cancellation both land at epoch granularity
    // (docs/SCALING.md).
    options.ga.on_generation = [&job, stage](
                                   const moea::GenerationProgress& progress) {
      if (job.cancel_requested()) throw JobCancelled();
      ProgressEvent event;
      event.stage = stage;
      event.generation = progress.generation;
      event.generations = progress.generations;
      event.evaluations = progress.evaluations;
      event.front_size = progress.front_size;
      event.hv_proxy = progress.hv_proxy;
      job.push_event(std::move(event));
    };

    const core::DseMethodology& methodology = session.methodology();
    core::DseOutcome outcome;
    if (job.spec().flow == "fcclr") {
      outcome = methodology.run_fcclr(options, session.fc_problem());
    } else if (job.spec().flow == "pfclr") {
      outcome = methodology.run_pfclr(options, session.pf_problem());
    } else if (job.spec().flow == "kresilient") {
      outcome = methodology.run_kresilient(options, session.resilient_problem());
    } else {
      // Build order fixed (pf before fc) so cache warm-up is deterministic.
      const core::ClrMappingProblem& pf = session.pf_problem();
      const core::ClrMappingProblem& fc = session.fc_problem();
      outcome = methodology.run_proposed(options, pf, fc);
    }

    JobResult result;
    result.outcome = std::move(outcome);
    const CacheDelta after = cache_counters_now();
    result.cache.fitness_hits = after.fitness_hits - before.fitness_hits;
    result.cache.fitness_misses = after.fitness_misses - before.fitness_misses;
    result.cache.chain_hits = after.chain_hits - before.chain_hits;
    result.cache.chain_misses = after.chain_misses - before.chain_misses;
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    util::observe_seconds("server.job_seconds", result.wall_seconds);
    job.finish(std::move(result));
    static util::Counter& completed =
        util::metric_counter("server.jobs.completed");
    completed.add();
  } catch (const JobCancelled&) {
    job.cancel();
    static util::Counter& cancelled =
        util::metric_counter("server.jobs.cancelled");
    cancelled.add();
  } catch (const std::exception& e) {
    job.fail(e.what());
    static util::Counter& failed = util::metric_counter("server.jobs.failed");
    failed.add();
  }
}

}  // namespace clrearly::server
