#include "server/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace clrearly::server {

namespace {

std::string error_body(const std::string& message) {
  return util::json_serialize(util::JsonValue(
      util::JsonObject{{"error", message}}));
}

std::string body_of(const util::JsonValue& value) {
  return util::json_serialize(value);
}

/// json_serialize is multi-line; SSE `data:` payloads must be one line.
std::string flatten(const std::string& json) {
  std::string flat;
  flat.reserve(json.size());
  for (char c : json) {
    if (c != '\n') flat.push_back(c);
  }
  return flat;
}

/// "/v1/jobs/job-000001/result" -> {"job-000001", "result"}; the tail is
/// empty for "/v1/jobs/job-000001".
struct JobPath {
  std::string id;
  std::string tail;
};

JobPath split_job_path(const std::string& path) {
  constexpr const char* kPrefix = "/v1/jobs/";
  JobPath out;
  std::string rest = path.substr(std::string(kPrefix).size());
  const std::size_t slash = rest.find('/');
  out.id = rest.substr(0, slash);
  if (slash != std::string::npos) out.tail = rest.substr(slash + 1);
  return out;
}

}  // namespace

DseService::DseService(ServiceOptions options)
    : options_(std::move(options)),
      sessions_(options_.max_sessions),
      queue_(options_.workers, options_.queue_depth,
             [this](JobRecord& job) { run_one(job); }) {
  if (!options_.spool_dir.empty()) {
    std::filesystem::create_directories(options_.spool_dir);
    replay_journal();
  }
}

void DseService::replay_journal() {
  const std::string path = options_.spool_dir + "/journal.jsonl";
  std::vector<JournalEntry> entries = JobJournal::replay(path, &replay_stats_);
  journal_ = std::make_unique<JobJournal>(path, options_.journal_compact_bytes);
  journal_->seed(entries);

  // The id counter must resume past every journaled id, terminal or not,
  // or a fresh submission would collide with (and overwrite) an old job.
  std::uint64_t max_id = 0;
  for (const JournalEntry& entry : entries) {
    unsigned long long numeric = 0;
    if (std::sscanf(entry.id.c_str(), "job-%llu", &numeric) == 1) {
      max_id = std::max(max_id, static_cast<std::uint64_t>(numeric));
    }
  }
  next_id_.store(max_id);

  static util::Counter& replayed =
      util::metric_counter("server.journal.replayed");
  std::size_t requeued = 0;
  for (JournalEntry& entry : entries) {
    if (is_terminal(entry.last_state)) continue;
    // Re-admit in original submission order (replay() sorts by seq); the
    // journal already holds these jobs' admission records, so no
    // record_submitted here. `force` bypasses the depth bound — shedding
    // load the previous incarnation already acked would lose acked work.
    auto job = std::make_shared<JobRecord>(entry.id, std::move(entry.spec),
                                           entry.priority);
    if (queue_.submit(std::move(job), /*force=*/true).has_value()) {
      ++requeued;
      replayed.add();
    }
  }
  if (requeued > 0 || replay_stats_.dropped_torn > 0) {
    util::log_info() << "serve: journal replayed " << replay_stats_.records
                     << " records, re-enqueued " << requeued
                     << " interrupted jobs (torn: "
                     << replay_stats_.dropped_torn << ")";
  }
}

void DseService::run_one(JobRecord& job) {
  if (journal_ != nullptr) {
    journal_->record_state(job.id(), JobState::kRunning);
  }
  // Session acquisition happens on the worker, not at admission, so LRU
  // order follows execution order and a queued-then-cancelled job never
  // instantiates a session at all. The lease pins the session for the whole
  // run: the cache may not evict it while the job executes against it.
  SessionCache::Lease session;
  try {
    session = sessions_.acquire(job.spec());
  } catch (const std::exception& e) {
    job.fail(e.what());
    if (journal_ != nullptr) journal_->record_state(job.id(), job.state());
    return;
  }
  run_job(job, *session);
  if (job.state() == JobState::kDone) spool_result(job);
  if (journal_ != nullptr) journal_->record_state(job.id(), job.state());
}

void DseService::shutdown(bool cancel_pending) {
  queue_.shutdown(cancel_pending);
  // Queued jobs cancelled inside the queue's shutdown bypass run_one();
  // record their final states here (record_state is idempotent) so the
  // next incarnation does not resurrect them.
  if (journal_ != nullptr) {
    for (const auto& job : queue_.jobs()) {
      if (is_terminal(job->state())) {
        journal_->record_state(job->id(), job->state());
      }
    }
  }
}

HttpResponse DseService::handle(const HttpRequest& request) {
  try {
    const std::string& path = request.path;
    if (path == "/v1/healthz" && request.method == "GET") {
      return HttpResponse::json(
          200, body_of(util::JsonValue(util::JsonObject{{"status", "ok"}})));
    }
    if (path == "/v1/metrics" && request.method == "GET") return metrics();
    if (path == "/v1/shutdown" && request.method == "POST") {
      request_shutdown();
      return HttpResponse::json(
          200, body_of(util::JsonValue(
                   util::JsonObject{{"state", "shutting_down"}})));
    }
    if (path == "/v1/jobs") {
      if (request.method == "POST") return submit(request);
      if (request.method == "GET") return list_jobs();
      return HttpResponse::json(405, error_body("method not allowed"));
    }
    if (path.rfind("/v1/jobs/", 0) == 0) {
      const JobPath job_path = split_job_path(path);
      if (job_path.id.empty()) {
        return HttpResponse::json(404, error_body("missing job id"));
      }
      if (job_path.tail.empty()) {
        if (request.method != "GET") {
          return HttpResponse::json(405, error_body("method not allowed"));
        }
        return job_status(job_path.id);
      }
      if (job_path.tail == "events" && request.method == "GET") {
        return job_events(request, job_path.id);
      }
      if (job_path.tail == "result" && request.method == "GET") {
        return job_result(job_path.id);
      }
      if (job_path.tail == "cancel" && request.method == "POST") {
        return job_cancel(job_path.id);
      }
      return HttpResponse::json(404, error_body("no such endpoint"));
    }
    return HttpResponse::json(404, error_body("no such endpoint"));
  } catch (const std::exception& e) {
    return HttpResponse::json(500, error_body(e.what()));
  }
}

std::optional<int> DseService::quota_retry_after(const std::string& client) {
  if (options_.quota_rate <= 0.0) return std::nullopt;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(quota_mutex_);
  auto [it, inserted] = quota_.try_emplace(client);
  QuotaBucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = options_.quota_burst;
    bucket.last_refill = now;
  }
  const double elapsed =
      std::chrono::duration<double>(now - bucket.last_refill).count();
  bucket.tokens = std::min(options_.quota_burst,
                           bucket.tokens + elapsed * options_.quota_rate);
  bucket.last_refill = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return std::nullopt;
  }
  static util::Counter& rejected =
      util::metric_counter("server.quota.rejected");
  rejected.add();
  const double wait = (1.0 - bucket.tokens) / options_.quota_rate;
  return std::max(1, static_cast<int>(std::ceil(wait)));
}

HttpResponse DseService::submit(const HttpRequest& request) {
  io::JobSpec spec;
  try {
    spec = io::job_spec_from_json(util::json_parse(request.body));
  } catch (const std::exception& e) {
    return HttpResponse::json(400, error_body(e.what()));
  }

  JobPriority priority = JobPriority::kNormal;
  if (const std::string* header = request.header("x-priority")) {
    try {
      priority = priority_from_string(*header);
    } catch (const std::exception& e) {
      return HttpResponse::json(400, error_body(e.what()));
    }
  }

  const std::string* client_header = request.header("x-client-key");
  const std::string client =
      client_header != nullptr ? *client_header : "default";
  if (const std::optional<int> retry_after = quota_retry_after(client)) {
    HttpResponse response = HttpResponse::json(
        429, error_body("client '" + client + "' over submission quota (" +
                        std::to_string(options_.quota_rate) +
                        "/s); retry later"));
    response.with_header("Retry-After", std::to_string(*retry_after));
    return response;
  }

  char id_buf[32];
  std::snprintf(id_buf, sizeof id_buf, "job-%06llu",
                static_cast<unsigned long long>(
                    next_id_.fetch_add(1) + 1));
  auto job = std::make_shared<JobRecord>(id_buf, std::move(spec), priority);
  spool_spec(*job);
  const std::optional<std::size_t> position = queue_.submit(job);
  if (!position.has_value()) {
    HttpResponse response = HttpResponse::json(
        429, error_body("queue full (depth " +
                        std::to_string(options_.queue_depth) +
                        "); retry later"));
    response.with_header("Retry-After", "1");
    return response;
  }
  // Journal after admission (a refused job needs no recovery) but before
  // the 202: once the client holds an accepted id, the job must survive a
  // crash.
  if (journal_ != nullptr) journal_->record_submitted(*job, priority, client);
  util::log_info() << "serve: accepted " << job->id() << " flow "
                   << job->spec().flow << " seed " << job->spec().seed;
  return HttpResponse::json(
      202, body_of(util::JsonValue(util::JsonObject{
               {"id", job->id()},
               {"state", to_string(job->state())},
               {"priority", to_string(job->priority())},
               {"queue_position", *position}})));
}

HttpResponse DseService::job_status(const std::string& id) const {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  return HttpResponse::json(200, body_of(job->status_json()));
}

HttpResponse DseService::job_events(const HttpRequest& request,
                                    const std::string& id) const {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  std::size_t from = 0;
  if (const auto param = request.query_param("from")) {
    try {
      from = std::stoul(*param);
    } catch (const std::exception&) {
      return HttpResponse::json(400, error_body("bad 'from' parameter"));
    }
  }
  util::JsonArray events;
  for (const ProgressEvent& event : job->events_since(from)) {
    events.push_back(to_json(event));
  }
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::JsonObject{
               {"id", id},
               {"state", to_string(job->state())},
               {"events", std::move(events)},
               {"next", job->event_count()}})));
}

bool DseService::wants_sse(const HttpRequest& request) {
  if (request.method != "GET") return false;
  if (request.path.rfind("/v1/jobs/", 0) != 0) return false;
  if (split_job_path(request.path).tail != "events") return false;
  const std::string* accept = request.header("accept");
  return accept != nullptr &&
         accept->find("text/event-stream") != std::string::npos;
}

std::optional<HttpResponse> DseService::stream_events_sse(
    const HttpRequest& request, const EventSink& sink) {
  const JobPath job_path = split_job_path(request.path);
  const std::shared_ptr<JobRecord> job = queue_.find(job_path.id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + job_path.id));
  }
  std::size_t from = 0;
  if (const auto param = request.query_param("from")) {
    try {
      from = std::stoul(*param);
    } catch (const std::exception&) {
      return HttpResponse::json(400, error_body("bad 'from' parameter"));
    }
  } else if (const std::string* last = request.header("last-event-id")) {
    // SSE reconnect: the browser replays the last id it saw; resume after.
    try {
      from = std::stoul(*last) + 1;
    } catch (const std::exception&) {
      return HttpResponse::json(400, error_body("bad Last-Event-Id header"));
    }
  }

  static util::Counter& streams = util::metric_counter("server.sse.streams");
  static util::Counter& sent = util::metric_counter("server.sse.events");
  streams.add();

  // Poll fast (the GA emits events per generation); heartbeat comments keep
  // idle connections visibly alive through proxies and dead-peer detection.
  constexpr int kPollMs = 25;
  constexpr int kHeartbeatMs = 2000;
  int since_heartbeat = 0;
  for (;;) {
    // Read the state *before* draining events: events are published before
    // the terminal transition, so a terminal state read here guarantees the
    // drain below saw every event.
    const JobState state = job->state();
    bool client_gone = false;
    for (const ProgressEvent& event : job->events_since(from)) {
      std::string frame = "id: " + std::to_string(event.sequence) +
                          "\nevent: progress\ndata: " +
                          flatten(util::json_serialize(to_json(event))) +
                          "\n\n";
      if (!sink(frame)) {
        client_gone = true;
        break;
      }
      from = event.sequence + 1;
      sent.add();
      since_heartbeat = 0;
    }
    if (client_gone) break;
    if (is_terminal(state)) {
      const std::string frame =
          "event: state\ndata: " +
          flatten(util::json_serialize(job->status_json())) + "\n\n";
      sink(frame);
      break;
    }
    if (shutdown_requested()) break;  // drain: close streams cooperatively
    if (since_heartbeat >= kHeartbeatMs) {
      if (!sink(": heartbeat\n\n")) break;
      since_heartbeat = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
    since_heartbeat += kPollMs;
  }
  return std::nullopt;
}

HttpResponse DseService::job_result(const std::string& id) const {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  const JobState state = job->state();
  if (state != JobState::kDone) {
    return HttpResponse::json(
        409, error_body("job " + id + " is " + to_string(state) +
                        ", result not available"));
  }
  return HttpResponse::json(200, body_of(job->result_json()));
}

HttpResponse DseService::job_cancel(const std::string& id) {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  const bool accepted = queue_.cancel(id);
  // A queued job cancels immediately inside the queue (never reaching
  // run_one), so journal its terminal state here.
  if (journal_ != nullptr && is_terminal(job->state())) {
    journal_->record_state(id, job->state());
  }
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::JsonObject{
               {"id", id},
               {"cancelled", accepted},
               {"state", to_string(job->state())}})));
}

HttpResponse DseService::list_jobs() const {
  util::JsonArray jobs;
  for (const auto& job : queue_.jobs()) {
    jobs.push_back(util::JsonValue(util::JsonObject{
        {"id", job->id()},
        {"state", to_string(job->state())},
        {"flow", job->spec().flow},
        {"seed", job->spec().seed}}));
  }
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::JsonObject{
               {"jobs", std::move(jobs)},
               {"queue_depth", queue_.depth()},
               {"sessions", sessions_.size()}})));
}

HttpResponse DseService::metrics() const {
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::metrics_snapshot())));
}

void DseService::spool_spec(const JobRecord& job) const {
  if (options_.spool_dir.empty()) return;
  try {
    io::save_job_spec(options_.spool_dir + "/" + job.id() + ".spec.json",
                      job.spec());
  } catch (const std::exception& e) {
    util::log_warn() << "serve: spooling spec of " << job.id()
                     << " failed: " << e.what();
  }
}

void DseService::spool_result(const JobRecord& job) const {
  if (options_.spool_dir.empty()) return;
  const std::string path =
      options_.spool_dir + "/" + job.id() + ".result.json";
  try {
    std::ofstream out(path);
    out << util::json_serialize(job.result_json()) << '\n';
  } catch (const std::exception& e) {
    util::log_warn() << "serve: spooling result of " << job.id()
                     << " failed: " << e.what();
  }
}

}  // namespace clrearly::server
