#include "server/service.hpp"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace clrearly::server {

namespace {

std::string error_body(const std::string& message) {
  return util::json_serialize(util::JsonValue(
      util::JsonObject{{"error", message}}));
}

std::string body_of(const util::JsonValue& value) {
  return util::json_serialize(value);
}

/// "/v1/jobs/job-000001/result" -> {"job-000001", "result"}; the tail is
/// empty for "/v1/jobs/job-000001".
struct JobPath {
  std::string id;
  std::string tail;
};

JobPath split_job_path(const std::string& path) {
  constexpr const char* kPrefix = "/v1/jobs/";
  JobPath out;
  std::string rest = path.substr(std::string(kPrefix).size());
  const std::size_t slash = rest.find('/');
  out.id = rest.substr(0, slash);
  if (slash != std::string::npos) out.tail = rest.substr(slash + 1);
  return out;
}

}  // namespace

DseService::DseService(ServiceOptions options)
    : options_(std::move(options)),
      sessions_(options_.max_sessions),
      queue_(options_.workers, options_.queue_depth, [this](JobRecord& job) {
        // Session acquisition happens on the worker, not at admission, so
        // LRU order follows execution order and a queued-then-cancelled job
        // never instantiates a session at all.
        std::shared_ptr<ModelSession> session;
        try {
          session = sessions_.acquire(job.spec());
        } catch (const std::exception& e) {
          job.fail(e.what());
          return;
        }
        run_job(job, *session);
        if (job.state() == JobState::kDone) spool_result(job);
      }) {
  if (!options_.spool_dir.empty()) {
    std::filesystem::create_directories(options_.spool_dir);
  }
}

HttpResponse DseService::handle(const HttpRequest& request) {
  try {
    const std::string& path = request.path;
    if (path == "/v1/healthz" && request.method == "GET") {
      return HttpResponse::json(
          200, body_of(util::JsonValue(util::JsonObject{{"status", "ok"}})));
    }
    if (path == "/v1/metrics" && request.method == "GET") return metrics();
    if (path == "/v1/shutdown" && request.method == "POST") {
      request_shutdown();
      return HttpResponse::json(
          200, body_of(util::JsonValue(
                   util::JsonObject{{"state", "shutting_down"}})));
    }
    if (path == "/v1/jobs") {
      if (request.method == "POST") return submit(request);
      if (request.method == "GET") return list_jobs();
      return HttpResponse::json(405, error_body("method not allowed"));
    }
    if (path.rfind("/v1/jobs/", 0) == 0) {
      const JobPath job_path = split_job_path(path);
      if (job_path.id.empty()) {
        return HttpResponse::json(404, error_body("missing job id"));
      }
      if (job_path.tail.empty()) {
        if (request.method != "GET") {
          return HttpResponse::json(405, error_body("method not allowed"));
        }
        return job_status(job_path.id);
      }
      if (job_path.tail == "events" && request.method == "GET") {
        return job_events(request, job_path.id);
      }
      if (job_path.tail == "result" && request.method == "GET") {
        return job_result(job_path.id);
      }
      if (job_path.tail == "cancel" && request.method == "POST") {
        return job_cancel(job_path.id);
      }
      return HttpResponse::json(404, error_body("no such endpoint"));
    }
    return HttpResponse::json(404, error_body("no such endpoint"));
  } catch (const std::exception& e) {
    return HttpResponse::json(500, error_body(e.what()));
  }
}

HttpResponse DseService::submit(const HttpRequest& request) {
  io::JobSpec spec;
  try {
    spec = io::job_spec_from_json(util::json_parse(request.body));
  } catch (const std::exception& e) {
    return HttpResponse::json(400, error_body(e.what()));
  }
  char id_buf[32];
  std::snprintf(id_buf, sizeof id_buf, "job-%06llu",
                static_cast<unsigned long long>(
                    next_id_.fetch_add(1) + 1));
  auto job = std::make_shared<JobRecord>(id_buf, std::move(spec));
  spool_spec(*job);
  const std::optional<std::size_t> position = queue_.submit(job);
  if (!position.has_value()) {
    return HttpResponse::json(
        429, error_body("queue full (depth " +
                        std::to_string(options_.queue_depth) +
                        "); retry later"));
  }
  util::log_info() << "serve: accepted " << job->id() << " flow "
                   << job->spec().flow << " seed " << job->spec().seed;
  return HttpResponse::json(
      202, body_of(util::JsonValue(util::JsonObject{
               {"id", job->id()},
               {"state", to_string(job->state())},
               {"queue_position", *position}})));
}

HttpResponse DseService::job_status(const std::string& id) const {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  return HttpResponse::json(200, body_of(job->status_json()));
}

HttpResponse DseService::job_events(const HttpRequest& request,
                                    const std::string& id) const {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  std::size_t from = 0;
  if (const auto param = request.query_param("from")) {
    try {
      from = std::stoul(*param);
    } catch (const std::exception&) {
      return HttpResponse::json(400, error_body("bad 'from' parameter"));
    }
  }
  util::JsonArray events;
  for (const ProgressEvent& event : job->events_since(from)) {
    events.push_back(to_json(event));
  }
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::JsonObject{
               {"id", id},
               {"state", to_string(job->state())},
               {"events", std::move(events)},
               {"next", job->event_count()}})));
}

HttpResponse DseService::job_result(const std::string& id) const {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  const JobState state = job->state();
  if (state != JobState::kDone) {
    return HttpResponse::json(
        409, error_body("job " + id + " is " + to_string(state) +
                        ", result not available"));
  }
  return HttpResponse::json(200, body_of(job->result_json()));
}

HttpResponse DseService::job_cancel(const std::string& id) {
  const std::shared_ptr<JobRecord> job = queue_.find(id);
  if (job == nullptr) {
    return HttpResponse::json(404, error_body("no such job: " + id));
  }
  const bool accepted = queue_.cancel(id);
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::JsonObject{
               {"id", id},
               {"cancelled", accepted},
               {"state", to_string(job->state())}})));
}

HttpResponse DseService::list_jobs() const {
  util::JsonArray jobs;
  for (const auto& job : queue_.jobs()) {
    jobs.push_back(util::JsonValue(util::JsonObject{
        {"id", job->id()},
        {"state", to_string(job->state())},
        {"flow", job->spec().flow},
        {"seed", job->spec().seed}}));
  }
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::JsonObject{
               {"jobs", std::move(jobs)},
               {"queue_depth", queue_.depth()},
               {"sessions", sessions_.size()}})));
}

HttpResponse DseService::metrics() const {
  return HttpResponse::json(
      200, body_of(util::JsonValue(util::metrics_snapshot())));
}

void DseService::spool_spec(const JobRecord& job) const {
  if (options_.spool_dir.empty()) return;
  try {
    io::save_job_spec(options_.spool_dir + "/" + job.id() + ".spec.json",
                      job.spec());
  } catch (const std::exception& e) {
    util::log_warn() << "serve: spooling spec of " << job.id()
                     << " failed: " << e.what();
  }
}

void DseService::spool_result(const JobRecord& job) const {
  if (options_.spool_dir.empty()) return;
  const std::string path =
      options_.spool_dir + "/" + job.id() + ".result.json";
  try {
    std::ofstream out(path);
    out << util::json_serialize(job.result_json()) << '\n';
  } catch (const std::exception& e) {
    util::log_warn() << "serve: spooling result of " << job.id()
                     << " failed: " << e.what();
  }
}

}  // namespace clrearly::server
