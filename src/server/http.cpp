#include "server/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>

namespace clrearly::server {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Parse the head (request line + header fields) of `buffer[0, header_end)`
/// into `request`; false on a malformed request line.
bool parse_head(const std::string& head, HttpRequest& request) {
  const std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  request.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = request_line.substr(sp2 + 1);
  const std::size_t qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark != std::string::npos) request.query = target.substr(qmark + 1);

  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string value = line.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      const std::size_t last = value.find_last_not_of(" \t");
      value = first == std::string::npos
                  ? std::string()
                  : value.substr(first, last - first + 1);
      request.headers[lower(line.substr(0, colon))] = value;
    }
    pos = eol + 2;
  }
  return true;
}

}  // namespace

std::optional<std::string> HttpRequest::query_param(
    const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (pair.substr(0, eq) == key) {
      return eq == std::string::npos ? std::string() : pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return std::nullopt;
}

const std::string* HttpRequest::header(const std::string& lower_name) const {
  const auto it = headers.find(lower_name);
  return it == headers.end() ? nullptr : &it->second;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("connection");
  if (connection != nullptr) {
    const std::string value = lower(*connection);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version != "HTTP/1.0";  // HTTP/1.1 is persistent by default
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse& HttpResponse::with_header(std::string name, std::string value) {
  headers.emplace_back(std::move(name), std::move(value));
  return *this;
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool RequestReader::fill() {
  char chunk[4096];
  const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
  if (n <= 0) return false;
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return true;
}

std::optional<HttpRequest> RequestReader::next(int idle_timeout_ms) {
  // Wait for the request to start (pipelined bytes may already be buffered).
  // Poll in short slices so a stopping server is noticed promptly.
  if (buffer_.empty()) {
    int waited = 0;
    for (;;) {
      if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
        return std::nullopt;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int slice = std::min(200, idle_timeout_ms - waited);
      if (slice <= 0) return std::nullopt;  // idle timeout
      const int ready = ::poll(&pfd, 1, slice);
      if (ready < 0) return std::nullopt;
      if (ready > 0) break;
      waited += slice;
    }
  }

  // Head: read until the blank line, however recv fragments it.
  std::size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() >= kMaxHeaderBytes) {
      write_response(fd_, HttpResponse::json(
                              431, "{\n  \"error\": \"headers too large\"\n}"));
      return std::nullopt;
    }
    if (!fill()) return std::nullopt;
  }

  HttpRequest request;
  if (!parse_head(buffer_.substr(0, header_end), request)) return std::nullopt;

  std::size_t content_length = 0;
  if (const std::string* declared = request.header("content-length")) {
    const char* begin = declared->data();
    const char* end = begin + declared->size();
    const auto [ptr, ec] = std::from_chars(begin, end, content_length);
    if (ec != std::errc() || ptr != end) return std::nullopt;
  }
  if (content_length > kMaxBodyBytes) {
    write_response(
        fd_, HttpResponse::json(413, "{\n  \"error\": \"body too large\"\n}"));
    return std::nullopt;
  }

  // Body: loop until every declared byte has arrived — a slow writer may
  // deliver the body long after the head, in arbitrarily small pieces.
  const std::size_t body_start = header_end + 4;
  while (buffer_.size() - body_start < content_length) {
    if (!fill()) return std::nullopt;
  }
  request.body = buffer_.substr(body_start, content_length);
  // Keep any pipelined bytes beyond this request for the next call.
  buffer_.erase(0, body_start + content_length);
  return request;
}

std::optional<HttpRequest> read_request(int fd) {
  RequestReader reader(fd);
  return reader.next(/*idle_timeout_ms=*/kKeepAliveIdleMs);
}

bool write_response(int fd, const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += "\r\n" + name + ": " + value;
  }
  out += std::string("\r\nConnection: ") + (keep_alive ? "keep-alive" : "close") +
         "\r\n\r\n" + response.body;
  return write_all(fd, out.data(), out.size());
}

bool write_stream_headers(int fd, const std::string& content_type) {
  const std::string out =
      "HTTP/1.1 200 OK\r\nContent-Type: " + content_type +
      "\r\nCache-Control: no-store\r\nTransfer-Encoding: chunked\r\n"
      "Connection: close\r\n\r\n";
  return write_all(fd, out.data(), out.size());
}

bool write_chunk(int fd, const std::string& data) {
  if (data.empty()) return true;  // an empty chunk would terminate the stream
  char size_line[32];
  const int n = std::snprintf(size_line, sizeof size_line, "%zx\r\n",
                              data.size());
  std::string out(size_line, static_cast<std::size_t>(n));
  out += data;
  out += "\r\n";
  return write_all(fd, out.data(), out.size());
}

bool write_last_chunk(int fd) { return write_all(fd, "0\r\n\r\n", 5); }

Listener::Listener(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("server: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("server: bad listen address: " + host);
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    throw std::runtime_error(std::string("server: bind failed: ") +
                             std::strerror(err));
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    throw std::runtime_error(std::string("server: listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

Listener::~Listener() { close(); }

int Listener::accept_once(int timeout_ms) {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return -1;
  // A stuck or malicious client must not wedge a handler thread forever.
  timeval timeout{};
  timeout.tv_sec = 30;
  ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
  return client;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace clrearly::server
