// Job model of the serve daemon: one JobRecord per submitted JobSpec, one
// ModelSession per distinct model key, and the runner that executes a job
// against its session.
//
// Sessions are the cross-request cache-sharing mechanism. A ModelSession
// owns a DseMethodology plus lazily built fcCLR/pfCLR problem instances;
// every job whose JobSpec::model_key() matches runs over the *same* problem
// objects, so the memoized genome-fitness caches (and, at session build
// time, the process-wide chain-solve cache) stay warm across requests.
// Because fitness is a pure function of the genome and the flows take the
// identical code path as the offline CLI, shared sessions change throughput,
// never results — an HTTP job is bit-identical to `clrearly dse` with the
// same spec and seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dse.hpp"
#include "io/serialize.hpp"
#include "util/json.hpp"

namespace clrearly::server {

/// Thrown out of the per-generation progress hook to abort a running GA —
/// the sanctioned early-termination path (see moea::ProgressHook).
struct JobCancelled : std::runtime_error {
  JobCancelled() : std::runtime_error("job cancelled") {}
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state) noexcept;
bool is_terminal(JobState state) noexcept;

/// One per-generation progress sample (mirrors moea::GenerationProgress,
/// plus which GA stage of a multi-stage flow produced it).
struct ProgressEvent {
  std::size_t sequence = 0;     ///< 0-based event index within the job
  std::string stage;            ///< "fcclr" | "pfclr" | "tdse" | ...
  std::size_t generation = 0;
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  std::size_t front_size = 0;
  double hv_proxy = 0.0;
};

util::JsonValue to_json(const ProgressEvent& event);

/// Hit/miss deltas of the two DSE memo caches over one job's execution,
/// measured from lifetime_cache_stats(). Under concurrent jobs the deltas
/// include the neighbours' traffic (the counters are process-wide); they are
/// reported for observability, and the smoke tests that assert on them run
/// jobs back-to-back where the attribution is exact.
struct CacheDelta {
  std::uint64_t fitness_hits = 0;
  std::uint64_t fitness_misses = 0;
  std::uint64_t chain_hits = 0;
  std::uint64_t chain_misses = 0;
};

util::JsonValue to_json(const CacheDelta& delta);

/// Snapshot the two cache counters' current totals (for delta computation).
CacheDelta cache_counters_now();

/// Everything a finished job reports.
struct JobResult {
  core::DseOutcome outcome;
  CacheDelta cache;          ///< counter deltas over this job's execution
  double wall_seconds = 0.0;
};

/// One submitted job. Mutable state (state machine, progress events, result,
/// error) is guarded by an internal mutex; the spec is immutable after
/// construction. Cancellation is cooperative: request_cancel() latches a
/// flag that the runner's progress hook polls between generations.
class JobRecord {
 public:
  JobRecord(std::string id, io::JobSpec spec);

  const std::string& id() const noexcept { return id_; }
  const io::JobSpec& spec() const noexcept { return spec_; }

  JobState state() const;
  /// Queued -> running; returns false (no-op) if the job is no longer
  /// queued (e.g. it was cancelled while waiting).
  bool try_start();
  void finish(JobResult result);              ///< running -> done
  void fail(const std::string& error);        ///< running/queued -> failed
  void cancel();                              ///< any non-terminal -> cancelled

  void request_cancel() noexcept { cancel_requested_.store(true); }
  bool cancel_requested() const noexcept { return cancel_requested_.load(); }

  void push_event(ProgressEvent event);
  /// Events with sequence >= `from` (bounded copy).
  std::vector<ProgressEvent> events_since(std::size_t from) const;
  std::size_t event_count() const;

  /// Status document for GET /v1/jobs/{id}: id, state, latest progress,
  /// error (when failed), cache/wall stats (when done).
  util::JsonValue status_json() const;
  /// Result document for GET /v1/jobs/{id}/result; throws std::logic_error
  /// unless the job is done.
  util::JsonValue result_json() const;

 private:
  const std::string id_;
  const io::JobSpec spec_;

  mutable std::mutex mutex_;
  JobState state_ = JobState::kQueued;
  std::vector<ProgressEvent> events_;
  std::optional<JobResult> result_;
  std::string error_;
  std::atomic<bool> cancel_requested_{false};
};

/// Lazily built per-model execution context shared by all jobs with the
/// same model key. Problem construction is serialized by an internal mutex;
/// the problems themselves are internally synchronized (their caches are
/// thread-safe) so concurrent jobs may evaluate against one instance.
class ModelSession {
 public:
  /// `spec` donates the model half (application, architecture, scenario,
  /// objectives, QoS, tDSE ladder). Jobs routed here must share the model
  /// key, so any of them describes the same session.
  explicit ModelSession(const io::JobSpec& spec);

  const core::DseMethodology& methodology() const noexcept {
    return methodology_;
  }

  /// The shared problems (built on first use; pf runs tDSE once).
  const core::ClrMappingProblem& fc_problem();
  const core::ClrMappingProblem& pf_problem();
  /// k-resilient problem for the kresilient flow. The resilience spec is
  /// part of the model key, so every job routed here asks for the same one.
  const core::ResilientProblem& resilient_problem();

  /// LRU bookkeeping for SessionCache.
  std::uint64_t last_used() const noexcept { return last_used_.load(); }
  void touch(std::uint64_t tick) noexcept { last_used_.store(tick); }

 private:
  core::DseOptions model_options_;  ///< model half only; seed/ga unused
  core::DseMethodology methodology_;

  std::mutex mutex_;
  std::optional<core::ClrMappingProblem> fc_;
  std::optional<core::ClrMappingProblem> pf_;
  std::optional<core::ResilientProblem> resilient_;
  std::optional<std::vector<core::TdseResult>> tdse_;
  std::atomic<std::uint64_t> last_used_{0};
};

/// Bounded model-key -> ModelSession map with LRU eviction. Sessions are
/// handed out as shared_ptr so eviction never pulls a problem out from under
/// a running job.
class SessionCache {
 public:
  explicit SessionCache(std::size_t max_sessions);

  /// Session for `spec`'s model key, creating (and possibly evicting) as
  /// needed.
  std::shared_ptr<ModelSession> acquire(const io::JobSpec& spec);

  std::size_t size() const;

 private:
  const std::size_t max_sessions_;
  mutable std::mutex mutex_;
  std::uint64_t tick_ = 0;
  std::vector<std::pair<std::string, std::shared_ptr<ModelSession>>> sessions_;
};

/// Execute `job` against `session`: flow dispatch, progress events,
/// cooperative cancellation, cache-delta accounting, state transitions.
/// Never throws — failures land in the record as kFailed/kCancelled.
void run_job(JobRecord& job, ModelSession& session);

}  // namespace clrearly::server
