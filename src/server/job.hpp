// Job model of the serve daemon: one JobRecord per submitted JobSpec, one
// ModelSession per distinct model key, and the runner that executes a job
// against its session.
//
// Sessions are the cross-request cache-sharing mechanism. A ModelSession
// owns a DseMethodology plus lazily built fcCLR/pfCLR problem instances;
// every job whose JobSpec::model_key() matches runs over the *same* problem
// objects, so the memoized genome-fitness caches (and, at session build
// time, the process-wide chain-solve cache) stay warm across requests.
// Because fitness is a pure function of the genome and the flows take the
// identical code path as the offline CLI, shared sessions change throughput,
// never results — an HTTP job is bit-identical to `clrearly dse` with the
// same spec and seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dse.hpp"
#include "io/serialize.hpp"
#include "util/json.hpp"

namespace clrearly::server {

/// Thrown out of the per-generation progress hook to abort a running GA —
/// the sanctioned early-termination path (see moea::ProgressHook).
struct JobCancelled : std::runtime_error {
  JobCancelled() : std::runtime_error("job cancelled") {}
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state) noexcept;
bool is_terminal(JobState state) noexcept;
/// Inverse of to_string; throws std::invalid_argument on an unknown tag
/// (the journal replayer wants loud failures, not silent defaults).
JobState job_state_from_string(const std::string& name);

/// Two-level scheduling class, chosen per request via the X-Priority
/// header: high-priority jobs always dequeue before normal ones.
enum class JobPriority { kHigh, kNormal };

const char* to_string(JobPriority priority) noexcept;
JobPriority priority_from_string(const std::string& name);

/// One per-generation progress sample (mirrors moea::GenerationProgress,
/// plus which GA stage of a multi-stage flow produced it).
struct ProgressEvent {
  std::size_t sequence = 0;     ///< 0-based event index within the job
  std::string stage;            ///< "fcclr" | "pfclr" | "tdse" | ...
  std::size_t generation = 0;
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  std::size_t front_size = 0;
  double hv_proxy = 0.0;
};

util::JsonValue to_json(const ProgressEvent& event);

/// Hit/miss deltas of the two DSE memo caches over one job's execution,
/// measured from lifetime_cache_stats(). Under concurrent jobs the deltas
/// include the neighbours' traffic (the counters are process-wide); they are
/// reported for observability, and the smoke tests that assert on them run
/// jobs back-to-back where the attribution is exact.
struct CacheDelta {
  std::uint64_t fitness_hits = 0;
  std::uint64_t fitness_misses = 0;
  std::uint64_t chain_hits = 0;
  std::uint64_t chain_misses = 0;
};

util::JsonValue to_json(const CacheDelta& delta);

/// Snapshot the two cache counters' current totals (for delta computation).
CacheDelta cache_counters_now();

/// Everything a finished job reports.
struct JobResult {
  core::DseOutcome outcome;
  CacheDelta cache;          ///< counter deltas over this job's execution
  double wall_seconds = 0.0;
};

/// One submitted job. Mutable state (state machine, progress events, result,
/// error) is guarded by an internal mutex; the spec is immutable after
/// construction. Cancellation is cooperative: request_cancel() latches a
/// flag that the runner's progress hook polls between generations.
class JobRecord {
 public:
  JobRecord(std::string id, io::JobSpec spec,
            JobPriority priority = JobPriority::kNormal);

  const std::string& id() const noexcept { return id_; }
  const io::JobSpec& spec() const noexcept { return spec_; }
  JobPriority priority() const noexcept { return priority_; }

  JobState state() const;
  /// Queued -> running; returns false (no-op) if the job is no longer
  /// queued (e.g. it was cancelled while waiting).
  bool try_start();
  void finish(JobResult result);              ///< running -> done
  void fail(const std::string& error);        ///< running/queued -> failed
  void cancel();                              ///< any non-terminal -> cancelled

  void request_cancel() noexcept { cancel_requested_.store(true); }
  bool cancel_requested() const noexcept { return cancel_requested_.load(); }

  void push_event(ProgressEvent event);
  /// Events with sequence >= `from` (bounded copy).
  std::vector<ProgressEvent> events_since(std::size_t from) const;
  std::size_t event_count() const;

  /// Status document for GET /v1/jobs/{id}: id, state, latest progress,
  /// error (when failed), cache/wall stats (when done).
  util::JsonValue status_json() const;
  /// Result document for GET /v1/jobs/{id}/result; throws std::logic_error
  /// unless the job is done.
  util::JsonValue result_json() const;

 private:
  const std::string id_;
  const io::JobSpec spec_;
  const JobPriority priority_;

  mutable std::mutex mutex_;
  JobState state_ = JobState::kQueued;
  std::vector<ProgressEvent> events_;
  std::optional<JobResult> result_;
  std::string error_;
  std::atomic<bool> cancel_requested_{false};
};

/// Lazily built per-model execution context shared by all jobs with the
/// same model key. Problem construction is serialized by an internal mutex;
/// the problems themselves are internally synchronized (their caches are
/// thread-safe) so concurrent jobs may evaluate against one instance.
class ModelSession {
 public:
  /// `spec` donates the model half (application, architecture, scenario,
  /// objectives, QoS, tDSE ladder). Jobs routed here must share the model
  /// key, so any of them describes the same session.
  explicit ModelSession(const io::JobSpec& spec);

  const core::DseMethodology& methodology() const noexcept {
    return methodology_;
  }

  /// The shared problems (built on first use; pf runs tDSE once).
  const core::ClrMappingProblem& fc_problem();
  const core::ClrMappingProblem& pf_problem();
  /// k-resilient problem for the kresilient flow. The resilience spec is
  /// part of the model key, so every job routed here asks for the same one.
  const core::ResilientProblem& resilient_problem();

  /// LRU bookkeeping for SessionCache.
  std::uint64_t last_used() const noexcept { return last_used_.load(); }
  void touch(std::uint64_t tick) noexcept { last_used_.store(tick); }

  /// Pin refcount: a session with active jobs must never be evicted from
  /// the SessionCache index — a same-key job submitted meanwhile would
  /// otherwise rebuild a second session and lose the shared fitness cache
  /// (and the per-job cache-delta assertions built on it).
  void pin() noexcept { pins_.fetch_add(1, std::memory_order_relaxed); }
  void unpin() noexcept { pins_.fetch_sub(1, std::memory_order_relaxed); }
  int pins() const noexcept { return pins_.load(std::memory_order_relaxed); }

 private:
  core::DseOptions model_options_;  ///< model half only; seed/ga unused
  core::DseMethodology methodology_;

  std::mutex mutex_;
  std::optional<core::ClrMappingProblem> fc_;
  std::optional<core::ClrMappingProblem> pf_;
  std::optional<core::ResilientProblem> resilient_;
  std::optional<std::vector<core::TdseResult>> tdse_;
  std::atomic<std::uint64_t> last_used_{0};
  std::atomic<int> pins_{0};
};

/// Bounded model-key -> ModelSession map with LRU eviction. Sessions are
/// handed out as pinned leases: while any job holds a lease, the session
/// stays in the index (eviction considers only unpinned sessions, growing
/// past max_sessions transiently when every session is busy), so a running
/// job's session is never rebuilt mid-run and same-key jobs keep sharing
/// one fitness cache.
class SessionCache {
 public:
  /// RAII pin on a session. Movable; releases the pin on destruction.
  class Lease {
   public:
    Lease() = default;
    explicit Lease(std::shared_ptr<ModelSession> session)
        : session_(std::move(session)) {}
    Lease(Lease&& other) noexcept : session_(std::move(other.session_)) {}
    Lease& operator=(Lease&& other) noexcept {
      release();
      session_ = std::move(other.session_);
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    ModelSession* get() const noexcept { return session_.get(); }
    ModelSession& operator*() const noexcept { return *session_; }
    ModelSession* operator->() const noexcept { return session_.get(); }
    explicit operator bool() const noexcept { return session_ != nullptr; }

   private:
    void release() noexcept {
      if (session_ != nullptr) session_->unpin();
      session_.reset();
    }
    std::shared_ptr<ModelSession> session_;
  };

  explicit SessionCache(std::size_t max_sessions);

  /// Pinned session for `spec`'s model key, creating (and possibly evicting
  /// an *unpinned* LRU session) as needed.
  Lease acquire(const io::JobSpec& spec);

  std::size_t size() const;

 private:
  const std::size_t max_sessions_;
  mutable std::mutex mutex_;
  std::uint64_t tick_ = 0;
  std::vector<std::pair<std::string, std::shared_ptr<ModelSession>>> sessions_;
};

/// Execute `job` against `session`: flow dispatch, progress events,
/// cooperative cancellation, cache-delta accounting, state transitions.
/// Never throws — failures land in the record as kFailed/kCancelled.
void run_job(JobRecord& job, ModelSession& session);

}  // namespace clrearly::server
