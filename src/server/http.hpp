// Minimal dependency-free HTTP/1.1 plumbing for the serve daemon: a blocking
// listener plus request/response framing over POSIX sockets. Deliberately
// small — one request per connection (Connection: close), Content-Length
// bodies only (no chunked transfer), JSON in and JSON out. The routing layer
// (server/service.hpp) works on the parsed structs and never touches a
// socket, so it is unit-testable without networking.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

namespace clrearly::server {

/// One parsed request. Header names are lower-cased on parse; target is
/// split into path and raw query string ("/v1/jobs/7/events?from=3").
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< decoded-enough path ("/v1/jobs/7")
  std::string query;   ///< raw query string without '?', may be empty
  std::map<std::string, std::string> headers;
  std::string body;

  /// Value of a query parameter ("from" in "?from=3"), or nullopt.
  std::optional<std::string> query_param(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(int status, std::string body);
};

/// Reason phrase for the handful of status codes the service emits.
const char* status_text(int status) noexcept;

/// Parse limits — a request exceeding them is answered 413/431 and dropped.
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

/// Read one request from a connected socket. Returns nullopt on EOF before
/// any bytes, malformed framing, timeout or oversize (after best-effort
/// writing an error response for the latter two).
std::optional<HttpRequest> read_request(int fd);

/// Serialize and write a response; returns false on a short write.
bool write_response(int fd, const HttpResponse& response);

/// Blocking TCP listener. Construction binds and listens; port 0 picks an
/// ephemeral port (read it back via port()). accept() polls with a short
/// timeout so callers can observe a stop flag between connections.
class Listener {
 public:
  Listener(const std::string& host, int port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const noexcept { return port_; }

  /// Accept one connection, waiting at most `timeout_ms`. Returns the
  /// connected fd (with a receive timeout already set) or -1 on timeout.
  int accept_once(int timeout_ms);

  /// Close the listening socket; subsequent accept_once calls return -1.
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace clrearly::server
