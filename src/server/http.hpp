// Minimal dependency-free HTTP/1.1 plumbing for the serve daemon: a blocking
// listener plus request/response framing over POSIX sockets. Connections are
// persistent by default (HTTP/1.1 keep-alive with pipelining support via a
// per-connection read buffer); Content-Length bodies only on the request
// side, with chunked transfer-encoding available on the response side for
// SSE progress streams. The routing layer (server/service.hpp) works on the
// parsed structs and never touches a socket, so it is unit-testable without
// networking.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace clrearly::server {

/// One parsed request. Header names are lower-cased on parse; target is
/// split into path and raw query string ("/v1/jobs/7/events?from=3").
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string path;     ///< decoded-enough path ("/v1/jobs/7")
  std::string query;    ///< raw query string without '?', may be empty
  std::string version;  ///< "HTTP/1.1" | "HTTP/1.0"
  std::map<std::string, std::string> headers;
  std::string body;

  /// Value of a query parameter ("from" in "?from=3"), or nullopt.
  std::optional<std::string> query_param(const std::string& key) const;

  /// Header value by lower-cased name, or nullptr when absent.
  const std::string* header(const std::string& lower_name) const;

  /// Connection persistence the client asked for: HTTP/1.1 defaults to
  /// keep-alive unless "Connection: close"; HTTP/1.0 defaults to close
  /// unless "Connection: keep-alive".
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. Retry-After on 429), written verbatim.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse json(int status, std::string body);
  HttpResponse& with_header(std::string name, std::string value);
};

/// Reason phrase for the handful of status codes the service emits.
const char* status_text(int status) noexcept;

/// Parse limits — a request exceeding them is answered 413/431 and dropped.
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

/// Keep-alive policy: a connection serves at most this many requests, and
/// is closed after this much idle time between requests.
inline constexpr std::size_t kMaxRequestsPerConnection = 100;
inline constexpr int kKeepAliveIdleMs = 5000;

/// Buffered per-connection request reader. Owns the leftover bytes between
/// requests, so pipelined requests (several requests in one TCP segment) and
/// bodies split across recv(2) boundaries are both framed correctly: next()
/// loops until the declared Content-Length bytes have arrived (16MB cap)
/// before returning a request, however the kernel fragments them.
class RequestReader {
 public:
  /// `stop` (optional) is polled while waiting for a request to start, so a
  /// stopping server regains its handler threads without waiting out the
  /// full idle timeout.
  explicit RequestReader(int fd, const std::atomic<bool>* stop = nullptr)
      : fd_(fd), stop_(stop) {}

  /// Read one request, waiting at most `idle_timeout_ms` for its first byte
  /// (an already-buffered pipelined request returns immediately). Returns
  /// nullopt on EOF, malformed framing, timeout, stop, or oversize (after
  /// best-effort writing an error response for oversize).
  std::optional<HttpRequest> next(int idle_timeout_ms);

 private:
  /// recv() more bytes into buffer_; false on EOF/error.
  bool fill();

  int fd_;
  const std::atomic<bool>* stop_;
  std::string buffer_;
};

/// Read one request from a connected socket (single-request convenience
/// wrapper over RequestReader; leftover pipelined bytes are discarded).
std::optional<HttpRequest> read_request(int fd);

/// Serialize and write a response; `keep_alive` selects the Connection
/// header. Returns false on a short write.
bool write_response(int fd, const HttpResponse& response,
                    bool keep_alive = false);

/// Chunked-response plumbing for SSE streams: write_stream_headers() opens a
/// "Transfer-Encoding: chunked" response (Connection: close — a stream is
/// the connection's last exchange), write_chunk() frames one chunk, and
/// write_last_chunk() terminates the stream. All return false once the
/// client is gone.
bool write_stream_headers(int fd, const std::string& content_type);
bool write_chunk(int fd, const std::string& data);
bool write_last_chunk(int fd);

/// Blocking TCP listener. Construction binds and listens; port 0 picks an
/// ephemeral port (read it back via port()). accept() polls with a short
/// timeout so callers can observe a stop flag between connections.
class Listener {
 public:
  Listener(const std::string& host, int port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const noexcept { return port_; }

  /// Accept one connection, waiting at most `timeout_ms`. Returns the
  /// connected fd (with a receive timeout already set) or -1 on timeout.
  int accept_once(int timeout_ms);

  /// Close the listening socket; subsequent accept_once calls return -1.
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace clrearly::server
