// Crash-safe persistent job journal for the serve daemon.
//
// An append-only `journal.jsonl` (one JSON record per line, fsync'd after
// every append) records each job's admission — with its full, resolved
// JobSpec via the versioned wire format (src/io/serialize.*) — and every
// state transition (queued -> running -> done | failed | cancelled). On
// startup the daemon replays the journal and re-enqueues every job whose
// last recorded state is non-terminal, in original submission order, so a
// SIGKILL'd daemon resumes its queue and produces bit-identical results
// (same spec -> same model key -> same deterministic search).
//
// Durability contract:
//  * each record carries its own version tag ("v": 1); records with an
//    unknown version are skipped (counted, warned) rather than aborting
//    the replay — a v2 writer never silently corrupts a v1 reader;
//  * a torn final record (the crash happened mid-append) is detected by
//    its failed JSON parse and dropped; every earlier record replays;
//  * once the file grows past `compact_bytes`, the journal is compacted:
//    rewritten to hold only the admission records of still-live jobs
//    (terminal jobs' results are already spooled as {id}.result.json),
//    via write-to-temp + fsync + atomic rename.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "server/job.hpp"

namespace clrearly::server {

/// One journal record version. Readers skip records tagged with a version
/// they do not understand.
inline constexpr int kJournalRecordVersion = 1;

/// Everything replay() recovers about one journaled job.
struct JournalEntry {
  std::string id;
  io::JobSpec spec;
  JobPriority priority = JobPriority::kNormal;
  std::string client;  ///< admission client key (quota accounting)
  JobState last_state = JobState::kQueued;
  std::uint64_t seq = 0;  ///< submission order (monotone per journal)
};

struct JournalReplayStats {
  std::size_t records = 0;          ///< well-formed records applied
  std::size_t dropped_torn = 0;     ///< truncated/corrupt trailing records
  std::size_t skipped_version = 0;  ///< records with an unknown "v"
  std::size_t skipped_orphan = 0;   ///< state records for unknown job ids
};

class JobJournal {
 public:
  /// Opens (creating if needed) the journal at `path` for appending.
  /// `compact_bytes` is the size threshold past which an append triggers
  /// compaction (0 disables compaction).
  JobJournal(std::string path, std::size_t compact_bytes);
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Parse `path` into per-job entries in submission order. Tolerates a
  /// missing file (empty result) and a torn trailing record (dropped).
  static std::vector<JournalEntry> replay(const std::string& path,
                                          JournalReplayStats* stats = nullptr);

  /// Seed the in-memory live-job table from a replay (call once, before the
  /// first append) so compaction preserves jobs admitted by a previous
  /// incarnation. Terminal entries are dropped from the table — compaction
  /// forgets them; their results live in the spool.
  void seed(const std::vector<JournalEntry>& entries);

  /// Record an admission: the full resolved spec plus priority and client
  /// key. fsync'd before returning, so an acked 202 is never lost.
  void record_submitted(const JobRecord& job, JobPriority priority,
                        const std::string& client);

  /// Record a state transition. No-ops when `state` equals the last state
  /// recorded for `id` (idempotent — the drain path re-reports states).
  void record_state(const std::string& id, JobState state);

  std::size_t bytes_written() const;

 private:
  struct LiveJob {
    std::string spec_json;  ///< serialized wire-format spec
    JobPriority priority = JobPriority::kNormal;
    std::string client;
    JobState state = JobState::kQueued;
    std::uint64_t seq = 0;
  };

  void append_locked(const std::string& line);
  void compact_locked();
  void open_locked(const char* mode);

  const std::string path_;
  const std::size_t compact_bytes_;

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, LiveJob> live_;  ///< non-terminal jobs only
};

}  // namespace clrearly::server
