// The socket front of the serve daemon: a Listener plus a small pool of
// handler threads, each looping accept -> per-connection request loop ->
// DseService::handle -> respond. Connections are persistent (HTTP/1.1
// keep-alive with pipelining) up to a per-connection request bound and an
// idle timeout; SSE requests switch the connection into a chunked
// event-stream and close it afterwards. Start/stop are explicit so the CLI
// can interleave the serving loop with signal polling and graceful drain.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "server/http.hpp"
#include "server/service.hpp"

namespace clrearly::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 8080;  ///< 0 picks an ephemeral port (see HttpServer::port())
  std::size_t handler_threads = 4;
  /// Requests served over one keep-alive connection before the server
  /// closes it (bounds how long one client can monopolize a handler).
  std::size_t max_requests_per_connection = kMaxRequestsPerConnection;
  /// How long a keep-alive connection may sit idle between requests.
  int idle_timeout_ms = kKeepAliveIdleMs;
};

class HttpServer {
 public:
  /// Binds and listens immediately (throws on failure); call start() to
  /// begin accepting. `service` must outlive the server.
  HttpServer(DseService& service, ServerOptions options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  int port() const noexcept { return listener_.port(); }

  void start();

  /// Stop accepting connections and join the handler threads. In-flight
  /// requests finish (their responses are cheap — job execution happens on
  /// the queue's workers, not here); keep-alive loops and SSE streams
  /// notice the stop flag and wind down. Idempotent.
  void stop();

 private:
  void handler_loop();
  /// Serve every request of one accepted connection; closes `fd`.
  void serve_connection(int fd);

  DseService& service_;
  Listener listener_;
  const ServerOptions options_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> handlers_;
};

}  // namespace clrearly::server
