// The socket front of the serve daemon: a Listener plus a small pool of
// handler threads, each looping accept -> parse -> DseService::handle ->
// respond (one request per connection). Start/stop are explicit so the CLI
// can interleave the serving loop with signal polling and graceful drain.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "server/http.hpp"
#include "server/service.hpp"

namespace clrearly::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 8080;  ///< 0 picks an ephemeral port (see HttpServer::port())
  std::size_t handler_threads = 4;
};

class HttpServer {
 public:
  /// Binds and listens immediately (throws on failure); call start() to
  /// begin accepting. `service` must outlive the server.
  HttpServer(DseService& service, ServerOptions options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  int port() const noexcept { return listener_.port(); }

  void start();

  /// Stop accepting connections and join the handler threads. In-flight
  /// requests finish (their responses are cheap — job execution happens on
  /// the queue's workers, not here). Idempotent.
  void stop();

 private:
  void handler_loop();

  DseService& service_;
  Listener listener_;
  std::size_t handler_threads_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> handlers_;
};

}  // namespace clrearly::server
