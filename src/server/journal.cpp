#include "server/journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace clrearly::server {

namespace {

/// Flush stdio buffers and fsync the fd — the record must survive SIGKILL
/// the moment the append returns.
void flush_and_sync(std::FILE* file) {
  if (file == nullptr) return;
  std::fflush(file);
  ::fsync(::fileno(file));
}

std::string submitted_line(const std::string& id, const std::string& spec_json,
                           JobPriority priority, const std::string& client,
                           std::uint64_t seq) {
  // The spec is embedded as its canonical wire-format JSON; the record
  // itself is one line (json_serialize is multi-line, so the line is
  // assembled by hand from already-serialized parts).
  util::JsonObject head{{"v", kJournalRecordVersion},
                        {"type", "submit"},
                        {"seq", static_cast<double>(seq)},
                        {"id", id},
                        {"priority", to_string(priority)},
                        {"client", client}};
  std::string line = util::json_serialize(util::JsonValue(std::move(head)));
  // Splice the spec into the object: drop the closing brace, append.
  const std::size_t brace = line.rfind('}');
  line.resize(brace);
  line += ",\"spec\": " + spec_json + "}";
  // One record per line: the JSON writer indents with newlines; collapse.
  std::string flat;
  flat.reserve(line.size());
  for (char c : line) {
    if (c != '\n') flat.push_back(c);
  }
  return flat;
}

std::string state_line(const std::string& id, JobState state) {
  util::JsonObject record{{"v", kJournalRecordVersion},
                          {"type", "state"},
                          {"id", id},
                          {"state", to_string(state)}};
  std::string line = util::json_serialize(util::JsonValue(std::move(record)));
  std::string flat;
  flat.reserve(line.size());
  for (char c : line) {
    if (c != '\n') flat.push_back(c);
  }
  return flat;
}

}  // namespace

JobJournal::JobJournal(std::string path, std::size_t compact_bytes)
    : path_(std::move(path)), compact_bytes_(compact_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  open_locked("a");
}

JobJournal::~JobJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    flush_and_sync(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void JobJournal::open_locked(const char* mode) {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), mode);
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  const long pos = std::ftell(file_);
  bytes_ = pos > 0 ? static_cast<std::size_t>(pos) : 0;
  static util::Gauge& gauge = util::metric_gauge("server.journal.bytes");
  gauge.set(static_cast<double>(bytes_));
}

std::vector<JournalEntry> JobJournal::replay(const std::string& path,
                                             JournalReplayStats* stats) {
  JournalReplayStats local;
  JournalReplayStats& out = stats != nullptr ? *stats : local;
  std::vector<JournalEntry> entries;
  std::map<std::string, std::size_t> index;  // id -> entries position

  std::ifstream in(path);
  if (!in) return entries;  // no journal yet: nothing to replay

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    util::JsonValue record;
    try {
      record = util::json_parse(line);
    } catch (const std::exception&) {
      // A torn record can only be the last complete-write failure; anything
      // after it is the same crash's debris. Stop, keep what replayed.
      ++out.dropped_torn;
      util::log_warn() << "journal: dropping torn record in " << path;
      break;
    }
    try {
      const double version = record.number_or("v", 0.0);
      if (static_cast<int>(version) != kJournalRecordVersion) {
        ++out.skipped_version;
        util::log_warn() << "journal: skipping record with unknown version "
                         << version;
        continue;
      }
      const std::string& type = record.at("type").as_string();
      if (type == "submit") {
        JournalEntry entry;
        entry.id = record.at("id").as_string();
        entry.spec = io::job_spec_from_json(record.at("spec"));
        entry.seq = static_cast<std::uint64_t>(record.at("seq").as_number());
        if (const util::JsonValue* priority = record.find("priority")) {
          entry.priority = priority_from_string(priority->as_string());
        }
        if (const util::JsonValue* client = record.find("client")) {
          entry.client = client->as_string();
        }
        index[entry.id] = entries.size();
        entries.push_back(std::move(entry));
        ++out.records;
      } else if (type == "state") {
        const std::string id = record.at("id").as_string();
        const auto it = index.find(id);
        if (it == index.end()) {
          ++out.skipped_orphan;
          continue;
        }
        entries[it->second].last_state =
            job_state_from_string(record.at("state").as_string());
        ++out.records;
      } else {
        ++out.skipped_version;  // unknown record type: same policy as version
      }
    } catch (const std::exception& e) {
      // Well-formed JSON but not a valid record (e.g. a spec whose wire
      // format this build rejects): skip it, keep replaying.
      ++out.skipped_version;
      util::log_warn() << "journal: skipping malformed record: " << e.what();
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const JournalEntry& a, const JournalEntry& b) {
              return a.seq < b.seq;
            });
  return entries;
}

void JobJournal::seed(const std::vector<JournalEntry>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const JournalEntry& entry : entries) {
    next_seq_ = std::max(next_seq_, entry.seq + 1);
    if (is_terminal(entry.last_state)) continue;
    LiveJob live;
    live.spec_json = util::json_serialize(io::to_json(entry.spec));
    live.priority = entry.priority;
    live.client = entry.client;
    live.state = entry.last_state;
    live.seq = entry.seq;
    live_[entry.id] = std::move(live);
  }
  // Rewriting now drops every terminal job recorded by the previous
  // incarnation — restart is the natural compaction point.
  if (!entries.empty()) compact_locked();
}

void JobJournal::record_submitted(const JobRecord& job, JobPriority priority,
                                  const std::string& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  const std::string spec_json =
      util::json_serialize(io::to_json(job.spec()));
  LiveJob live;
  live.spec_json = spec_json;
  live.priority = priority;
  live.client = client;
  live.state = JobState::kQueued;
  live.seq = seq;
  live_[job.id()] = std::move(live);
  append_locked(submitted_line(job.id(), spec_json, priority, client, seq));
}

void JobJournal::record_state(const std::string& id, JobState state) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(id);
  if (it == live_.end()) return;  // unknown or already terminal: nothing new
  if (it->second.state == state) return;
  if (is_terminal(state)) {
    live_.erase(it);
  } else {
    it->second.state = state;
  }
  append_locked(state_line(id, state));
}

std::size_t JobJournal::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void JobJournal::append_locked(const std::string& line) {
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  flush_and_sync(file_);
  bytes_ += line.size() + 1;
  static util::Counter& appends =
      util::metric_counter("server.journal.appends");
  appends.add();
  static util::Gauge& gauge = util::metric_gauge("server.journal.bytes");
  gauge.set(static_cast<double>(bytes_));
  if (compact_bytes_ > 0 && bytes_ > compact_bytes_) compact_locked();
}

void JobJournal::compact_locked() {
  // Rewrite the journal with only the live jobs' admission records (their
  // current non-terminal state is implied: replay re-enqueues them), in
  // submission order, then atomically swap it in. A crash at any point
  // leaves either the old or the new complete journal.
  std::vector<std::pair<std::string, const LiveJob*>> live;
  live.reserve(live_.size());
  for (const auto& [id, job] : live_) live.emplace_back(id, &job);
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.second->seq < b.second->seq;
  });

  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr) {
      util::log_warn() << "journal: compaction failed to open " << tmp;
      return;
    }
    for (const auto& [id, job] : live) {
      const std::string line = submitted_line(id, job->spec_json,
                                              job->priority, job->client,
                                              job->seq);
      std::fwrite(line.data(), 1, line.size(), out);
      std::fputc('\n', out);
      if (job->state != JobState::kQueued) {
        const std::string state = state_line(id, job->state);
        std::fwrite(state.data(), 1, state.size(), out);
        std::fputc('\n', out);
      }
    }
    flush_and_sync(out);
    std::fclose(out);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    util::log_warn() << "journal: compaction rename failed: "
                     << std::strerror(errno);
    std::remove(tmp.c_str());
    return;
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  open_locked("a");
  static util::Counter& compactions =
      util::metric_counter("server.journal.compactions");
  compactions.add();
}

}  // namespace clrearly::server
