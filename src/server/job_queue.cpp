#include "server/job_queue.hpp"

#include <utility>

#include "util/metrics.hpp"

namespace clrearly::server {

namespace {

void set_depth_gauge(std::size_t depth) {
  static util::Gauge& gauge = util::metric_gauge("server.queue_depth");
  gauge.set(static_cast<double>(depth));
}

}  // namespace

JobQueue::JobQueue(std::size_t workers, std::size_t max_depth, Runner runner)
    : max_depth_(max_depth == 0 ? 1 : max_depth), runner_(std::move(runner)) {
  const std::size_t count = workers == 0 ? 1 : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::~JobQueue() { shutdown(true); }

std::optional<std::size_t> JobQueue::submit(std::shared_ptr<JobRecord> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || pending_.size() >= max_depth_) {
      static util::Counter& rejected =
          util::metric_counter("server.jobs.rejected");
      rejected.add();
      return std::nullopt;
    }
    const std::size_t position = pending_.size();
    pending_.push_back(job);
    all_.push_back(job);
    by_id_[job->id()] = std::move(job);
    set_depth_gauge(pending_.size());
    static util::Counter& submitted =
        util::metric_counter("server.jobs.submitted");
    submitted.add();
    cv_.notify_one();
    return position;
  }
}

std::shared_ptr<JobRecord> JobQueue::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<JobRecord>> JobQueue::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return all_;
}

bool JobQueue::cancel(const std::string& id) {
  std::shared_ptr<JobRecord> job = find(id);
  if (job == nullptr || is_terminal(job->state())) return false;
  // Latch the cooperative flag first so a job dequeued concurrently stops at
  // its first progress check; then flip still-queued jobs immediately.
  job->request_cancel();
  if (job->state() == JobState::kQueued) {
    job->cancel();
    static util::Counter& cancelled =
        util::metric_counter("server.jobs.cancelled");
    cancelled.add();
  }
  return true;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void JobQueue::shutdown(bool cancel_pending) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (cancel_pending) {
      for (const auto& job : pending_) {
        if (!is_terminal(job->state())) job->cancel();
      }
      pending_.clear();
      set_depth_gauge(0);
    }
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void JobQueue::worker_loop() {
  for (;;) {
    std::shared_ptr<JobRecord> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping, queue drained
      job = std::move(pending_.front());
      pending_.pop_front();
      set_depth_gauge(pending_.size());
    }
    // Cancelled-while-queued jobs are already terminal; run_job's try_start
    // (or the stub runner) sees a non-queued state and returns.
    runner_(*job);
  }
}

}  // namespace clrearly::server
