#include "server/job_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/metrics.hpp"

namespace clrearly::server {

namespace {

void set_depth_gauge(std::size_t depth) {
  static util::Gauge& gauge = util::metric_gauge("server.queue_depth");
  gauge.set(static_cast<double>(depth));
}

}  // namespace

JobQueue::JobQueue(std::size_t workers, std::size_t max_depth, Runner runner)
    : max_depth_(max_depth == 0 ? 1 : max_depth), runner_(std::move(runner)) {
  const std::size_t count = workers == 0 ? 1 : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::~JobQueue() { shutdown(true); }

std::optional<std::size_t> JobQueue::submit(std::shared_ptr<JobRecord> job,
                                            bool force) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || (!force && waiting_locked() >= max_depth_)) {
      static util::Counter& rejected =
          util::metric_counter("server.jobs.rejected");
      rejected.add();
      return std::nullopt;
    }
    const JobPriority priority = job->priority();
    // Dequeue position across both levels: a high-priority job jumps the
    // whole normal deque; a normal job waits behind everything.
    const std::size_t position = priority == JobPriority::kHigh
                                     ? high_.size()
                                     : waiting_locked();
    deque_for(priority).push_back(job);
    all_.push_back(job);
    by_id_[job->id()] = std::move(job);
    set_depth_gauge(waiting_locked());
    static util::Counter& submitted =
        util::metric_counter("server.jobs.submitted");
    submitted.add();
    cv_.notify_one();
    return position;
  }
}

std::shared_ptr<JobRecord> JobQueue::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<JobRecord>> JobQueue::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return all_;
}

bool JobQueue::cancel(const std::string& id) {
  std::shared_ptr<JobRecord> job;
  bool was_waiting = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    job = it->second;
    if (is_terminal(job->state())) return false;
    // Remove from the waiting deque and cancel under the same lock the
    // workers pop under: either this thread takes the job (immediate
    // cancel, never runs) or a worker already has it (cooperative only) —
    // no window where both believe they own it.
    for (auto* level : {&high_, &normal_}) {
      const auto pos = std::find(level->begin(), level->end(), job);
      if (pos != level->end()) {
        level->erase(pos);
        was_waiting = true;
        break;
      }
    }
    job->request_cancel();
    if (was_waiting) {
      job->cancel();
      set_depth_gauge(waiting_locked());
      static util::Counter& cancelled =
          util::metric_counter("server.jobs.cancelled");
      cancelled.add();
    }
  }
  return true;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_locked();
}

void JobQueue::shutdown(bool cancel_pending) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (cancel_pending) {
      for (auto* level : {&high_, &normal_}) {
        for (const auto& job : *level) {
          if (!is_terminal(job->state())) job->cancel();
        }
        level->clear();
      }
      set_depth_gauge(0);
    }
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void JobQueue::worker_loop() {
  for (;;) {
    std::shared_ptr<JobRecord> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || waiting_locked() > 0; });
      if (waiting_locked() == 0) return;  // stopping, queue drained
      auto& level = high_.empty() ? normal_ : high_;
      job = std::move(level.front());
      level.pop_front();
      set_depth_gauge(waiting_locked());
    }
    // Cancelled-while-queued jobs never reach here (cancel() removes them
    // from the deque); a cooperative cancel latched after the pop is
    // honoured by the runner's progress hook.
    runner_(*job);
  }
}

}  // namespace clrearly::server
