// Two-level priority job queue with a fixed worker pool and bounded
// admission.
//
// Submission is admission-controlled: at most `max_depth` jobs may be
// waiting; beyond that submit() refuses (the HTTP layer turns that into
// 429 Too Many Requests) so an overloaded daemon degrades by shedding load
// instead of growing an unbounded backlog. Jobs carry a JobPriority; workers
// always drain the high-priority deque before the normal one, and within a
// level strictly FIFO. Workers are plain std::threads (not the
// util::ThreadPool — they block on a condition variable between jobs, and
// each job's GA internally fans out through the pool already).
//
// Cancellation is race-free: the waiting deques are searched and the queued
// job flipped to cancelled under the same mutex the workers pop under, so a
// cancel can never report "cancelled while queued" for a job a worker is
// about to (or already did) start. Jobs already popped get the cooperative
// cancel request only.
//
// The runner is injected so tests can exercise queueing, admission and
// cancellation with a stub instead of a full DSE run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/job.hpp"

namespace clrearly::server {

class JobQueue {
 public:
  using Runner = std::function<void(JobRecord&)>;

  /// Starts `workers` threads immediately. `max_depth` bounds *waiting*
  /// jobs (running ones don't count against it).
  JobQueue(std::size_t workers, std::size_t max_depth, Runner runner);
  ~JobQueue();
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue into the deque matching `job->priority()`; returns the 0-based
  /// dequeue position across both levels, or nullopt when the queue is full
  /// or shutting down (caller decides the status code). `force` bypasses
  /// the depth bound — journal replay must re-admit every interrupted job
  /// even when there are more of them than a live client could submit.
  std::optional<std::size_t> submit(std::shared_ptr<JobRecord> job,
                                    bool force = false);

  /// Look a job up by id (jobs stay addressable after completion).
  std::shared_ptr<JobRecord> find(const std::string& id) const;

  /// Snapshot of every known job, submission order.
  std::vector<std::shared_ptr<JobRecord>> jobs() const;

  /// Cancel by id. Still-waiting jobs are removed from their deque and flip
  /// to cancelled immediately — atomically with respect to worker pops, so
  /// the reported state is truthful. Running jobs get a cooperative cancel
  /// request. False when the id is unknown or the job already reached a
  /// terminal state.
  bool cancel(const std::string& id);

  std::size_t depth() const;  ///< currently waiting jobs (both levels)

  /// Stop accepting work and join the workers. Running jobs are always
  /// drained to completion; queued jobs are cancelled when `cancel_pending`,
  /// otherwise executed first. Idempotent.
  void shutdown(bool cancel_pending);

 private:
  void worker_loop();
  std::size_t waiting_locked() const {
    return high_.size() + normal_.size();
  }
  std::deque<std::shared_ptr<JobRecord>>& deque_for(JobPriority priority) {
    return priority == JobPriority::kHigh ? high_ : normal_;
  }

  const std::size_t max_depth_;
  const Runner runner_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::deque<std::shared_ptr<JobRecord>> high_;
  std::deque<std::shared_ptr<JobRecord>> normal_;
  std::vector<std::shared_ptr<JobRecord>> all_;
  std::map<std::string, std::shared_ptr<JobRecord>> by_id_;
  std::vector<std::thread> workers_;
};

}  // namespace clrearly::server
