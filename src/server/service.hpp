// DSE-as-a-service routing layer: maps HTTP requests onto the job queue and
// session cache. Pure request -> response (no sockets), so the whole API is
// unit-testable in process; server/server.hpp puts it behind a listener.
//
// API (all JSON; see docs/SERVER.md for the full reference):
//   POST /v1/jobs              submit a JobSpec        -> 202 | 400 | 429
//   GET  /v1/jobs              list jobs
//   GET  /v1/jobs/{id}         status + latest progress
//   GET  /v1/jobs/{id}/events  progress events (?from=N), or a live SSE
//                              stream when Accept: text/event-stream
//   GET  /v1/jobs/{id}/result  Pareto front            -> 200 | 409 | 404
//   POST /v1/jobs/{id}/cancel  cooperative cancel
//   GET  /v1/metrics           process metrics snapshot
//   GET  /v1/healthz           liveness probe
//   POST /v1/shutdown          request graceful shutdown
//
// Crash safety: with a spool directory configured, every admission and state
// transition is journaled to <spool>/journal.jsonl (see server/journal.hpp).
// A restarted service replays the journal and re-enqueues interrupted jobs
// in their original order — deterministic flows then produce bit-identical
// results, as if the crash never happened.
//
// Admission control: per-client token buckets (X-Client-Key header; jobs
// without the header share the "default" bucket) reject over-rate clients
// with 429 + Retry-After before they reach the queue. quota_rate = 0
// disables quotas. The X-Priority header ("high" | "normal") selects the
// queue's scheduling level.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "server/http.hpp"
#include "server/job.hpp"
#include "server/job_queue.hpp"
#include "server/journal.hpp"

namespace clrearly::server {

struct ServiceOptions {
  std::size_t workers = 2;       ///< concurrent DSE jobs
  std::size_t queue_depth = 16;  ///< max *waiting* jobs before 429
  std::size_t max_sessions = 8;  ///< model sessions kept warm (LRU)
  /// When non-empty: every accepted job's spec is written to
  /// <spool>/<id>.spec.json on admission and its result to
  /// <id>.result.json on completion, so any run can be replayed offline.
  /// Also enables the crash-safe job journal at <spool>/journal.jsonl.
  std::string spool_dir;
  /// Journal size threshold (bytes) past which an append triggers
  /// compaction. 0 disables compaction.
  std::size_t journal_compact_bytes = 1 << 20;
  /// Per-client admission quota: sustained submissions/second. 0 disables
  /// quota enforcement (the default — in-process embedders opt in).
  double quota_rate = 0.0;
  /// Token-bucket burst: submissions a client may make back-to-back before
  /// the sustained rate applies.
  double quota_burst = 8.0;
};

class DseService {
 public:
  /// Delivers one SSE frame (already "data:"-framed text); returns false
  /// when the client is gone and streaming should stop.
  using EventSink = std::function<bool(const std::string&)>;

  explicit DseService(ServiceOptions options);

  /// Route one request. Never throws; internal errors become 500s.
  HttpResponse handle(const HttpRequest& request);

  /// True when `request` asks for a live event stream (GET .../events with
  /// Accept: text/event-stream) — the transport should call
  /// stream_events_sse() instead of handle().
  static bool wants_sse(const HttpRequest& request);

  /// Stream progress events for the job in `request`'s path through `sink`
  /// as Server-Sent Events frames: `id:` carries the event sequence (a
  /// resume cursor for `?from=` / Last-Event-ID), heartbeat comments flow
  /// while the job is idle, and a final `event: state` frame closes the
  /// stream when the job reaches a terminal state. Returns an error
  /// response *before any frame is written* when the request is not
  /// streamable (unknown job, bad cursor), nullopt after a completed
  /// stream. Ends early (nullopt) on client loss or service shutdown.
  std::optional<HttpResponse> stream_events_sse(const HttpRequest& request,
                                                const EventSink& sink);

  /// True once POST /v1/shutdown was received (the serving loop polls this).
  bool shutdown_requested() const noexcept { return shutdown_.load(); }
  void request_shutdown() noexcept { shutdown_.store(true); }

  /// Drain/stop the queue (see JobQueue::shutdown), then journal the final
  /// state of every job so a later restart replays nothing twice.
  /// Idempotent.
  void shutdown(bool cancel_pending);

  JobQueue& queue() noexcept { return queue_; }
  SessionCache& sessions() noexcept { return sessions_; }
  /// Journal replay statistics from construction (all zero without a spool
  /// or on a fresh journal).
  const JournalReplayStats& replay_stats() const noexcept {
    return replay_stats_;
  }

 private:
  /// Sliding token bucket; `tokens` is refilled lazily from `last_refill`.
  struct QuotaBucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  HttpResponse submit(const HttpRequest& request);
  HttpResponse job_status(const std::string& id) const;
  HttpResponse job_events(const HttpRequest& request,
                          const std::string& id) const;
  HttpResponse job_result(const std::string& id) const;
  HttpResponse job_cancel(const std::string& id);
  HttpResponse list_jobs() const;
  HttpResponse metrics() const;

  void run_one(JobRecord& job);
  void replay_journal();
  /// nullopt when the client is within quota; otherwise the Retry-After
  /// value (seconds) to advertise.
  std::optional<int> quota_retry_after(const std::string& client);

  void spool_spec(const JobRecord& job) const;
  void spool_result(const JobRecord& job) const;

  const ServiceOptions options_;
  SessionCache sessions_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> next_id_{0};

  std::unique_ptr<JobJournal> journal_;  ///< null without a spool dir
  JournalReplayStats replay_stats_;

  std::mutex quota_mutex_;
  std::map<std::string, QuotaBucket> quota_;

  JobQueue queue_;  ///< declared last: its workers use the members above
};

}  // namespace clrearly::server
