// DSE-as-a-service routing layer: maps HTTP requests onto the job queue and
// session cache. Pure request -> response (no sockets), so the whole API is
// unit-testable in process; server/server.hpp puts it behind a listener.
//
// API (all JSON; see docs/SERVER.md for the full reference):
//   POST /v1/jobs              submit a JobSpec        -> 202 | 400 | 429
//   GET  /v1/jobs              list jobs
//   GET  /v1/jobs/{id}         status + latest progress
//   GET  /v1/jobs/{id}/events  progress events (?from=N)
//   GET  /v1/jobs/{id}/result  Pareto front            -> 200 | 409 | 404
//   POST /v1/jobs/{id}/cancel  cooperative cancel
//   GET  /v1/metrics           process metrics snapshot
//   GET  /v1/healthz           liveness probe
//   POST /v1/shutdown          request graceful shutdown
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "server/http.hpp"
#include "server/job.hpp"
#include "server/job_queue.hpp"

namespace clrearly::server {

struct ServiceOptions {
  std::size_t workers = 2;       ///< concurrent DSE jobs
  std::size_t queue_depth = 16;  ///< max *waiting* jobs before 429
  std::size_t max_sessions = 8;  ///< model sessions kept warm (LRU)
  /// When non-empty: every accepted job's spec is written to
  /// <spool>/<id>.spec.json on admission and its result to
  /// <id>.result.json on completion, so any run can be replayed offline.
  std::string spool_dir;
};

class DseService {
 public:
  explicit DseService(ServiceOptions options);

  /// Route one request. Never throws; internal errors become 500s.
  HttpResponse handle(const HttpRequest& request);

  /// True once POST /v1/shutdown was received (the serving loop polls this).
  bool shutdown_requested() const noexcept { return shutdown_.load(); }
  void request_shutdown() noexcept { shutdown_.store(true); }

  /// Drain/stop the queue (see JobQueue::shutdown). Idempotent.
  void shutdown(bool cancel_pending) { queue_.shutdown(cancel_pending); }

  JobQueue& queue() noexcept { return queue_; }
  SessionCache& sessions() noexcept { return sessions_; }

 private:
  HttpResponse submit(const HttpRequest& request);
  HttpResponse job_status(const std::string& id) const;
  HttpResponse job_events(const HttpRequest& request,
                          const std::string& id) const;
  HttpResponse job_result(const std::string& id) const;
  HttpResponse job_cancel(const std::string& id);
  HttpResponse list_jobs() const;
  HttpResponse metrics() const;

  void spool_spec(const JobRecord& job) const;
  void spool_result(const JobRecord& job) const;

  const ServiceOptions options_;
  SessionCache sessions_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> next_id_{0};
  JobQueue queue_;  ///< declared last: its workers use the members above
};

}  // namespace clrearly::server
