// Processing-element model (Section III-A).
//
// A PE type captures the heterogeneity dimensions the paper enumerates:
// (1) the class of processor (general-purpose embedded core vs accelerator
// slot on reconfigurable logic), (2) its aging profile (Weibull shape beta),
// and (3) its soft-error masking factor derived from the Architectural
// Vulnerability Factor (AVF).
#pragma once

#include <string>

#include "platform/dvfs.hpp"

namespace clrearly::platform {

enum class PeClass {
  kEmbeddedProcessor,     ///< general-purpose embedded core
  kReconfigurableRegion,  ///< partially reconfigurable fabric slot
};

/// Printable name for a PeClass.
std::string to_string(PeClass c);

struct PeType {
  std::string name;
  PeClass pe_class = PeClass::kEmbeddedProcessor;

  /// Probability that a raw SEU striking this PE is architecturally masked
  /// (1 - AVF). Higher is better.
  double masking_factor = 0.0;

  /// Weibull shape parameter of the PE's wear-out distribution.
  double weibull_beta = 2.0;

  /// Baseline scale parameter (hours) of the wear-out distribution when the
  /// PE runs a reference workload at nominal DVFS; task-specific eta values
  /// scale from this with the thermal/power stress of the implementation.
  double weibull_eta_base_hours = 1.0e5;

  /// Static/idle power draw (W).
  double idle_power_w = 0.05;

  /// Local memory capacity in KB (the storage constraint of the paper's
  /// future-work list). 0 means unconstrained — the base abstraction.
  double memory_kb = 0.0;

  /// Supported operating points (reconfigurable fabric typically exposes a
  /// single point; embedded cores expose the full table).
  DvfsTable dvfs;

  /// Validate invariants; throws std::invalid_argument on violations.
  void validate() const;
};

/// A PE instance: (IDp, PETypep) per the paper's architecture model.
struct Pe {
  std::size_t id = 0;         ///< index in the architecture
  std::size_t type_index = 0; ///< index into Architecture's type list
};

}  // namespace clrearly::platform
