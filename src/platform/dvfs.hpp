// DVFS operating-point model.
//
// The paper's task-level DSE (Fig. 6a) sweeps three voltage/frequency pairs:
// 1.2V @ 900MHz, 1.1V @ 600MHz and 1.06V @ 300MHz. A DVFS mode affects
//   * execution time   — inversely proportional to frequency,
//   * dynamic power    — proportional to V^2 f,
//   * soft-error rate  — lower voltage raises SEU susceptibility; we adopt
//     the exponential model of Das et al. (DATE'14):
//     lambda(f) = lambda0 * 10^{ d (1 - fn) / (1 - fn_min) }, fn = f/f_max.
#pragma once

#include <string>
#include <vector>

namespace clrearly::platform {

struct DvfsMode {
  std::string name;     ///< e.g. "1.2V,900MHz"
  double voltage_v = 0; ///< supply voltage
  double freq_mhz = 0;  ///< clock frequency

  bool operator==(const DvfsMode&) const = default;
};

/// Ordered list of supported operating points (index 0 = fastest).
class DvfsTable {
 public:
  DvfsTable() = default;
  explicit DvfsTable(std::vector<DvfsMode> modes);

  /// The three operating points used throughout the paper's evaluation.
  static DvfsTable paper_default();

  std::size_t size() const noexcept { return modes_.size(); }
  bool empty() const noexcept { return modes_.empty(); }
  const DvfsMode& mode(std::size_t i) const;
  const std::vector<DvfsMode>& modes() const noexcept { return modes_; }

  /// Fastest (index 0) mode; throws if empty.
  const DvfsMode& nominal() const;

  /// Execution-time multiplier of mode i relative to the nominal mode
  /// (>= 1 for slower modes).
  double time_scale(std::size_t i) const;

  /// Dynamic-power multiplier of mode i relative to nominal: (V/V0)^2 (f/f0).
  double power_scale(std::size_t i) const;

  /// SEU-rate multiplier of mode i relative to nominal, with sensitivity
  /// exponent d (default 2, per Das et al.). Equals 1 at nominal and
  /// 10^d at the slowest normalized frequency of the table.
  double seu_scale(std::size_t i, double d = 2.0) const;

 private:
  std::vector<DvfsMode> modes_;
};

}  // namespace clrearly::platform
