#include "platform/dvfs.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace clrearly::platform {

DvfsTable::DvfsTable(std::vector<DvfsMode> modes) : modes_(std::move(modes)) {
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i].voltage_v <= 0.0 || modes_[i].freq_mhz <= 0.0) {
      throw std::invalid_argument("DvfsTable: non-positive voltage/frequency");
    }
    if (i > 0 && modes_[i].freq_mhz > modes_[i - 1].freq_mhz) {
      throw std::invalid_argument(
          "DvfsTable: modes must be ordered fastest-first");
    }
  }
}

DvfsTable DvfsTable::paper_default() {
  return DvfsTable({
      {"1.2V,900MHz", 1.20, 900.0},
      {"1.1V,600MHz", 1.10, 600.0},
      {"1.06V,300MHz", 1.06, 300.0},
  });
}

const DvfsMode& DvfsTable::mode(std::size_t i) const {
  if (i >= modes_.size()) throw std::out_of_range("DvfsTable::mode");
  return modes_[i];
}

const DvfsMode& DvfsTable::nominal() const {
  if (modes_.empty()) throw std::out_of_range("DvfsTable::nominal: empty table");
  return modes_.front();
}

double DvfsTable::time_scale(std::size_t i) const {
  return nominal().freq_mhz / mode(i).freq_mhz;
}

double DvfsTable::power_scale(std::size_t i) const {
  const DvfsMode& m0 = nominal();
  const DvfsMode& mi = mode(i);
  const double v_ratio = mi.voltage_v / m0.voltage_v;
  return v_ratio * v_ratio * (mi.freq_mhz / m0.freq_mhz);
}

double DvfsTable::seu_scale(std::size_t i, double d) const {
  const double fn = mode(i).freq_mhz / nominal().freq_mhz;
  double fn_min = 1.0;
  for (const DvfsMode& m : modes_) {
    fn_min = std::min(fn_min, m.freq_mhz / nominal().freq_mhz);
  }
  if (fn_min >= 1.0) return 1.0;  // single-mode table: no scaling possible
  return std::pow(10.0, d * (1.0 - fn) / (1.0 - fn_min));
}

}  // namespace clrearly::platform
