#include "platform/architecture.hpp"

#include <stdexcept>
#include <utility>

namespace clrearly::platform {

std::size_t Architecture::add_type(PeType type) {
  type.validate();
  types_.push_back(std::move(type));
  return types_.size() - 1;
}

std::size_t Architecture::add_pe(std::size_t type_index) {
  if (type_index >= types_.size()) {
    throw std::out_of_range("Architecture::add_pe: unknown type index");
  }
  pes_.push_back(Pe{pes_.size(), type_index});
  return pes_.size() - 1;
}

const PeType& Architecture::type(std::size_t type_index) const {
  if (type_index >= types_.size()) {
    throw std::out_of_range("Architecture::type");
  }
  return types_[type_index];
}

const Pe& Architecture::pe(std::size_t pe_id) const {
  if (pe_id >= pes_.size()) {
    throw std::out_of_range("Architecture::pe");
  }
  return pes_[pe_id];
}

const PeType& Architecture::type_of(std::size_t pe_id) const {
  return type(pe(pe_id).type_index);
}

void Architecture::set_interconnect(Interconnect interconnect) {
  interconnect.validate();
  interconnect_ = interconnect;
}

std::vector<std::size_t> Architecture::pes_of_type(
    std::size_t type_index) const {
  std::vector<std::size_t> out;
  for (const Pe& p : pes_) {
    if (p.type_index == type_index) out.push_back(p.id);
  }
  return out;
}

Architecture Architecture::paper_default() {
  Architecture arch;
  const DvfsTable dvfs = DvfsTable::paper_default();

  PeType proc_low_mask;
  proc_low_mask.name = "EmbProc/AVF-hi";
  proc_low_mask.pe_class = PeClass::kEmbeddedProcessor;
  proc_low_mask.masking_factor = 0.20;  // high AVF => little implicit masking
  proc_low_mask.weibull_beta = 2.0;
  proc_low_mask.weibull_eta_base_hours = 8.0e4;
  proc_low_mask.idle_power_w = 0.06;
  proc_low_mask.dvfs = dvfs;

  PeType proc_high_mask = proc_low_mask;
  proc_high_mask.name = "EmbProc/AVF-lo";
  proc_high_mask.masking_factor = 0.45;  // low AVF => strong implicit masking
  proc_high_mask.weibull_eta_base_hours = 7.5e4;

  PeType fabric;
  fabric.name = "ReconfRegion";
  fabric.pe_class = PeClass::kReconfigurableRegion;
  fabric.masking_factor = 0.10;  // SRAM-based fabric: high susceptibility
  fabric.weibull_beta = 1.8;
  fabric.weibull_eta_base_hours = 1.0e5;
  fabric.idle_power_w = 0.10;
  // Reconfigurable regions run at a fixed clock: a single operating point.
  fabric.dvfs = DvfsTable({{"0.95V,250MHz", 0.95, 250.0}});

  const std::size_t t0 = arch.add_type(std::move(proc_low_mask));
  const std::size_t t1 = arch.add_type(std::move(proc_high_mask));
  const std::size_t t2 = arch.add_type(std::move(fabric));

  arch.add_pe(t0);
  arch.add_pe(t0);
  arch.add_pe(t1);
  arch.add_pe(t1);
  arch.add_pe(t2);
  arch.add_pe(t2);
  return arch;
}

}  // namespace clrearly::platform
