#include "platform/pe.hpp"

#include <stdexcept>

namespace clrearly::platform {

std::string to_string(PeClass c) {
  switch (c) {
    case PeClass::kEmbeddedProcessor: return "EmbeddedProcessor";
    case PeClass::kReconfigurableRegion: return "ReconfigurableRegion";
  }
  return "Unknown";
}

void PeType::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("PeType: name must be non-empty");
  }
  if (masking_factor < 0.0 || masking_factor >= 1.0) {
    throw std::invalid_argument("PeType: masking factor must be in [0,1)");
  }
  if (weibull_beta <= 0.0) {
    throw std::invalid_argument("PeType: Weibull beta must be positive");
  }
  if (weibull_eta_base_hours <= 0.0) {
    throw std::invalid_argument("PeType: Weibull eta must be positive");
  }
  if (idle_power_w < 0.0) {
    throw std::invalid_argument("PeType: idle power must be non-negative");
  }
  if (memory_kb < 0.0) {
    throw std::invalid_argument("PeType: memory capacity must be non-negative");
  }
  if (dvfs.empty()) {
    throw std::invalid_argument("PeType: at least one DVFS mode required");
  }
}

}  // namespace clrearly::platform
