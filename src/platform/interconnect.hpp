// Shared-interconnect communication model — the paper's stated future work
// ("integrating the effect of the communication and storage constraints of
// the hardware platform"), implemented here as an optional extension.
//
// The model is deliberately early-stage: a transfer between two different
// PEs over the shared interconnect costs latency + size/bandwidth; transfers
// between tasks on the same PE hit local memory and are free. Link
// contention is not modeled (DMA-mediated transfers on the Fig. 2a fabric).
#pragma once

namespace clrearly::platform {

struct Interconnect {
  /// Sustained bandwidth in KB per microsecond (= GB/s). 0 disables the
  /// communication model entirely (the paper's base abstraction).
  double bandwidth_kb_per_us = 0.0;

  /// Per-transfer setup latency (arbitration + DMA programming), us.
  double latency_us = 0.0;

  /// True when inter-PE communication costs time.
  bool models_communication() const noexcept {
    return bandwidth_kb_per_us > 0.0;
  }

  /// Time to move `data_kb` between two *different* PEs. Returns 0 when the
  /// model is disabled or nothing is transferred. Throws
  /// std::invalid_argument for negative sizes.
  double transfer_time_us(double data_kb) const;

  void validate() const;
};

}  // namespace clrearly::platform
