#include "platform/interconnect.hpp"

#include <stdexcept>

namespace clrearly::platform {

double Interconnect::transfer_time_us(double data_kb) const {
  if (data_kb < 0.0) {
    throw std::invalid_argument("Interconnect: negative transfer size");
  }
  if (!models_communication() || data_kb == 0.0) return 0.0;
  return latency_us + data_kb / bandwidth_kb_per_us;
}

void Interconnect::validate() const {
  if (bandwidth_kb_per_us < 0.0) {
    throw std::invalid_argument("Interconnect: negative bandwidth");
  }
  if (latency_us < 0.0) {
    throw std::invalid_argument("Interconnect: negative latency");
  }
}

}  // namespace clrearly::platform
