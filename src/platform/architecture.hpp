// HMPSoC architecture model (Fig. 2a): a set of typed PEs behind a shared
// interconnect with centralized control of task-remapping and CLR
// implementation. The early-stage abstraction deliberately omits interconnect
// contention (listed as future work in the paper's conclusion).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "platform/interconnect.hpp"
#include "platform/pe.hpp"

namespace clrearly::platform {

class Architecture {
 public:
  /// Register a PE type; returns its type index. Validates the type.
  std::size_t add_type(PeType type);

  /// Instantiate a PE of a registered type; returns its PE id.
  std::size_t add_pe(std::size_t type_index);

  std::size_t num_types() const noexcept { return types_.size(); }
  std::size_t num_pes() const noexcept { return pes_.size(); }

  const PeType& type(std::size_t type_index) const;
  const Pe& pe(std::size_t pe_id) const;
  const PeType& type_of(std::size_t pe_id) const;

  const std::vector<PeType>& types() const noexcept { return types_; }
  const std::vector<Pe>& pes() const noexcept { return pes_; }

  /// All PE ids whose type is `type_index`.
  std::vector<std::size_t> pes_of_type(std::size_t type_index) const;

  /// Communication model of the shared interconnect. Disabled by default —
  /// the paper's base abstraction ignores communication; the extension
  /// benches enable it via set_interconnect().
  const Interconnect& interconnect() const noexcept { return interconnect_; }
  void set_interconnect(Interconnect interconnect);

  /// The evaluation platform from Section VI-A: six PEs of three types —
  /// four embedded processors split across two masking factors and two
  /// partially reconfigurable regions.
  static Architecture paper_default();

 private:
  std::vector<PeType> types_;
  std::vector<Pe> pes_;
  Interconnect interconnect_;
};

}  // namespace clrearly::platform
