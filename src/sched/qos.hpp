// System-level QoS estimation (TABLE III) and the QoS specification /
// constraint model of the optimization problem (Eq. 5).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "app/task_graph.hpp"
#include "platform/architecture.hpp"
#include "reliability/task_metrics.hpp"
#include "sched/list_scheduler.hpp"

namespace clrearly::sched {

/// System-level metrics of one design point.
struct QosMetrics {
  double makespan_us = 0.0;       ///< Sapp (average makespan)
  double functional_rel = 0.0;    ///< Fapp = sum F_t * zeta_t
  double error_prob = 0.0;        ///< 1 - Fapp (the quantity the figures plot)
  double mttf_hours = 0.0;        ///< Lapp = min_p MTTFp
  double peak_power_w = 0.0;      ///< Wapp
  double energy_uj = 0.0;         ///< Japp
  /// Storage-constraint violation (the paper's future-work extension):
  /// sum over capacity-limited PEs of their relative memory overshoot
  /// (0 when every task set fits or no PE declares a capacity).
  double memory_overflow = 0.0;

  /// Spread of the makespan: variances of the Markov execution-time laws
  /// accumulated along the schedule's realized critical path (tasks are
  /// independent, so variances add; other paths are ignored — a first-order
  /// approximation that is exact for chain-structured critical paths).
  double makespan_stddev_us = 0.0;
};

/// P[makespan > deadline] under a normal approximation of the makespan law
/// (mean makespan_us, stddev makespan_stddev_us). Degenerates to a step
/// function when the stddev is zero. Throws for non-positive deadlines.
double deadline_miss_probability(const QosMetrics& metrics,
                                 double deadline_us);

/// Application-specific QoS requirements (the *SPEC terms of Eq. 5). Each
/// limit is optional — an unset constraint never contributes violation.
struct QosSpec {
  std::optional<double> max_makespan_us;
  std::optional<double> min_functional_rel;
  std::optional<double> min_mttf_hours;
  std::optional<double> max_energy_uj;
  std::optional<double> max_peak_power_w;

  /// Total relative constraint violation of `m` (0 when feasible). Each
  /// violated constraint contributes its normalized overshoot, so degrees of
  /// infeasibility are comparable across metrics. Memory overflow (a
  /// physical placement constraint, not an optional limit) always
  /// contributes.
  double violation(const QosMetrics& m) const;

  bool feasible(const QosMetrics& m) const { return violation(m) == 0.0; }

  bool operator==(const QosSpec&) const = default;
};

/// One fully resolved task decision: where the task runs and what its
/// task-level metrics are under the chosen implementation + CLR config.
struct TaskDecision {
  std::size_t pe = 0;
  reliability::TaskMetrics metrics;
};

/// Estimate all TABLE III metrics for an application under per-task
/// decisions and a schedule priority order.
///
/// Lifetime: MTTF(t,i,p) already lives in metrics.mttf_hours; per PE,
/// MTTFp = Papp / sum_{t on p}(AvgExT_t / MTTF_t) and Lapp = min over PEs
/// that execute at least one task (idle PEs do not wear).
QosMetrics estimate_qos(const app::Application& application,
                        const platform::Architecture& architecture,
                        const std::vector<TaskDecision>& decisions,
                        const std::vector<std::size_t>& priority_order);

/// The same, but also returns the realized schedule (for reporting/examples).
QosMetrics estimate_qos(const app::Application& application,
                        const platform::Architecture& architecture,
                        const std::vector<TaskDecision>& decisions,
                        const std::vector<std::size_t>& priority_order,
                        Schedule* schedule_out);

/// Duty-cycle-weighted MTTF of every PE under `decisions` (Eq. 2). Idle PEs
/// report +infinity (they do not wear under load).
std::vector<double> per_pe_mttf(const app::Application& application,
                                const platform::Architecture& architecture,
                                const std::vector<TaskDecision>& decisions);

/// Mission reliability: probability that *every* PE survives
/// `mission_hours` of operation — R_sys(t) = prod_p R_p(t) with R_p the
/// Weibull survival of PE p (shape beta_p, scale chosen so the PE's MTTF
/// matches Eq. 2). Extends the paper's single-number lifetime metric to a
/// mission-time curve. Throws std::invalid_argument for negative times.
double mission_reliability(const app::Application& application,
                           const platform::Architecture& architecture,
                           const std::vector<TaskDecision>& decisions,
                           double mission_hours);

}  // namespace clrearly::sched
