#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace clrearly::sched {

double Schedule::peak_power(
    const std::vector<TaskAssignment>& assignments) const {
  if (tasks.empty()) return 0.0;
  if (assignments.size() != tasks.size()) {
    throw std::invalid_argument("Schedule::peak_power: assignment size mismatch");
  }
  // Sweep start/end events; power changes only at task boundaries.
  struct Event {
    double time;
    double delta;
  };
  std::vector<Event> events;
  events.reserve(tasks.size() * 2);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    events.push_back({tasks[t].start_us, assignments[t].power_w});
    events.push_back({tasks[t].end_us, -assignments[t].power_w});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // process releases before acquisitions at ties
  });
  double current = 0.0;
  double peak = 0.0;
  for (const Event& e : events) {
    current += e.delta;
    peak = std::max(peak, current);
  }
  return peak;
}

Schedule list_schedule(const app::TaskGraph& graph,
                       const std::vector<TaskAssignment>& assignments,
                       const std::vector<std::size_t>& priority_order,
                       std::size_t num_pes) {
  return list_schedule(graph, assignments, priority_order, num_pes,
                       platform::Interconnect{});
}

double data_arrival_us(const app::TaskGraph& graph,
                       const platform::Interconnect& interconnect,
                       std::size_t src, std::size_t dst, double src_end_us,
                       std::size_t src_pe, std::size_t dst_pe) {
  if (!interconnect.models_communication() || src_pe == dst_pe) {
    return src_end_us;
  }
  const app::Edge* edge = graph.find_edge(src, dst);
  return src_end_us + interconnect.transfer_time_us(edge ? edge->data_kb : 0.0);
}

Schedule list_schedule(const app::TaskGraph& graph,
                       const std::vector<TaskAssignment>& assignments,
                       const std::vector<std::size_t>& priority_order,
                       std::size_t num_pes,
                       const platform::Interconnect& interconnect) {
  const std::size_t n = graph.num_tasks();
  if (assignments.size() != n) {
    throw std::invalid_argument("list_schedule: assignment count mismatch");
  }
  if (priority_order.size() != n) {
    throw std::invalid_argument("list_schedule: priority order size mismatch");
  }
  if (num_pes == 0) {
    throw std::invalid_argument("list_schedule: no PEs");
  }

  // Validate the permutation and build rank lookup (lower rank = earlier).
  std::vector<std::size_t> rank(n, n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = priority_order[pos];
    if (task >= n || rank[task] != n) {
      throw std::invalid_argument(
          "list_schedule: priority order is not a permutation of task ids");
    }
    rank[task] = pos;
  }
  for (std::size_t t = 0; t < n; ++t) {
    if (assignments[t].pe >= num_pes) {
      throw std::invalid_argument("list_schedule: PE index out of range");
    }
    if (assignments[t].exec_time_us < 0.0) {
      throw std::invalid_argument("list_schedule: negative execution time");
    }
  }

  Schedule schedule;
  schedule.tasks.assign(n, ScheduledTask{});
  schedule.pe_busy_us.assign(num_pes, 0.0);

  std::vector<std::size_t> unscheduled_preds(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    unscheduled_preds[t] = graph.predecessors(t).size();
  }
  std::vector<double> pe_free(num_pes, 0.0);
  std::vector<double> ready_time(n, 0.0);  // latest predecessor finish
  std::vector<bool> done(n, false);

  for (std::size_t scheduled = 0; scheduled < n; ++scheduled) {
    // Highest-priority ready task. O(T) scan per step; T <= a few hundred in
    // every experiment, so quadratic total cost is irrelevant next to the
    // Markov-chain evaluations.
    std::size_t best = n;
    for (std::size_t t = 0; t < n; ++t) {
      if (done[t] || unscheduled_preds[t] != 0) continue;
      if (best == n || rank[t] < rank[best]) best = t;
    }
    if (best == n) {
      throw std::invalid_argument("list_schedule: graph contains a cycle");
    }

    const TaskAssignment& asg = assignments[best];
    const double start = std::max(pe_free[asg.pe], ready_time[best]);
    const double end = start + asg.exec_time_us;
    schedule.tasks[best] = ScheduledTask{start, end, asg.pe};
    pe_free[asg.pe] = end;
    schedule.pe_busy_us[asg.pe] += asg.exec_time_us;
    schedule.makespan_us = std::max(schedule.makespan_us, end);
    done[best] = true;
    for (std::size_t succ : graph.successors(best)) {
      --unscheduled_preds[succ];
      const double arrival = data_arrival_us(graph, interconnect, best, succ,
                                             end, asg.pe,
                                             assignments[succ].pe);
      ready_time[succ] = std::max(ready_time[succ], arrival);
    }
  }
  return schedule;
}

}  // namespace clrearly::sched
