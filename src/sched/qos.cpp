#include "sched/qos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace clrearly::sched {

namespace {

/// Relative overshoot of `value` past an upper limit (0 when within).
double over(double value, double limit) {
  if (limit <= 0.0) return value > 0.0 ? 1.0 : 0.0;
  return std::max(0.0, (value - limit) / limit);
}

/// Relative shortfall of `value` below a lower limit.
double under(double value, double limit) {
  if (limit <= 0.0) return 0.0;
  return std::max(0.0, (limit - value) / limit);
}

}  // namespace

double QosSpec::violation(const QosMetrics& m) const {
  double v = 0.0;
  if (max_makespan_us) v += over(m.makespan_us, *max_makespan_us);
  if (min_functional_rel) v += under(m.functional_rel, *min_functional_rel);
  if (min_mttf_hours) v += under(m.mttf_hours, *min_mttf_hours);
  if (max_energy_uj) v += over(m.energy_uj, *max_energy_uj);
  if (max_peak_power_w) v += over(m.peak_power_w, *max_peak_power_w);
  v += m.memory_overflow;  // physical constraint, always enforced
  return v;
}

QosMetrics estimate_qos(const app::Application& application,
                        const platform::Architecture& architecture,
                        const std::vector<TaskDecision>& decisions,
                        const std::vector<std::size_t>& priority_order) {
  return estimate_qos(application, architecture, decisions, priority_order,
                      nullptr);
}

QosMetrics estimate_qos(const app::Application& application,
                        const platform::Architecture& architecture,
                        const std::vector<TaskDecision>& decisions,
                        const std::vector<std::size_t>& priority_order,
                        Schedule* schedule_out) {
  const app::TaskGraph& graph = application.graph;
  const std::size_t n = graph.num_tasks();
  if (decisions.size() != n) {
    throw std::invalid_argument("estimate_qos: decision count mismatch");
  }

  // --- Average makespan and peak power from the list schedule.
  std::vector<TaskAssignment> assignments(n);
  for (std::size_t t = 0; t < n; ++t) {
    assignments[t].pe = decisions[t].pe;
    assignments[t].exec_time_us = decisions[t].metrics.avg_exec_time_us;
    assignments[t].power_w = decisions[t].metrics.avg_power_w;
  }
  // The architecture's interconnect model applies automatically: with the
  // default (disabled) model this is the paper's base abstraction.
  const Schedule schedule =
      list_schedule(graph, assignments, priority_order,
                    architecture.num_pes(), architecture.interconnect());

  QosMetrics qos;
  qos.makespan_us = schedule.makespan_us;
  qos.peak_power_w = schedule.peak_power(assignments);

  // --- Functional reliability: criticality-weighted task reliabilities.
  const std::vector<double> zeta = graph.normalized_criticality();
  double f_app = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    f_app += (1.0 - decisions[t].metrics.error_prob) * zeta[t];
  }
  qos.functional_rel = f_app;
  qos.error_prob = 1.0 - f_app;

  // --- Lifetime (Eq. 2): per-PE duty-cycle-weighted MTTF, min over used PEs.
  const std::vector<double> pe_mttf =
      per_pe_mttf(application, architecture, decisions);
  double l_app = std::numeric_limits<double>::infinity();
  for (double mttf : pe_mttf) l_app = std::min(l_app, mttf);
  if (!std::isfinite(l_app)) {
    throw std::invalid_argument("estimate_qos: no task mapped to any PE");
  }
  qos.mttf_hours = l_app;

  // --- Energy (Eq. 4): per-task average power times average execution time.
  double energy = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    energy += decisions[t].metrics.avg_exec_time_us *
              decisions[t].metrics.avg_power_w;
  }
  qos.energy_uj = energy;

  // --- Storage constraint: relative overshoot per capacity-limited PE.
  std::vector<double> memory_used(architecture.num_pes(), 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    memory_used[decisions[t].pe] += decisions[t].metrics.footprint_kb;
  }
  for (std::size_t p = 0; p < architecture.num_pes(); ++p) {
    const double capacity = architecture.type_of(p).memory_kb;
    if (capacity <= 0.0) continue;  // unconstrained PE
    qos.memory_overflow +=
        std::max(0.0, (memory_used[p] - capacity) / capacity);
  }

  // --- Makespan spread: accumulate execution-time variance backwards along
  // the realized critical path (the chain of blocking tasks ending at the
  // makespan-defining task).
  {
    std::size_t current = 0;
    for (std::size_t t = 1; t < n; ++t) {
      if (schedule.tasks[t].end_us > schedule.tasks[current].end_us) {
        current = t;
      }
    }
    const platform::Interconnect& icn = architecture.interconnect();
    double variance = 0.0;
    for (std::size_t hops = 0; hops < n; ++hops) {
      const double s = decisions[current].metrics.exec_time_stddev_us;
      variance += s * s;
      const double start = schedule.tasks[current].start_us;
      if (start <= 1e-12) break;

      constexpr double kTieTol = 1e-6;
      std::size_t blocker = n;
      // Dependency blocker (data arrival defines the start)?
      for (std::size_t p : graph.predecessors(current)) {
        const double arrival = data_arrival_us(
            graph, icn, p, current, schedule.tasks[p].end_us,
            schedule.tasks[p].pe, schedule.tasks[current].pe);
        if (std::abs(arrival - start) < kTieTol) {
          blocker = p;
          break;
        }
      }
      // Otherwise the PE was busy until our start.
      if (blocker == n) {
        for (std::size_t t = 0; t < n; ++t) {
          if (t == current || schedule.tasks[t].pe != schedule.tasks[current].pe) {
            continue;
          }
          if (std::abs(schedule.tasks[t].end_us - start) < kTieTol) {
            blocker = t;
            break;
          }
        }
      }
      if (blocker == n) break;
      current = blocker;
    }
    qos.makespan_stddev_us = std::sqrt(variance);
  }

  if (schedule_out != nullptr) *schedule_out = schedule;
  return qos;
}

double deadline_miss_probability(const QosMetrics& metrics,
                                 double deadline_us) {
  if (deadline_us <= 0.0) {
    throw std::invalid_argument(
        "deadline_miss_probability: deadline must be positive");
  }
  if (metrics.makespan_stddev_us <= 0.0) {
    return deadline_us >= metrics.makespan_us ? 0.0 : 1.0;
  }
  const double z = (deadline_us - metrics.makespan_us) /
                   (metrics.makespan_stddev_us * std::sqrt(2.0));
  return 0.5 * std::erfc(z);
}

std::vector<double> per_pe_mttf(const app::Application& application,
                                const platform::Architecture& architecture,
                                const std::vector<TaskDecision>& decisions) {
  if (decisions.size() != application.graph.num_tasks()) {
    throw std::invalid_argument("per_pe_mttf: decision count mismatch");
  }
  std::vector<double> stress(architecture.num_pes(), 0.0);  // sum ExT/MTTF
  for (std::size_t t = 0; t < decisions.size(); ++t) {
    const reliability::TaskMetrics& m = decisions[t].metrics;
    if (m.mttf_hours <= 0.0) {
      throw std::invalid_argument("per_pe_mttf: non-positive task MTTF");
    }
    if (decisions[t].pe >= architecture.num_pes()) {
      throw std::invalid_argument("per_pe_mttf: PE index out of range");
    }
    stress[decisions[t].pe] += m.avg_exec_time_us / m.mttf_hours;
  }
  std::vector<double> mttf(architecture.num_pes(),
                           std::numeric_limits<double>::infinity());
  for (std::size_t p = 0; p < architecture.num_pes(); ++p) {
    if (stress[p] > 0.0) mttf[p] = application.period_us / stress[p];
  }
  return mttf;
}

double mission_reliability(const app::Application& application,
                           const platform::Architecture& architecture,
                           const std::vector<TaskDecision>& decisions,
                           double mission_hours) {
  if (mission_hours < 0.0) {
    throw std::invalid_argument("mission_reliability: negative mission time");
  }
  const std::vector<double> pe_mttf =
      per_pe_mttf(application, architecture, decisions);
  double reliability = 1.0;
  for (std::size_t p = 0; p < architecture.num_pes(); ++p) {
    if (!std::isfinite(pe_mttf[p])) continue;  // idle PE: survives
    const double beta = architecture.type_of(p).weibull_beta;
    // Scale so the PE's Weibull MTTF equals its Eq. 2 value.
    const double eta = pe_mttf[p] / std::tgamma(1.0 + 1.0 / beta);
    reliability *=
        reliability::Weibull(eta, beta).reliability(mission_hours);
  }
  return reliability;
}

}  // namespace clrearly::sched
