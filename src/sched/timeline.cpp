#include "sched/timeline.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace clrearly::sched {

void write_timeline_csv(std::ostream& os, const Schedule& schedule,
                        const app::TaskGraph& graph) {
  if (schedule.tasks.size() != graph.num_tasks()) {
    throw std::invalid_argument("write_timeline_csv: schedule/graph mismatch");
  }
  std::vector<std::size_t> order(schedule.tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (schedule.tasks[a].start_us != schedule.tasks[b].start_us) {
      return schedule.tasks[a].start_us < schedule.tasks[b].start_us;
    }
    return a < b;
  });

  os << "task,name,pe,start_us,end_us,exec_us\n";
  for (std::size_t t : order) {
    const ScheduledTask& s = schedule.tasks[t];
    os << t << ',' << graph.task(t).name << ',' << s.pe << ','
       << util::format_compact(s.start_us) << ','
       << util::format_compact(s.end_us) << ','
       << util::format_compact(s.end_us - s.start_us) << '\n';
  }
}

std::string gantt_chart(const Schedule& schedule, const app::TaskGraph& graph,
                        std::size_t num_pes, int width) {
  if (schedule.tasks.empty() || schedule.tasks.size() != graph.num_tasks()) {
    throw std::invalid_argument("gantt_chart: schedule/graph mismatch");
  }
  if (width < 10) {
    throw std::invalid_argument("gantt_chart: width too small");
  }
  const double makespan = std::max(schedule.makespan_us, 1e-12);

  std::ostringstream oss;
  oss << "makespan " << util::format_compact(schedule.makespan_us) << " us\n";
  for (std::size_t pe = 0; pe < num_pes; ++pe) {
    std::string lane(static_cast<std::size_t>(width), '.');
    std::string legend;
    for (std::size_t t = 0; t < schedule.tasks.size(); ++t) {
      if (schedule.tasks[t].pe != pe) continue;
      const int begin = static_cast<int>(schedule.tasks[t].start_us /
                                         makespan * (width - 1));
      const int end =
          std::max(begin + 1, static_cast<int>(schedule.tasks[t].end_us /
                                               makespan * (width - 1)));
      const char mark = static_cast<char>('A' + (t % 26));
      for (int x = begin; x < end && x < width; ++x) {
        lane[static_cast<std::size_t>(x)] = mark;
      }
      legend += ' ';
      legend += mark;
      legend += '=';
      legend += graph.task(t).name;
    }
    oss << "PE" << pe << " |" << lane << "|" << legend << '\n';
  }
  return oss.str();
}

}  // namespace clrearly::sched
