// Schedule presentation helpers: CSV timeline export and a fixed-width text
// Gantt chart (used by the examples and handy for quick inspection).
#pragma once

#include <iosfwd>
#include <string>

#include "sched/list_scheduler.hpp"

namespace clrearly::sched {

/// Write one CSV row per task: task, name, pe, start_us, end_us, exec_us.
/// Rows are ordered by start time (ties by task id).
void write_timeline_csv(std::ostream& os, const Schedule& schedule,
                        const app::TaskGraph& graph);

/// Render the schedule as a text Gantt chart, one lane per PE, `width`
/// characters across the makespan. Task marks cycle A..Z; a legend maps the
/// marks back to task names. Throws std::invalid_argument for empty
/// schedules or width < 10.
std::string gantt_chart(const Schedule& schedule, const app::TaskGraph& graph,
                        std::size_t num_pes, int width = 60);

}  // namespace clrearly::sched
