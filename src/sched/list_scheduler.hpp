// Priority-list scheduling of a task graph onto a fixed task-to-PE binding.
//
// The GA chromosome encodes the schedule implicitly as the ordering of task
// sub-sequences (Section V-C); the scheduler realizes it: among ready tasks
// (all predecessors finished) the one earliest in the priority order starts
// next on its bound PE, at max(PE-free time, latest predecessor finish).
// Communication delays are not modeled — the paper's architecture abstraction
// defers interconnect effects to future work.
#pragma once

#include <cstddef>
#include <vector>

#include "app/task_graph.hpp"
#include "platform/interconnect.hpp"

namespace clrearly::sched {

/// Per-task inputs to the scheduler: the binding and the (already
/// CLR-adjusted) expected execution time and average power.
struct TaskAssignment {
  std::size_t pe = 0;
  double exec_time_us = 0.0;
  double power_w = 0.0;
};

/// Start/end of one task in the computed schedule (SST_t / SET_t).
struct ScheduledTask {
  double start_us = 0.0;
  double end_us = 0.0;
  std::size_t pe = 0;
};

struct Schedule {
  std::vector<ScheduledTask> tasks;  ///< indexed by task id
  double makespan_us = 0.0;          ///< Sapp = max SET_t
  std::vector<double> pe_busy_us;    ///< accumulated busy time per PE

  /// Peak instantaneous power: max over time of the summed power of
  /// concurrently executing tasks (TABLE III, Eq. 4).
  double peak_power(const std::vector<TaskAssignment>& assignments) const;
};

/// Compute the schedule. `priority_order` must be a permutation of all task
/// ids; `assignments` must bind every task to a PE < num_pes. Throws
/// std::invalid_argument on malformed input.
Schedule list_schedule(const app::TaskGraph& graph,
                       const std::vector<TaskAssignment>& assignments,
                       const std::vector<std::size_t>& priority_order,
                       std::size_t num_pes);

/// Communication-aware variant (the paper's future-work extension): a
/// dependency whose producer and consumer sit on *different* PEs delays the
/// consumer's ready time by the interconnect's transfer time for the edge's
/// data volume; co-located tasks communicate through local memory for free.
Schedule list_schedule(const app::TaskGraph& graph,
                       const std::vector<TaskAssignment>& assignments,
                       const std::vector<std::size_t>& priority_order,
                       std::size_t num_pes,
                       const platform::Interconnect& interconnect);

/// Arrival time at task `dst` of the data produced by task `src` finishing
/// at `src_end_us`: co-located tasks communicate for free, cross-PE
/// dependencies pay the interconnect's transfer time for the edge's data
/// volume (nothing when the model is disabled). Shared by the list
/// scheduler, the QoS critical-path walk and the Monte Carlo schedule
/// simulator so all three price communication identically.
double data_arrival_us(const app::TaskGraph& graph,
                       const platform::Interconnect& interconnect,
                       std::size_t src, std::size_t dst, double src_end_us,
                       std::size_t src_pe, std::size_t dst_pe);

}  // namespace clrearly::sched
