// Per-task Monte Carlo trial sampling for the schedule simulator.
//
// One TaskTrial is a single simulated execution of one task under its fully
// resolved CLR configuration: per inter-checkpoint interval, draw the fault
// arrival, flip the layer masking / detection / tolerance coins, roll back
// on successful tolerance, pay the checkpoint costs. The process is the same
// one reliability::inject_faults() runs — that oracle aggregates over many
// trials of a *single* task, while the schedule simulator needs the
// individual outcomes so it can thread each realization through the task
// graph. Both share reliability::ClrChainParams, so any input the analytic
// Fig. 3 chains accept is sampled here without re-deriving the scaling.
#pragma once

#include <cstddef>

#include "reliability/clr_chain_builder.hpp"
#include "util/rng.hpp"

namespace clrearly::sim {

/// Outcome of one simulated execution of one task.
struct TaskTrial {
  double exec_time_us = 0.0;    ///< wall time including detection/rollback/
                                ///< checkpoint overheads
  bool corrupted = false;       ///< an error escaped every CLR layer
  std::size_t faults = 0;       ///< raw fault events during the run
  std::size_t rollbacks = 0;    ///< successful tolerance actions
};

/// Samples TaskTrials for one (implementation, PE, CLR configuration)
/// triple. Validates the parameters once at construction; sample() is then
/// allocation-free and cheap enough to call millions of times.
class TaskSampler {
 public:
  /// Throws like ClrChainParams::validate() on malformed parameters.
  explicit TaskSampler(reliability::ClrChainParams params);

  /// One simulated execution, consuming draws from `rng`. Deterministic for
  /// a given RNG state. Runaway configurations (which the analytic model
  /// rejects as non-absorbing) abort the offending interval after an
  /// internal retry cap and report the run as corrupted.
  TaskTrial sample(util::Rng& rng) const noexcept;

  const reliability::ClrChainParams& params() const noexcept {
    return params_;
  }

 private:
  reliability::ClrChainParams params_;
};

}  // namespace clrearly::sim
