#include "sim/task_sampler.hpp"

#include <cmath>
#include <utility>

namespace clrearly::sim {

TaskSampler::TaskSampler(reliability::ClrChainParams params)
    : params_(std::move(params)) {
  params_.validate();
}

TaskTrial TaskSampler::sample(util::Rng& rng) const noexcept {
  // Mirrors the trial loop of reliability::inject_faults() — keep the two in
  // sync; the fault_injection tests pin the aggregate statistics of this
  // process against the analytic chains.
  constexpr std::size_t kMaxAttemptsPerInterval = 1'000'000;

  TaskTrial trial;
  for (std::size_t i = 0; i < params_.intervals; ++i) {
    const double t_ici = params_.interval_time(i);
    const double p_fault = 1.0 - std::exp(-params_.lambda_per_us * t_ici);

    bool interval_done = false;
    for (std::size_t attempt = 0;
         attempt < kMaxAttemptsPerInterval && !interval_done; ++attempt) {
      // Useful execution plus the always-on detection pass.
      trial.exec_time_us += t_ici + params_.detection_time_us;

      if (!rng.bernoulli(p_fault)) {
        interval_done = true;  // clean execution
        break;
      }
      ++trial.faults;

      // Hardware spatial redundancy out-votes the fault?
      if (rng.bernoulli(params_.hw_masking)) {
        interval_done = true;
        break;
      }
      // Implicit system-software masking?
      if (rng.bernoulli(params_.implicit_ssw_masking)) {
        interval_done = true;
        break;
      }
      // Detection.
      if (rng.bernoulli(params_.detection_coverage)) {
        trial.exec_time_us += params_.tolerance_time_us;
        if (rng.bernoulli(params_.tolerance_success)) {
          ++trial.rollbacks;
          continue;  // roll back: re-execute this interval
        }
      }
      // Undetected or tolerance failed: the ASW layer is the last line.
      if (!rng.bernoulli(params_.asw_masking)) {
        trial.corrupted = true;
      }
      interval_done = true;  // execution proceeds either way
    }
    if (!interval_done) {
      // Retry cap exhausted — treat as a failed run.
      trial.corrupted = true;
      break;
    }

    // Checkpoint between intervals.
    if (i + 1 < params_.intervals) {
      trial.exec_time_us += params_.checkpoint_time_us;
      if (rng.bernoulli(params_.checkpoint_error_prob)) {
        trial.corrupted = true;  // snapshot corrupted (Fig. 3b dotted edge)
      }
    }
  }
  return trial;
}

}  // namespace clrearly::sim
