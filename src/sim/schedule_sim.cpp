#include "sim/schedule_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>

#include "sched/list_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/task_sampler.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace clrearly::sim {

namespace {

/// Everything one trial contributes to the aggregate — written to slot
/// `trial` of a pre-sized vector, so parallel execution is bit-identical to
/// serial (the ThreadPool per-index contract).
struct TrialOutcome {
  double makespan_us = 0.0;
  double error_weight = 0.0;  ///< sum of zeta_t over corrupted tasks
  double energy_uj = 0.0;
  double faults = 0.0;
  double rollbacks = 0.0;
  bool deadline_miss = false;
};

/// One full application run: sample every task's trial, then execute the
/// graph event-by-event.
TrialOutcome run_trial(const app::TaskGraph& graph,
                       const platform::Interconnect& interconnect,
                       const std::vector<SimTask>& tasks,
                       const std::vector<TaskSampler>& samplers,
                       const std::vector<std::size_t>& rank,
                       const std::vector<double>& zeta, std::size_t num_pes,
                       double deadline_us, util::Rng& rng) {
  const std::size_t n = tasks.size();

  // The fault process of a task is independent of when it runs, so all task
  // trials are drawn up front in task-id order — one fixed draw order per
  // stream, regardless of how the schedule unfolds.
  std::vector<TaskTrial> draws(n);
  for (std::size_t t = 0; t < n; ++t) draws[t] = samplers[t].sample(rng);

  TrialOutcome out;
  for (std::size_t t = 0; t < n; ++t) {
    out.energy_uj += draws[t].exec_time_us * tasks[t].power_w;
    out.faults += static_cast<double>(draws[t].faults);
    out.rollbacks += static_cast<double>(draws[t].rollbacks);
    if (draws[t].corrupted) out.error_weight += zeta[t];
  }

  // Self-timed execution: tasks dispatch when their data has arrived and
  // their PE is free, lowest priority rank first.
  EventQueue queue;
  std::vector<std::size_t> pending(n);
  std::vector<double> arrival(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    pending[t] = graph.predecessors(t).size();
    if (pending[t] == 0) queue.push({0.0, EventKind::kDataReady, t});
  }
  std::vector<bool> pe_idle(num_pes, true);
  std::vector<std::vector<std::size_t>> ready(num_pes);

  while (!queue.empty()) {
    const double now = queue.next_time_us();
    // Drain every event at this timestamp before dispatching, so the set of
    // ready tasks a PE chooses from never depends on event pop order.
    while (!queue.empty() && queue.next_time_us() == now) {
      const Event event = queue.pop();
      if (event.kind == EventKind::kComplete) {
        pe_idle[tasks[event.task].pe] = true;
        out.makespan_us = std::max(out.makespan_us, now);
        for (std::size_t succ : graph.successors(event.task)) {
          arrival[succ] = std::max(
              arrival[succ],
              sched::data_arrival_us(graph, interconnect, event.task, succ,
                                     now, tasks[event.task].pe,
                                     tasks[succ].pe));
          if (--pending[succ] == 0) {
            queue.push({arrival[succ], EventKind::kDataReady, succ});
          }
        }
      } else {
        ready[tasks[event.task].pe].push_back(event.task);
      }
    }
    for (std::size_t p = 0; p < num_pes; ++p) {
      if (!pe_idle[p] || ready[p].empty()) continue;
      std::size_t best = 0;
      for (std::size_t i = 1; i < ready[p].size(); ++i) {
        if (rank[ready[p][i]] < rank[ready[p][best]]) best = i;
      }
      const std::size_t task = ready[p][best];
      ready[p][best] = ready[p].back();
      ready[p].pop_back();
      pe_idle[p] = false;
      queue.push({now + draws[task].exec_time_us, EventKind::kComplete, task});
    }
  }

  if (deadline_us > 0.0) out.deadline_miss = out.makespan_us > deadline_us;
  return out;
}

}  // namespace

bool sim_results_identical(const SimResult& a, const SimResult& b) noexcept {
  return a.trials == b.trials &&                               //
         a.makespan_mean_us == b.makespan_mean_us &&           //
         a.makespan_stddev_us == b.makespan_stddev_us &&       //
         a.makespan_min_us == b.makespan_min_us &&             //
         a.makespan_max_us == b.makespan_max_us &&             //
         a.makespan_ci_us == b.makespan_ci_us &&               //
         a.error_prob == b.error_prob &&                       //
         a.error_ci == b.error_ci &&                           //
         a.energy_mean_uj == b.energy_mean_uj &&               //
         a.energy_stddev_uj == b.energy_stddev_uj &&           //
         a.energy_ci_uj == b.energy_ci_uj &&                   //
         a.deadline_us == b.deadline_us &&                     //
         a.deadline_miss_rate == b.deadline_miss_rate &&       //
         a.deadline_miss_ci == b.deadline_miss_ci &&           //
         a.mean_faults == b.mean_faults &&                     //
         a.mean_rollbacks == b.mean_rollbacks;
}

SimResult simulate_schedule(const app::TaskGraph& graph,
                            const platform::Architecture& architecture,
                            const std::vector<SimTask>& tasks,
                            const std::vector<std::size_t>& priority_order,
                            const SimOptions& options) {
  const std::size_t n = graph.num_tasks();
  const std::size_t num_pes = architecture.num_pes();
  if (tasks.size() != n) {
    throw std::invalid_argument("simulate_schedule: task count mismatch");
  }
  if (priority_order.size() != n) {
    throw std::invalid_argument(
        "simulate_schedule: priority order size mismatch");
  }
  if (options.trials == 0) {
    throw std::invalid_argument("simulate_schedule: trials must be positive");
  }
  std::vector<std::size_t> rank(n, n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t task = priority_order[pos];
    if (task >= n || rank[task] != n) {
      throw std::invalid_argument(
          "simulate_schedule: priority order is not a permutation of task "
          "ids");
    }
    rank[task] = pos;
  }
  std::vector<TaskSampler> samplers;
  samplers.reserve(n);
  for (const SimTask& task : tasks) {
    if (task.pe >= num_pes) {
      throw std::invalid_argument("simulate_schedule: PE index out of range");
    }
    samplers.emplace_back(task.chain);  // validates the chain parameters
  }
  {
    // Kahn pass: reject cyclic graphs up front instead of stalling trials.
    std::vector<std::size_t> pending(n);
    std::vector<std::size_t> frontier;
    for (std::size_t t = 0; t < n; ++t) {
      pending[t] = graph.predecessors(t).size();
      if (pending[t] == 0) frontier.push_back(t);
    }
    std::size_t visited = 0;
    while (!frontier.empty()) {
      const std::size_t t = frontier.back();
      frontier.pop_back();
      ++visited;
      for (std::size_t succ : graph.successors(t)) {
        if (--pending[succ] == 0) frontier.push_back(succ);
      }
    }
    if (visited != n) {
      throw std::invalid_argument(
          "simulate_schedule: task graph contains a cycle");
    }
  }

  const std::vector<double> zeta = graph.normalized_criticality();
  const platform::Interconnect& interconnect = architecture.interconnect();

  // One child stream per trial, split off serially — stream i is the same
  // object no matter which thread later consumes it.
  util::Rng root(options.seed);
  std::vector<util::Rng> streams;
  streams.reserve(options.trials);
  for (std::size_t i = 0; i < options.trials; ++i) {
    streams.push_back(root.split());
  }

  std::vector<TrialOutcome> outcomes(options.trials);
  const auto t0 = std::chrono::steady_clock::now();
  {
    const util::TraceSpan span("sim.trial_batch");
    util::parallel_for(options.trials, [&](std::size_t i) {
      outcomes[i] = run_trial(graph, interconnect, tasks, samplers, rank, zeta,
                              num_pes, options.deadline_us, streams[i]);
    });
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  {
    static util::Counter& runs_metric = util::metric_counter("sim.runs");
    static util::Counter& trials_metric = util::metric_counter("sim.trials");
    static util::Counter& misses_metric =
        util::metric_counter("sim.deadline_misses");
    runs_metric.add();
    trials_metric.add(options.trials);
    std::uint64_t miss_count = 0;
    for (const TrialOutcome& o : outcomes) miss_count += o.deadline_miss;
    misses_metric.add(miss_count);
    util::observe_seconds("sim.batch_seconds", elapsed_s);
  }

  // Serial aggregation in trial order — identical whatever the thread count.
  SimResult result;
  result.trials = options.trials;
  result.deadline_us = options.deadline_us;
  const double inv_n = 1.0 / static_cast<double>(options.trials);
  double error_weight = 0.0;
  double misses = 0.0;
  result.makespan_min_us = outcomes.front().makespan_us;
  result.makespan_max_us = outcomes.front().makespan_us;
  for (const TrialOutcome& o : outcomes) {
    result.makespan_mean_us += o.makespan_us * inv_n;
    result.energy_mean_uj += o.energy_uj * inv_n;
    result.mean_faults += o.faults * inv_n;
    result.mean_rollbacks += o.rollbacks * inv_n;
    error_weight += o.error_weight;
    if (o.deadline_miss) misses += 1.0;
    result.makespan_min_us = std::min(result.makespan_min_us, o.makespan_us);
    result.makespan_max_us = std::max(result.makespan_max_us, o.makespan_us);
  }
  if (options.trials > 1) {
    double makespan_m2 = 0.0;
    double energy_m2 = 0.0;
    for (const TrialOutcome& o : outcomes) {
      const double dm = o.makespan_us - result.makespan_mean_us;
      const double de = o.energy_uj - result.energy_mean_uj;
      makespan_m2 += dm * dm;
      energy_m2 += de * de;
    }
    const double inv_n1 = 1.0 / static_cast<double>(options.trials - 1);
    result.makespan_stddev_us = std::sqrt(makespan_m2 * inv_n1);
    result.energy_stddev_uj = std::sqrt(energy_m2 * inv_n1);
  }
  result.makespan_ci_us = util::confidence_interval_95(
      result.makespan_mean_us, result.makespan_stddev_us, options.trials);
  result.energy_ci_uj = util::confidence_interval_95(
      result.energy_mean_uj, result.energy_stddev_uj, options.trials);
  // Per-trial error weights are zeta-normalized into [0, 1], so the sum is
  // mathematically <= trials — but the serial accumulation can land an ulp
  // above it, which wilson_interval_95 now rejects. Clamp the rounding
  // noise, not real accounting bugs (those exceed trials by whole weights).
  error_weight =
      std::min(error_weight, static_cast<double>(options.trials));
  result.error_prob = error_weight * inv_n;
  result.error_ci = util::wilson_interval_95(error_weight, options.trials);
  if (options.deadline_us > 0.0) {
    result.deadline_miss_rate = misses * inv_n;
    result.deadline_miss_ci = util::wilson_interval_95(misses, options.trials);
  }
  result.trials_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(options.trials) / elapsed_s : 0.0;
  return result;
}

// ------------------------------------------- permanent-fault injection

namespace {

/// Slot written by one failure-injection trial. `variant` is the index of
/// the executed variant; meaningless when !available.
struct FailureTrialOutcome {
  bool available = false;
  std::size_t variant = 0;
  TrialOutcome out;
};

}  // namespace

bool failure_sim_results_identical(const FailureSimResult& a,
                                   const FailureSimResult& b) noexcept {
  return a.trials == b.trials &&                          //
         a.available_trials == b.available_trials &&      //
         a.availability == b.availability &&              //
         a.availability_ci == b.availability_ci &&        //
         a.makespan_mean_us == b.makespan_mean_us &&      //
         a.makespan_stddev_us == b.makespan_stddev_us &&  //
         a.makespan_ci_us == b.makespan_ci_us &&          //
         a.error_prob == b.error_prob &&                  //
         a.error_ci == b.error_ci &&                      //
         a.energy_mean_uj == b.energy_mean_uj &&          //
         a.energy_stddev_uj == b.energy_stddev_uj &&      //
         a.energy_ci_uj == b.energy_ci_uj &&              //
         a.variant_trials == b.variant_trials;
}

FailureSimResult simulate_with_failures(
    const app::TaskGraph& graph, const platform::Architecture& architecture,
    const std::vector<SimVariant>& variants,
    const std::vector<std::vector<char>>& variant_failures,
    const FailureSimOptions& options) {
  const std::size_t n = graph.num_tasks();
  const std::size_t num_pes = architecture.num_pes();
  if (variants.empty()) {
    throw std::invalid_argument("simulate_with_failures: no variants");
  }
  if (variant_failures.size() != variants.size()) {
    throw std::invalid_argument(
        "simulate_with_failures: variant/failure-mask count mismatch");
  }
  if (options.trials == 0) {
    throw std::invalid_argument(
        "simulate_with_failures: trials must be positive");
  }
  if (options.pe_failure_prob.size() != num_pes) {
    throw std::invalid_argument(
        "simulate_with_failures: PE failure probability count mismatch");
  }
  for (double q : options.pe_failure_prob) {
    if (!(q >= 0.0 && q <= 1.0)) {
      throw std::invalid_argument(
          "simulate_with_failures: PE failure probability outside [0, 1]");
    }
  }

  // Per-variant validation + precompute (rank vector, samplers), mirroring
  // simulate_schedule; plus the mask table the trial loop dispatches on.
  std::map<std::vector<char>, std::size_t> variant_of_mask;
  std::vector<std::vector<std::size_t>> ranks(variants.size());
  std::vector<std::vector<TaskSampler>> samplers(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const SimVariant& variant = variants[v];
    const std::vector<char>& mask = variant_failures[v];
    if (mask.size() != num_pes) {
      throw std::invalid_argument(
          "simulate_with_failures: failure mask size mismatch");
    }
    if (v == 0 &&
        std::any_of(mask.begin(), mask.end(), [](char f) { return f != 0; })) {
      throw std::invalid_argument(
          "simulate_with_failures: variant 0 must carry the no-failure mask");
    }
    if (!variant_of_mask.emplace(mask, v).second) {
      throw std::invalid_argument(
          "simulate_with_failures: duplicate failure mask");
    }
    if (variant.tasks.size() != n) {
      throw std::invalid_argument(
          "simulate_with_failures: variant task count mismatch");
    }
    if (variant.priority_order.size() != n) {
      throw std::invalid_argument(
          "simulate_with_failures: variant priority order size mismatch");
    }
    ranks[v].assign(n, n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::size_t task = variant.priority_order[pos];
      if (task >= n || ranks[v][task] != n) {
        throw std::invalid_argument(
            "simulate_with_failures: variant priority order is not a "
            "permutation of task ids");
      }
      ranks[v][task] = pos;
    }
    samplers[v].reserve(n);
    for (const SimTask& task : variant.tasks) {
      if (task.pe >= num_pes) {
        throw std::invalid_argument(
            "simulate_with_failures: PE index out of range");
      }
      if (mask[task.pe]) {
        throw std::invalid_argument(
            "simulate_with_failures: variant maps a task onto a PE its own "
            "failure mask kills");
      }
      samplers[v].emplace_back(task.chain);  // validates the chain parameters
    }
  }
  {
    // Kahn pass (once — the graph is shared by every variant).
    std::vector<std::size_t> pending(n);
    std::vector<std::size_t> frontier;
    for (std::size_t t = 0; t < n; ++t) {
      pending[t] = graph.predecessors(t).size();
      if (pending[t] == 0) frontier.push_back(t);
    }
    std::size_t visited = 0;
    while (!frontier.empty()) {
      const std::size_t t = frontier.back();
      frontier.pop_back();
      ++visited;
      for (std::size_t succ : graph.successors(t)) {
        if (--pending[succ] == 0) frontier.push_back(succ);
      }
    }
    if (visited != n) {
      throw std::invalid_argument(
          "simulate_with_failures: task graph contains a cycle");
    }
  }

  const std::vector<double> zeta = graph.normalized_criticality();
  const platform::Interconnect& interconnect = architecture.interconnect();

  // One child stream per trial, split off serially (the simulate_schedule
  // contract). Inside each stream the draw order is fixed: first one uniform
  // per PE in PE-id order (the mission survival draws), then — only if the
  // drawn failure set is covered — the executed variant's task trials.
  util::Rng root(options.seed);
  std::vector<util::Rng> streams;
  streams.reserve(options.trials);
  for (std::size_t i = 0; i < options.trials; ++i) {
    streams.push_back(root.split());
  }

  std::vector<FailureTrialOutcome> outcomes(options.trials);
  const auto t0 = std::chrono::steady_clock::now();
  {
    const util::TraceSpan span("sim.failure_trial_batch");
    util::parallel_for(options.trials, [&](std::size_t i) {
      util::Rng& rng = streams[i];
      std::vector<char> mask(num_pes, 0);
      for (std::size_t p = 0; p < num_pes; ++p) {
        mask[p] = rng.uniform() < options.pe_failure_prob[p] ? 1 : 0;
      }
      const auto it = variant_of_mask.find(mask);
      if (it == variant_of_mask.end()) return;  // unavailable: nothing runs
      const std::size_t v = it->second;
      outcomes[i].available = true;
      outcomes[i].variant = v;
      outcomes[i].out =
          run_trial(graph, interconnect, variants[v].tasks, samplers[v],
                    ranks[v], zeta, num_pes, /*deadline_us=*/0.0, rng);
    });
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  {
    static util::Counter& runs_metric =
        util::metric_counter("sim.failure_runs");
    static util::Counter& trials_metric =
        util::metric_counter("sim.failure_trials");
    static util::Counter& lost_metric =
        util::metric_counter("sim.unavailable_trials");
    runs_metric.add();
    trials_metric.add(options.trials);
    std::uint64_t lost = 0;
    for (const FailureTrialOutcome& o : outcomes) lost += !o.available;
    lost_metric.add(lost);
    util::observe_seconds("sim.failure_batch_seconds", elapsed_s);
  }

  // Serial aggregation in trial order — identical whatever the thread count.
  FailureSimResult result;
  result.trials = options.trials;
  result.variant_trials.assign(variants.size(), 0);
  for (const FailureTrialOutcome& o : outcomes) {
    if (!o.available) continue;
    ++result.available_trials;
    ++result.variant_trials[o.variant];
  }
  result.availability = static_cast<double>(result.available_trials) /
                        static_cast<double>(options.trials);
  result.availability_ci = util::wilson_interval_95(
      static_cast<double>(result.available_trials), options.trials);

  if (result.available_trials > 0) {
    const double inv_a = 1.0 / static_cast<double>(result.available_trials);
    double error_weight = 0.0;
    for (const FailureTrialOutcome& o : outcomes) {
      if (!o.available) continue;
      result.makespan_mean_us += o.out.makespan_us * inv_a;
      result.energy_mean_uj += o.out.energy_uj * inv_a;
      error_weight += o.out.error_weight;
    }
    if (result.available_trials > 1) {
      double makespan_m2 = 0.0;
      double energy_m2 = 0.0;
      for (const FailureTrialOutcome& o : outcomes) {
        if (!o.available) continue;
        const double dm = o.out.makespan_us - result.makespan_mean_us;
        const double de = o.out.energy_uj - result.energy_mean_uj;
        makespan_m2 += dm * dm;
        energy_m2 += de * de;
      }
      const double inv_a1 =
          1.0 / static_cast<double>(result.available_trials - 1);
      result.makespan_stddev_us = std::sqrt(makespan_m2 * inv_a1);
      result.energy_stddev_uj = std::sqrt(energy_m2 * inv_a1);
    }
    result.makespan_ci_us =
        util::confidence_interval_95(result.makespan_mean_us,
                                     result.makespan_stddev_us,
                                     result.available_trials);
    result.energy_ci_uj = util::confidence_interval_95(
        result.energy_mean_uj, result.energy_stddev_uj,
        result.available_trials);
    // Same ulp clamp as simulate_schedule: zeta-normalized weights sum to at
    // most the trial count mathematically, but not always in floating point.
    error_weight = std::min(
        error_weight, static_cast<double>(result.available_trials));
    result.error_prob = error_weight * inv_a;
    result.error_ci =
        util::wilson_interval_95(error_weight, result.available_trials);
  }
  result.trials_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(options.trials) / elapsed_s : 0.0;
  return result;
}

}  // namespace clrearly::sim
