// Side-by-side comparison of analytic QosMetrics against simulated
// SimResults for a set of design points, with explicit agreement criteria —
// the report the sim_validation bench and the `clrearly simulate`
// subcommand emit.
//
// Agreement criteria (rationale in docs/SIMULATION.md):
//  * Makespan — |sim mean - analytic mean| <= sim CI half-width +
//    kJensenSigmaFactor * analytic makespan stddev. The analytic makespan is
//    a list schedule of per-task *means*; at every parallel merge the
//    simulated mean sits above it by Jensen's inequality (E[max] >= max E),
//    an offset of order the execution-time spread. The sigma term is that
//    documented first-order model tolerance; the CI half-width covers the
//    Monte Carlo noise on top.
//  * Error probability — the analytic value must fall inside the simulator's
//    Wilson interval widened by kErrorProbSlack. The weighted per-trial
//    estimator is exactly unbiased for the analytic value, so this is a
//    plain coverage check; the slack absorbs the (conservative) use of a
//    binomial interval for a sub-binomial weighted sum.
#pragma once

#include <string>
#include <vector>

#include "sched/qos.hpp"
#include "sim/schedule_sim.hpp"
#include "util/json.hpp"

namespace clrearly::sim {

/// Model tolerance for the Jensen bias of the analytic makespan, in units of
/// the analytic makespan stddev.
inline constexpr double kJensenSigmaFactor = 1.0;

/// Absolute widening of the Wilson interval in the error-probability check.
inline constexpr double kErrorProbSlack = 5e-4;

struct ValidationRow {
  std::string label;
  sched::QosMetrics analytic;
  SimResult simulated;

  double makespan_delta_us = 0.0;      ///< sim mean - analytic mean
  double makespan_tolerance_us = 0.0;  ///< CI half-width + Jensen term
  bool makespan_agrees = false;

  double error_delta = 0.0;  ///< sim estimate - analytic value
  bool error_agrees = false;

  /// Analytic P[makespan > deadline] (normal approximation) next to the
  /// simulated miss rate; 0 when the simulation ran without a deadline.
  double analytic_deadline_miss = 0.0;

  bool agrees() const noexcept { return makespan_agrees && error_agrees; }
};

/// Score one design point. Applies the agreement criteria above and, when
/// `simulated` carries a deadline, the analytic miss probability.
ValidationRow compare_design_point(std::string label,
                                   const sched::QosMetrics& analytic,
                                   const SimResult& simulated);

struct ValidationReport {
  std::vector<ValidationRow> rows;

  /// Fractions of rows passing each criterion (1.0 for an empty report).
  double makespan_agreement() const noexcept;
  double error_agreement() const noexcept;
  double agreement() const noexcept;  ///< both criteria
};

/// One CSV row per design point (analytic vs simulated values, deltas,
/// agreement flags). Throws std::runtime_error when `path` cannot be opened.
void write_validation_csv(const std::string& path,
                          const ValidationReport& report);

/// JSON forms, for embedding in BENCH_*.json files.
util::JsonValue validation_row_json(const ValidationRow& row);
util::JsonValue validation_report_json(const ValidationReport& report);

}  // namespace clrearly::sim
