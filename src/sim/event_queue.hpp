// Deterministic discrete-event kernel for the Monte Carlo schedule
// simulator.
//
// A plain binary min-heap of (time, kind, task) events, ordered by time with
// insertion sequence as the tie-break: two events at the same timestamp pop
// in the order they were pushed, on every platform and at every thread
// count. That total order is what makes whole-simulation runs bit-identical
// for a fixed seed — the scheduler never has to break a tie with anything
// less reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clrearly::sim {

enum class EventKind : std::uint8_t {
  kDataReady,  ///< all of a task's input data has arrived; it may dispatch
  kComplete,   ///< a task finished executing; its PE is free again
};

struct Event {
  double time_us = 0.0;
  EventKind kind = EventKind::kDataReady;
  std::size_t task = 0;
};

class EventQueue {
 public:
  /// Schedule `event`; events at equal times pop in push order.
  void push(const Event& event);

  /// Remove and return the earliest event. Undefined when empty().
  Event pop();

  /// Earliest pending timestamp. Undefined when empty().
  double next_time_us() const noexcept;

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Drop all pending events and reset the sequence counter — lets one
  /// queue be reused across Monte Carlo trials without reallocating.
  void clear() noexcept;

 private:
  struct Entry {
    Event event;
    std::uint64_t seq = 0;  ///< push order, the deterministic tie-break

    bool earlier_than(const Entry& other) const noexcept {
      if (event.time_us != other.event.time_us) {
        return event.time_us < other.event.time_us;
      }
      return seq < other.seq;
    }
  };

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace clrearly::sim
