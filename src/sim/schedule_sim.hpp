// System-level Monte Carlo schedule simulation — the end-to-end oracle for
// the analytic QoS pipeline.
//
// The analytic path (sched::estimate_qos) composes closed-form pieces: the
// Fig. 3 Markov chains give per-task expectations, a list schedule of those
// expectations gives the makespan, criticality weighting gives the error
// probability. This simulator replays the whole application instead: every
// trial samples each task's execution time and error outcome from the same
// fault process the chains model (sim::TaskSampler), then executes the task
// graph event-by-event on the architecture — respecting precedence, PE
// contention and interconnect transfer delays — and records the realized
// makespan, criticality-weighted error, energy and deadline outcome.
// Agreement between SimResult and QosMetrics validates every approximation
// the analytic path stacks on top of the chains (see docs/SIMULATION.md).
//
// Determinism: trial i consumes the i-th child stream split off the seed's
// root RNG, trials write per-index slots under util::parallel_for, and all
// DES ties break on insertion order — so a (seed, trials) pair produces
// bit-identical SimResults at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "app/task_graph.hpp"
#include "platform/architecture.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "util/stats.hpp"

namespace clrearly::sim {

/// One task's fully resolved simulation inputs: the fault-process parameters
/// of its chosen (implementation, CLR configuration) on its PE, the PE
/// binding, and the average power drawn while executing.
struct SimTask {
  reliability::ClrChainParams chain;
  std::size_t pe = 0;
  double power_w = 0.0;
};

struct SimOptions {
  std::size_t trials = 10000;
  std::uint64_t seed = 1;
  /// Deadline for per-trial miss accounting; <= 0 disables it.
  double deadline_us = 0.0;
};

/// Monte Carlo estimates with 95% confidence intervals. Every field except
/// trials_per_sec is a pure function of (inputs, seed, trials) — see
/// sim_results_identical().
struct SimResult {
  std::size_t trials = 0;

  double makespan_mean_us = 0.0;
  double makespan_stddev_us = 0.0;
  double makespan_min_us = 0.0;
  double makespan_max_us = 0.0;
  util::Interval makespan_ci_us;  ///< normal-approximation CI of the mean

  /// Criticality-weighted error probability: per trial the sum of
  /// normalized criticalities zeta_t of tasks that finished corrupted — the
  /// Monte Carlo counterpart of QosMetrics::error_prob (whose analytic value
  /// sum_t zeta_t * ErrProb_t is exactly this estimator's expectation).
  double error_prob = 0.0;
  util::Interval error_ci;  ///< Wilson 95% on the weighted successes

  double energy_mean_uj = 0.0;
  double energy_stddev_uj = 0.0;
  util::Interval energy_ci_uj;

  double deadline_us = 0.0;        ///< echoed from SimOptions
  double deadline_miss_rate = 0.0;
  util::Interval deadline_miss_ci;  ///< Wilson 95%; {0,0} when no deadline

  double mean_faults = 0.0;     ///< raw fault events per trial
  double mean_rollbacks = 0.0;  ///< successful tolerance actions per trial

  /// Wall-clock throughput of the trial loop. NOT deterministic; excluded
  /// from sim_results_identical().
  double trials_per_sec = 0.0;
};

/// Bitwise equality of every statistical field (everything except the
/// wall-clock trials_per_sec) — the determinism contract two runs at
/// different thread counts must satisfy.
bool sim_results_identical(const SimResult& a, const SimResult& b) noexcept;

/// Simulate `options.trials` full application runs.
///
/// Execution model: self-timed replay of the priority order. A task becomes
/// ready when the data of all its predecessors has arrived (cross-PE edges
/// pay the interconnect transfer delay via sched::data_arrival_us, exactly
/// as the list scheduler prices them); whenever a PE is idle it starts the
/// ready task bound to it that comes earliest in `priority_order`. Energy
/// counts active execution only (sampled time x power), matching the
/// analytic Eq. 4 definition.
///
/// Throws std::invalid_argument on malformed inputs (size mismatches,
/// non-permutation priority order, PE indices out of range, zero trials, a
/// cyclic graph) and like ClrChainParams::validate() on bad chain inputs.
SimResult simulate_schedule(const app::TaskGraph& graph,
                            const platform::Architecture& architecture,
                            const std::vector<SimTask>& tasks,
                            const std::vector<std::size_t>& priority_order,
                            const SimOptions& options);

// ------------------------------------------- permanent-fault injection

/// One executable configuration of the application: the nominal mapping or
/// a degraded-mode fallback (a repaired mapping for one failed-PE subset).
struct SimVariant {
  std::vector<SimTask> tasks;
  std::vector<std::size_t> priority_order;
};

struct FailureSimOptions {
  std::size_t trials = 10000;
  std::uint64_t seed = 1;
  /// Mission loss probability per PE (size must equal the PE count) — the
  /// core::pe_failure_probabilities() Weibull CDF values.
  std::vector<double> pe_failure_prob;
};

/// Monte Carlo estimates of a k-resilient design under permanent PE loss.
/// Makespan/error/energy statistics are conditional on availability (the
/// trial drew no failure, or a failure set some fallback variant covers).
struct FailureSimResult {
  std::size_t trials = 0;
  std::size_t available_trials = 0;

  double availability = 0.0;
  util::Interval availability_ci;  ///< Wilson 95%

  double makespan_mean_us = 0.0;
  double makespan_stddev_us = 0.0;
  util::Interval makespan_ci_us;  ///< normal-approximation CI of the mean

  /// Criticality-weighted error probability, conditional on availability
  /// (same estimator as SimResult::error_prob over the available trials).
  double error_prob = 0.0;
  util::Interval error_ci;  ///< Wilson 95% on the weighted successes

  double energy_mean_uj = 0.0;
  double energy_stddev_uj = 0.0;
  util::Interval energy_ci_uj;

  /// Trials executed per variant (index 0 = nominal), aligned with the
  /// `variants` argument. Sums to available_trials.
  std::vector<std::size_t> variant_trials;

  /// Wall-clock throughput; NOT deterministic, excluded from
  /// failure_sim_results_identical().
  double trials_per_sec = 0.0;
};

/// Bitwise equality of every statistical field (the thread-count
/// determinism contract; trials_per_sec excluded).
bool failure_sim_results_identical(const FailureSimResult& a,
                                   const FailureSimResult& b) noexcept;

/// Simulate `options.trials` missions with permanent PE failures injected.
///
/// Each trial first draws every PE's survival (one uniform per PE, in PE-id
/// order — a fixed draw prefix per trial stream, so results stay
/// bit-identical at any thread count), then executes the variant covering
/// the drawn failure set: variants[i] handles the failure mask
/// variant_failures[i], variants[0] the no-failure mask. A drawn set no
/// variant covers (more than k losses, or an unrepairable subset) counts
/// the trial unavailable and runs nothing.
///
/// Throws std::invalid_argument on malformed inputs: size mismatches, a
/// non-zero variant_failures[0], duplicate masks, probabilities outside
/// [0, 1], or a variant that maps a task onto a PE its own failure mask
/// kills.
FailureSimResult simulate_with_failures(
    const app::TaskGraph& graph, const platform::Architecture& architecture,
    const std::vector<SimVariant>& variants,
    const std::vector<std::vector<char>>& variant_failures,
    const FailureSimOptions& options);

}  // namespace clrearly::sim
