#include "sim/event_queue.hpp"

#include <utility>

namespace clrearly::sim {

void EventQueue::push(const Event& event) {
  heap_.push_back(Entry{event, next_seq_++});
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop() {
  const Event top = heap_.front().event;
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

double EventQueue::next_time_us() const noexcept {
  return heap_.front().event.time_us;
}

void EventQueue::clear() noexcept {
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_[i].earlier_than(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && heap_[left].earlier_than(heap_[smallest])) smallest = left;
    if (right < n && heap_[right].earlier_than(heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace clrearly::sim
