#include "sim/validate.hpp"

#include <cmath>
#include <utility>

#include "util/csv.hpp"

namespace clrearly::sim {

ValidationRow compare_design_point(std::string label,
                                   const sched::QosMetrics& analytic,
                                   const SimResult& simulated) {
  ValidationRow row;
  row.label = std::move(label);
  row.analytic = analytic;
  row.simulated = simulated;

  row.makespan_delta_us = simulated.makespan_mean_us - analytic.makespan_us;
  row.makespan_tolerance_us =
      simulated.makespan_ci_us.half_width() +
      kJensenSigmaFactor * analytic.makespan_stddev_us;
  row.makespan_agrees =
      std::abs(row.makespan_delta_us) <= row.makespan_tolerance_us;

  row.error_delta = simulated.error_prob - analytic.error_prob;
  row.error_agrees =
      analytic.error_prob >= simulated.error_ci.lo - kErrorProbSlack &&
      analytic.error_prob <= simulated.error_ci.hi + kErrorProbSlack;

  if (simulated.deadline_us > 0.0) {
    row.analytic_deadline_miss =
        sched::deadline_miss_probability(analytic, simulated.deadline_us);
  }
  return row;
}

namespace {

double fraction(const ValidationReport& report,
                bool ValidationRow::* flag) noexcept {
  if (report.rows.empty()) return 1.0;
  std::size_t passing = 0;
  for (const ValidationRow& row : report.rows) {
    if (row.*flag) ++passing;
  }
  return static_cast<double>(passing) /
         static_cast<double>(report.rows.size());
}

}  // namespace

double ValidationReport::makespan_agreement() const noexcept {
  return fraction(*this, &ValidationRow::makespan_agrees);
}

double ValidationReport::error_agreement() const noexcept {
  return fraction(*this, &ValidationRow::error_agrees);
}

double ValidationReport::agreement() const noexcept {
  if (rows.empty()) return 1.0;
  std::size_t passing = 0;
  for (const ValidationRow& row : rows) {
    if (row.agrees()) ++passing;
  }
  return static_cast<double>(passing) / static_cast<double>(rows.size());
}

void write_validation_csv(const std::string& path,
                          const ValidationReport& report) {
  util::CsvWriter csv(path);
  csv.row({"label", "trials",
           "analytic_makespan_us", "sim_makespan_mean_us",
           "sim_makespan_ci_lo_us", "sim_makespan_ci_hi_us",
           "makespan_delta_us", "makespan_tolerance_us", "makespan_agrees",
           "analytic_error_prob", "sim_error_prob",
           "sim_error_ci_lo", "sim_error_ci_hi", "error_delta",
           "error_agrees",
           "analytic_energy_uj", "sim_energy_mean_uj",
           "deadline_us", "analytic_deadline_miss", "sim_deadline_miss_rate",
           "mean_faults", "mean_rollbacks"});
  for (const ValidationRow& row : report.rows) {
    csv.field(row.label)
        .field(row.simulated.trials)
        .field(row.analytic.makespan_us)
        .field(row.simulated.makespan_mean_us)
        .field(row.simulated.makespan_ci_us.lo)
        .field(row.simulated.makespan_ci_us.hi)
        .field(row.makespan_delta_us)
        .field(row.makespan_tolerance_us)
        .field(row.makespan_agrees ? "yes" : "no")
        .field(row.analytic.error_prob)
        .field(row.simulated.error_prob)
        .field(row.simulated.error_ci.lo)
        .field(row.simulated.error_ci.hi)
        .field(row.error_delta)
        .field(row.error_agrees ? "yes" : "no")
        .field(row.analytic.energy_uj)
        .field(row.simulated.energy_mean_uj)
        .field(row.simulated.deadline_us)
        .field(row.analytic_deadline_miss)
        .field(row.simulated.deadline_miss_rate)
        .field(row.simulated.mean_faults)
        .field(row.simulated.mean_rollbacks);
    csv.end_row();
  }
  csv.flush();
}

util::JsonValue validation_row_json(const ValidationRow& row) {
  util::JsonObject o;
  o["label"] = row.label;
  o["trials"] = row.simulated.trials;
  o["analytic_makespan_us"] = row.analytic.makespan_us;
  o["analytic_makespan_stddev_us"] = row.analytic.makespan_stddev_us;
  o["sim_makespan_mean_us"] = row.simulated.makespan_mean_us;
  o["sim_makespan_stddev_us"] = row.simulated.makespan_stddev_us;
  o["sim_makespan_ci_us"] = util::JsonArray{
      row.simulated.makespan_ci_us.lo, row.simulated.makespan_ci_us.hi};
  o["makespan_delta_us"] = row.makespan_delta_us;
  o["makespan_tolerance_us"] = row.makespan_tolerance_us;
  o["makespan_agrees"] = row.makespan_agrees;
  o["analytic_error_prob"] = row.analytic.error_prob;
  o["sim_error_prob"] = row.simulated.error_prob;
  o["sim_error_ci"] = util::JsonArray{row.simulated.error_ci.lo,
                                      row.simulated.error_ci.hi};
  o["error_delta"] = row.error_delta;
  o["error_agrees"] = row.error_agrees;
  o["analytic_energy_uj"] = row.analytic.energy_uj;
  o["sim_energy_mean_uj"] = row.simulated.energy_mean_uj;
  o["sim_energy_ci_uj"] = util::JsonArray{row.simulated.energy_ci_uj.lo,
                                          row.simulated.energy_ci_uj.hi};
  if (row.simulated.deadline_us > 0.0) {
    o["deadline_us"] = row.simulated.deadline_us;
    o["analytic_deadline_miss"] = row.analytic_deadline_miss;
    o["sim_deadline_miss_rate"] = row.simulated.deadline_miss_rate;
    o["sim_deadline_miss_ci"] = util::JsonArray{
        row.simulated.deadline_miss_ci.lo, row.simulated.deadline_miss_ci.hi};
  }
  o["mean_faults"] = row.simulated.mean_faults;
  o["mean_rollbacks"] = row.simulated.mean_rollbacks;
  return o;
}

util::JsonValue validation_report_json(const ValidationReport& report) {
  util::JsonArray rows;
  rows.reserve(report.rows.size());
  for (const ValidationRow& row : report.rows) {
    rows.push_back(validation_row_json(row));
  }
  util::JsonObject o;
  o["rows"] = std::move(rows);
  o["makespan_agreement"] = report.makespan_agreement();
  o["error_agreement"] = report.error_agreement();
  o["agreement"] = report.agreement();
  return o;
}

}  // namespace clrearly::sim
