// Catalogs of reliability methods per layer (TABLE II).
//
//   Hardware (HWRel)             — spatial redundancy: partial/full TMR,
//                                  circuit hardening (DVFS is modeled as a
//                                  separate decision axis, see ClrSpace).
//   System software (SSWRel)     — temporal redundancy: retry,
//                                  checkpoint/rollback; carries detection
//                                  coverage and tolerance success, plus the
//                                  implicit masking of the software stack.
//   Application software (ASWRel)— information redundancy: checksum/ABFT,
//                                  Hamming correction, code tripling.
//
// Each method is described by the parameters the Markov-chain builder
// consumes. The paper's evaluation additionally uses three *generic* tunable
// methods (GenM, GenD, GenT) for masking / detection / tolerance — the
// gen_* factories below construct those.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace clrearly::reliability {

/// Spatial-redundancy method at the hardware layer.
struct HwMethod {
  std::string name;
  /// Probability that an unmasked-by-architecture SEU is masked by the
  /// spatial redundancy (e.g. out-voted by TMR).
  double masking = 0.0;
  /// Execution-time multiplier (voting / hardened-cell slowdown).
  double time_factor = 1.0;
  /// Power multiplier (replicated logic).
  double power_factor = 1.0;
  /// Area multiplier — tracked for reporting; not an optimization objective
  /// in the paper's system-level problem.
  double area_factor = 1.0;

  void validate() const;
};

/// Temporal-redundancy method at the system-software layer.
struct SswMethod {
  std::string name;
  /// Number of inter-checkpoint intervals the task is split into
  /// (1 = no checkpointing; retry is 1 interval with rollback-to-start).
  std::size_t intervals = 1;
  /// Coverage of the error-detection mechanism (probability a surviving
  /// error is detected).
  double detection_coverage = 0.0;
  /// Probability that the tolerance action (rollback/retry) succeeds.
  double tolerance_success = 0.0;
  /// Implicit masking of the system-software stack (paper: ImplMask sweep).
  double implicit_masking = 0.0;
  /// Detection overhead per interval, as a fraction of the task's
  /// (post-HW/ASW-scaling) execution time.
  double detection_time_frac = 0.0;
  /// Tolerance (rollback + restore) overhead, fraction of execution time.
  double tolerance_time_frac = 0.0;
  /// Checkpoint-creation overhead per checkpoint, fraction of exec time.
  double checkpoint_time_frac = 0.0;
  /// Probability an error corrupts checkpoint creation itself (dotted edge
  /// in Fig. 3b); 0 disables the path.
  double checkpoint_error_prob = 0.0;

  /// True when the method provides any temporal redundancy at all.
  bool is_active() const noexcept {
    return detection_coverage > 0.0 || intervals > 1;
  }

  void validate() const;
};

/// Information-redundancy method at the application-software layer.
struct AswMethod {
  std::string name;
  /// Probability an error escaping the lower layers is masked/corrected.
  double masking = 0.0;
  /// Execution-time multiplier (encode/verify work).
  double time_factor = 1.0;
  /// Power multiplier.
  double power_factor = 1.0;

  void validate() const;
};

/// ---- Concrete catalogs (TABLE II sample methods) ----

/// none, circuit hardening, partial TMR, full TMR.
std::vector<HwMethod> default_hw_methods();

/// none, retry, checkpoint/rollback with 2..4 intervals.
std::vector<SswMethod> default_ssw_methods();

/// none, checksum (ABFT), Hamming correction, code tripling.
std::vector<AswMethod> default_asw_methods();

/// ---- Generic tunable methods (GenM / GenD / GenT of Section VI-A) ----

/// Generic masking method at the HW layer: masking probability m with
/// time/power overhead fractions.
HwMethod gen_masking(double m, double time_overhead, double power_overhead);

/// Generic detection method at the SSW layer: coverage c with detection-time
/// fraction; no tolerance.
SswMethod gen_detection(double coverage, double detection_time_frac);

/// Generic tolerance method at the SSW layer: detection coverage c,
/// tolerance success t, `intervals` checkpoint intervals with the given
/// overhead fractions.
SswMethod gen_tolerance(double coverage, double tolerance_success,
                        std::size_t intervals, double detection_time_frac,
                        double tolerance_time_frac,
                        double checkpoint_time_frac);

}  // namespace clrearly::reliability
