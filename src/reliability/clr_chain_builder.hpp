// Construction of the paper's Fig. 3 Markov chains for an arbitrary CLR
// configuration, and their solution into task-level reliability numbers.
//
// Per inter-checkpoint interval (ICI) the chain threads
//   Exec -> HWRel -> SSWImpl -> SSWDet -> SSWTol -> ASWRel
// with residence time only on Exec (useful execution + always-on detection),
// SSWTol (rollback/restore) and Chkpnt (checkpoint creation). Masked or
// tolerated errors continue; in the *functional* chain errors that escape
// every layer absorb into Error, clean completion into noError. In the
// *timing* chain the outcome is irrelevant — all forward paths lead to End —
// so the expected time to absorption is the average execution time whether or
// not the result is correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "markov/chain.hpp"
#include "markov/chain_batch.hpp"
#include "util/memo_cache.hpp"

namespace clrearly::reliability {

/// Fully resolved numeric inputs for one task implementation under one CLR
/// configuration (all masking/DVFS/overhead scaling already applied — see
/// TaskAnalyzer for the translation from catalog entries).
struct ClrChainParams {
  double exec_time_us = 0.0;        ///< total useful execution time
  double lambda_per_us = 0.0;       ///< effective unmasked-by-arch SEU rate
  double hw_masking = 0.0;          ///< spatial-redundancy masking m_HW
  double implicit_ssw_masking = 0.0;///< m_implSSW
  double detection_coverage = 0.0;  ///< cov_Det
  double tolerance_success = 0.0;   ///< m_Tol
  double asw_masking = 0.0;         ///< m_ASW
  std::size_t intervals = 1;        ///< number of ICIs (checkpoints + 1)
  double detection_time_us = 0.0;   ///< T_Det, paid once per ICI pass
  double tolerance_time_us = 0.0;   ///< T_Tol, paid per detected error
  double checkpoint_time_us = 0.0;  ///< T_Chk, per checkpoint
  double checkpoint_error_prob = 0.0; ///< p_Chke (dotted edge of Fig. 3b)

  /// Unequal checkpoint intervals (a capability the paper's Section IV
  /// explicitly claims for the Markov approach): fraction of exec_time_us
  /// spent in each ICI. Empty = equal split; otherwise must have `intervals`
  /// entries, each positive, summing to 1 (within 1e-9).
  std::vector<double> interval_fractions;

  /// Validate ranges; throws std::invalid_argument.
  void validate() const;

  /// Useful execution time of interval `i` (honoring interval_fractions).
  double interval_time(std::size_t i) const;

  /// Probability of error-free useful execution of interval `i`:
  /// pne_i = exp(-lambda * interval_time(i)).
  double pne_for_interval(std::size_t i) const;

  /// pne of the first interval under an equal split — kept for the common
  /// equal-interval case and backward compatibility.
  double pne_per_interval() const;
};

/// Timing chain of Fig. 3a — single absorbing state End (index 0).
markov::AbsorbingChain build_timing_chain(const ClrChainParams& params);

/// Functional chain of Fig. 3b — absorbing states Error (0) and noError (1).
markov::AbsorbingChain build_functional_chain(const ClrChainParams& params);

/// Reference (pre-kernel) construction path: the named-state ChainBuilder
/// assembly with full input validation. Produces matrices bit-identical to
/// the dense assemblers below; kept for differential tests and the
/// chain-kernel benchmark's "old path" baseline.
markov::AbsorbingChain build_chain_reference(const ClrChainParams& params,
                                             bool functional);

/// Fill `ws.q`, `ws.r` and `ws.residence` with the Fig. 3a timing chain
/// (resp. Fig. 3b functional chain) for `params`, reusing the workspace's
/// storage — no allocation once `ws` is warm. The assembled matrices are
/// bit-identical to what build_chain_reference() hands the AbsorbingChain
/// constructor. `params` must already be validated; call
/// markov::solve_row0(ws, ...) afterwards for the row-0 metrics.
void assemble_timing_chain(const ClrChainParams& params,
                           markov::ChainWorkspace& ws);
void assemble_functional_chain(const ClrChainParams& params,
                               markov::ChainWorkspace& ws);

/// Indices of the functional chain's absorbing states.
inline constexpr std::size_t kAbsorbError = 0;
inline constexpr std::size_t kAbsorbNoError = 1;

/// Task-level reliability numbers from both chains.
struct ClrChainAnalysis {
  double min_exec_time_us = 0.0;  ///< error-free path length
  double avg_exec_time_us = 0.0;  ///< E[time to absorption], timing chain
  double exec_time_stddev_us = 0.0;
  double error_prob = 0.0;        ///< P[absorb in Error], functional chain
};

/// Canonical 128-bit key of the chain solve for `params`.
///
/// The key streams exactly the quantities the Fig. 3 chains are built from —
/// the layer maskings/coverages, the overhead residence times, the interval
/// count, and the *derived* per-interval values interval_time(i) and
/// pne_for_interval(i) — rather than the raw struct bytes. Two parameter
/// sets that resolve to the same chain therefore map to the same key even
/// when their representations differ (e.g. an explicit equal-split
/// interval_fractions vector vs the empty default, or distinct catalog
/// entries with identical numbers), and equal keys imply bit-identical
/// analysis results because the chains built from them are bit-identical.
util::Key128 chain_cache_key(const ClrChainParams& params);

/// Build and solve both chains for `params`, bypassing the cache (the pure
/// reference path; also what the cache itself runs on a miss).
ClrChainAnalysis analyze_clr_chain_uncached(const ClrChainParams& params);

/// Build and solve both chains for `params`. Memoized through the global
/// chain-solve cache (keyed by chain_cache_key) when caching is enabled
/// (util::cache_capacity() > 0); results are bit-identical either way.
ClrChainAnalysis analyze_clr_chain(const ClrChainParams& params);

/// Counters of the process-wide chain-solve cache (zeros when disabled).
util::CacheStats chain_cache_stats();

/// Per-chain outcome of a batched analysis.
enum class ChainSolveStatus : std::uint8_t {
  kOk = 0,
  kSingular = 1,  ///< I - Q singular (non-absorbing chain); analysis zeroed
};

/// Tuning knobs for analyze_clr_chain_batch. Defaults are the production
/// configuration; tests and the benchmark override them to pin down one
/// variable at a time.
struct ChainBatchOptions {
  /// Lanes per kernel group; 0 picks markov::preferred_batch_width() for
  /// the active SIMD level (8 under AVX-512, else 4).
  std::size_t group_width = 0;
  /// Consult the chain-solve memo cache for hits and backfill solved
  /// misses. Off for raw-kernel benchmarking.
  bool use_cache = true;
};

/// Batched dense assembly: fill `batch` (already configure()d for
/// `lanes.size()` lanes) with the Fig. 3a timing (resp. 3b functional)
/// chain of each lane's parameters, lane-major. Every lane's Q / R /
/// residence values are computed by exactly the scalar assemble_*_chain
/// arithmetic, so a batched solve of lane l is bit-identical to a scalar
/// solve of *lanes[l]. All lanes must share one size class (same
/// `intervals`); pad lanes simply repeat a real ClrChainParams pointer.
void assemble_clr_chain_batch(
    std::span<const ClrChainParams* const> lanes, bool functional,
    markov::ChainBatch& batch);

/// Analyze many configurations at once: consult the memo cache, dedupe
/// identical parameter sets (canonical Key128), partition the remaining
/// misses into size classes (same transient count), solve each class in
/// lane groups through markov::solve_row0_batch, and backfill the cache.
/// Results are positionally parallel to `params` and bit-identical to
/// calling analyze_clr_chain on each element — at every group width and on
/// every SIMD dispatch path (pinned by the differential tests).
///
/// A non-absorbing chain (singular I - Q) throws std::domain_error exactly
/// like the scalar path — unless `status` is non-null, in which case no
/// throw: (*status)[i] reports per-chain outcomes and singular entries get
/// a value-initialized ClrChainAnalysis.
///
/// Instrumented via util::metrics: chain.batch.requests / cache_hits /
/// dedupe_hits / batches / lanes_filled / pad_lanes.
std::vector<ClrChainAnalysis> analyze_clr_chain_batch(
    std::span<const ClrChainParams> params, const ChainBatchOptions& options = {},
    std::vector<ChainSolveStatus>* status = nullptr);

/// Sweep the checkpoint count 1..max_intervals (equal splits) and return the
/// interval count minimizing average execution time — the classic
/// checkpoint-placement question, answered through the same chains.
/// `params.intervals`/`interval_fractions` are ignored. Throws if every
/// candidate chain is non-absorbing.
struct CheckpointSweepResult {
  std::size_t best_intervals = 1;
  double best_avg_time_us = 0.0;
  std::vector<double> avg_time_per_intervals;  ///< index 0 = 1 interval
};
CheckpointSweepResult optimize_checkpoint_intervals(ClrChainParams params,
                                                    std::size_t max_intervals);

}  // namespace clrearly::reliability
