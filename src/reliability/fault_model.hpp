// Soft-error and thermal models used by the task-level analysis.
//
// The Markov-chain models consume a per-microsecond SEU rate lambda; the
// paper obtains pne = exp(-lambda * Texec) for the no-error probability of a
// useful-execution interval. lambda depends on the raw environmental flux,
// the DVFS operating point (lower voltage -> higher susceptibility) and the
// PE's architectural masking (AVF): masked strikes never surface as errors.
//
// The lifetime model needs a junction temperature; at this abstraction level
// we use a lumped thermal resistance: T = T_ambient + theta * P.
#pragma once

#include "platform/dvfs.hpp"
#include "platform/pe.hpp"

namespace clrearly::reliability {

/// Environment + technology soft-error parameters.
struct FaultEnvironment {
  /// Raw SEU arrival rate at nominal voltage, per microsecond of execution.
  /// The default corresponds to an accelerated test / high-altitude profile;
  /// early-stage DSE cares about relative orderings, not absolute FIT.
  double base_seu_rate_per_us = 2.0e-5;

  /// Sensitivity exponent of the voltage/frequency scaling law
  /// (Das et al., DATE'14); lambda multiplies by 10^d at the lowest point.
  double dvfs_sensitivity = 2.0;

  /// Environmental multiplier (1 = ground level; ~100s at avionics
  /// altitudes). Exposed so experiments can sweep operating conditions.
  double environment_factor = 1.0;

  void validate() const;
};

/// Effective per-microsecond error rate seen by software running on PE type
/// `pe` in DVFS mode `dvfs_index`: raw flux x environment x DVFS scaling x
/// (1 - architectural masking).
double effective_seu_rate(const FaultEnvironment& env,
                          const platform::PeType& pe,
                          std::size_t dvfs_index);

/// Probability of at least one unmasked SEU during `exec_time_us`
/// microseconds of execution at rate `lambda` (per us): 1 - exp(-lambda*t).
double error_probability(double lambda, double exec_time_us);

/// Lumped thermal model.
struct ThermalModel {
  double ambient_c = 45.0;          ///< ambient/package temperature (C)
  double theta_c_per_w = 28.0;      ///< junction-to-ambient resistance (C/W)

  /// Steady-state junction temperature at average power `power_w`.
  double junction_temperature_c(double power_w) const;

  void validate() const;
};

}  // namespace clrearly::reliability
