#include "reliability/methods.hpp"

#include <stdexcept>

namespace clrearly::reliability {

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string(what) + " must be in [0,1]");
  }
}

void check_factor(double f, const char* what) {
  if (f < 1.0) {
    throw std::invalid_argument(std::string(what) +
                                " must be >= 1 (overheads cannot speed up)");
  }
}

}  // namespace

void HwMethod::validate() const {
  if (name.empty()) throw std::invalid_argument("HwMethod: empty name");
  check_probability(masking, "HwMethod masking");
  check_factor(time_factor, "HwMethod time_factor");
  check_factor(power_factor, "HwMethod power_factor");
  check_factor(area_factor, "HwMethod area_factor");
}

void SswMethod::validate() const {
  if (name.empty()) throw std::invalid_argument("SswMethod: empty name");
  if (intervals == 0) {
    throw std::invalid_argument("SswMethod: intervals must be >= 1");
  }
  check_probability(detection_coverage, "SswMethod detection_coverage");
  check_probability(tolerance_success, "SswMethod tolerance_success");
  check_probability(implicit_masking, "SswMethod implicit_masking");
  check_probability(checkpoint_error_prob, "SswMethod checkpoint_error_prob");
  for (double frac : {detection_time_frac, tolerance_time_frac,
                      checkpoint_time_frac}) {
    if (frac < 0.0) {
      throw std::invalid_argument("SswMethod: negative overhead fraction");
    }
  }
  if (intervals > 1 && tolerance_success == 0.0 && detection_coverage > 0.0) {
    // Checkpointing without working rollback detects but never recovers —
    // allowed (detection-only), but the intervals are then pointless.
    // Not an error; the tDSE will Pareto-filter such configurations out.
  }
}

void AswMethod::validate() const {
  if (name.empty()) throw std::invalid_argument("AswMethod: empty name");
  check_probability(masking, "AswMethod masking");
  check_factor(time_factor, "AswMethod time_factor");
  check_factor(power_factor, "AswMethod power_factor");
}

std::vector<HwMethod> default_hw_methods() {
  std::vector<HwMethod> methods;
  methods.push_back({.name = "HW:none",
                     .masking = 0.0,
                     .time_factor = 1.0,
                     .power_factor = 1.0,
                     .area_factor = 1.0});
  methods.push_back({.name = "HW:hardening",
                     .masking = 0.40,
                     .time_factor = 1.05,
                     .power_factor = 1.15,
                     .area_factor = 1.25});
  // Note: full TMR is deliberately absent — TABLE II's HWRel samples are
  // partial TMR / DVFS / circuit hardening; blanket triplication is the
  // costly traditional single-layer design CLR exists to avoid.
  methods.push_back({.name = "HW:partial-TMR",
                     .masking = 0.72,
                     .time_factor = 1.08,
                     .power_factor = 1.80,
                     .area_factor = 2.10});
  for (const auto& m : methods) m.validate();
  return methods;
}

std::vector<SswMethod> default_ssw_methods() {
  std::vector<SswMethod> methods;
  methods.push_back({.name = "SSW:none"});
  methods.push_back({.name = "SSW:retry",
                     .intervals = 1,
                     .detection_coverage = 0.90,
                     .tolerance_success = 0.95,
                     .implicit_masking = 0.0,
                     .detection_time_frac = 0.05,
                     .tolerance_time_frac = 0.02,
                     .checkpoint_time_frac = 0.0});
  for (std::size_t n : {2, 3, 4}) {
    SswMethod chk;
    chk.name = "SSW:chkpnt-" + std::to_string(n);
    chk.intervals = n;
    chk.detection_coverage = 0.92;
    chk.tolerance_success = 0.98;
    chk.implicit_masking = 0.0;
    chk.detection_time_frac = 0.05;
    chk.tolerance_time_frac = 0.03;
    chk.checkpoint_time_frac = 0.06;
    methods.push_back(chk);
  }
  for (const auto& m : methods) m.validate();
  return methods;
}

std::vector<AswMethod> default_asw_methods() {
  std::vector<AswMethod> methods;
  methods.push_back({.name = "ASW:none",
                     .masking = 0.0,
                     .time_factor = 1.0,
                     .power_factor = 1.0});
  methods.push_back({.name = "ASW:checksum",
                     .masking = 0.60,
                     .time_factor = 1.12,
                     .power_factor = 1.05});
  methods.push_back({.name = "ASW:hamming",
                     .masking = 0.80,
                     .time_factor = 1.28,
                     .power_factor = 1.10});
  methods.push_back({.name = "ASW:code-tripling",
                     .masking = 0.94,
                     .time_factor = 3.15,
                     .power_factor = 1.06});
  for (const auto& m : methods) m.validate();
  return methods;
}

HwMethod gen_masking(double m, double time_overhead, double power_overhead) {
  HwMethod method{.name = "GenM",
                  .masking = m,
                  .time_factor = 1.0 + time_overhead,
                  .power_factor = 1.0 + power_overhead,
                  .area_factor = 1.0 + power_overhead};
  method.validate();
  return method;
}

SswMethod gen_detection(double coverage, double detection_time_frac) {
  SswMethod method;
  method.name = "GenD";
  method.intervals = 1;
  method.detection_coverage = coverage;
  method.tolerance_success = 0.0;
  method.detection_time_frac = detection_time_frac;
  method.validate();
  return method;
}

SswMethod gen_tolerance(double coverage, double tolerance_success,
                        std::size_t intervals, double detection_time_frac,
                        double tolerance_time_frac,
                        double checkpoint_time_frac) {
  SswMethod method;
  method.name = "GenT";
  method.intervals = intervals;
  method.detection_coverage = coverage;
  method.tolerance_success = tolerance_success;
  method.detection_time_frac = detection_time_frac;
  method.tolerance_time_frac = tolerance_time_frac;
  method.checkpoint_time_frac = checkpoint_time_frac;
  method.validate();
  return method;
}

}  // namespace clrearly::reliability
