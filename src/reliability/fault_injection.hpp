// Semantic fault-injection simulation — the independent oracle for the
// Fig. 3 Markov models.
//
// Instead of walking the chains' transition matrices, this simulates the
// *process* they model: execute each inter-checkpoint interval, draw fault
// arrivals from the exponential law, flip the per-layer masking /
// detection / tolerance coins, roll back on successful tolerance, pay the
// checkpoint costs, and apply the information-redundancy correction to
// whatever escapes. Agreement between these measurements and
// analyze_clr_chain() validates both implementations against each other
// (they share no code beyond the parameter struct).
#pragma once

#include <cstddef>
#include <cstdint>

#include "reliability/clr_chain_builder.hpp"

namespace clrearly::reliability {

struct InjectionResult {
  std::size_t trials = 0;
  double mean_exec_time_us = 0.0;  ///< average simulated completion time
  double error_rate = 0.0;         ///< fraction of runs ending corrupted
  double mean_faults_injected = 0.0;  ///< raw fault events per run
  double mean_rollbacks = 0.0;        ///< successful tolerance actions per run
};

/// Run `trials` independent simulated executions of the task described by
/// `params`. Deterministic for a given seed. Throws like
/// ClrChainParams::validate() on bad inputs; runaway configurations (that
/// the analytical model rejects as non-absorbing) abort each trial after an
/// internal retry cap and are reported as errors.
InjectionResult inject_faults(const ClrChainParams& params,
                              std::size_t trials, std::uint64_t seed);

}  // namespace clrearly::reliability
