#include "reliability/clr_config.hpp"

#include <stdexcept>
#include <utility>

namespace clrearly::reliability {

ClrSpace::ClrSpace(std::vector<HwMethod> hw, std::vector<SswMethod> ssw,
                   std::vector<AswMethod> asw)
    : hw_(std::move(hw)), ssw_(std::move(ssw)), asw_(std::move(asw)) {
  if (hw_.empty() || ssw_.empty() || asw_.empty()) {
    throw std::invalid_argument("ClrSpace: all catalogs must be non-empty");
  }
  for (const auto& m : hw_) m.validate();
  for (const auto& m : ssw_) m.validate();
  for (const auto& m : asw_) m.validate();
  // Index 0 must be the do-nothing baseline so pinned axes are meaningful.
  if (hw_[0].masking != 0.0 || hw_[0].time_factor != 1.0) {
    throw std::invalid_argument("ClrSpace: hw[0] must be the no-op baseline");
  }
  if (ssw_[0].is_active()) {
    throw std::invalid_argument("ClrSpace: ssw[0] must be the no-op baseline");
  }
  if (asw_[0].masking != 0.0 || asw_[0].time_factor != 1.0) {
    throw std::invalid_argument("ClrSpace: asw[0] must be the no-op baseline");
  }
}

ClrSpace ClrSpace::paper_default() {
  return ClrSpace(default_hw_methods(), default_ssw_methods(),
                  default_asw_methods());
}

const HwMethod& ClrSpace::hw(const ClrConfig& c) const {
  if (c.hw >= hw_.size()) throw std::out_of_range("ClrSpace::hw");
  return hw_[c.hw];
}

const SswMethod& ClrSpace::ssw(const ClrConfig& c) const {
  if (c.ssw >= ssw_.size()) throw std::out_of_range("ClrSpace::ssw");
  return ssw_[c.ssw];
}

const AswMethod& ClrSpace::asw(const ClrConfig& c) const {
  if (c.asw >= asw_.size()) throw std::out_of_range("ClrSpace::asw");
  return asw_[c.asw];
}

std::size_t ClrSpace::size(std::size_t dvfs_modes, ClrAxes axes) const {
  if (dvfs_modes == 0) {
    throw std::invalid_argument("ClrSpace::size: need at least one DVFS mode");
  }
  std::size_t n = 1;
  if (axes.hw) n *= hw_.size();
  if (axes.ssw) n *= ssw_.size();
  if (axes.asw) n *= asw_.size();
  if (axes.dvfs) n *= dvfs_modes;
  return n;
}

std::vector<ClrConfig> ClrSpace::enumerate(std::size_t dvfs_modes,
                                           ClrAxes axes) const {
  if (dvfs_modes == 0) {
    throw std::invalid_argument(
        "ClrSpace::enumerate: need at least one DVFS mode");
  }
  const std::size_t hw_n = axes.hw ? hw_.size() : 1;
  const std::size_t ssw_n = axes.ssw ? ssw_.size() : 1;
  const std::size_t asw_n = axes.asw ? asw_.size() : 1;
  const std::size_t dvfs_n = axes.dvfs ? dvfs_modes : 1;

  std::vector<ClrConfig> out;
  out.reserve(hw_n * ssw_n * asw_n * dvfs_n);
  for (std::size_t h = 0; h < hw_n; ++h) {
    for (std::size_t s = 0; s < ssw_n; ++s) {
      for (std::size_t a = 0; a < asw_n; ++a) {
        for (std::size_t d = 0; d < dvfs_n; ++d) {
          out.push_back(ClrConfig{h, s, a, d});
        }
      }
    }
  }
  return out;
}

void ClrSpace::check(const ClrConfig& c, std::size_t dvfs_modes) const {
  if (c.hw >= hw_.size() || c.ssw >= ssw_.size() || c.asw >= asw_.size() ||
      c.dvfs >= dvfs_modes) {
    throw std::out_of_range("ClrSpace::check: configuration out of bounds");
  }
}

std::string ClrSpace::describe(const ClrConfig& c) const {
  return hw(c).name + " + " + ssw(c).name + " + " + asw(c).name +
         " @dvfs" + std::to_string(c.dvfs);
}

}  // namespace clrearly::reliability
