#include "reliability/fault_injection.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::reliability {

InjectionResult inject_faults(const ClrChainParams& params,
                              std::size_t trials, std::uint64_t seed) {
  params.validate();
  if (trials == 0) {
    throw std::invalid_argument("inject_faults: trials must be positive");
  }
  util::Rng rng(seed);

  InjectionResult result;
  result.trials = trials;
  double total_time = 0.0;
  double total_errors = 0.0;
  double total_faults = 0.0;
  double total_rollbacks = 0.0;

  // Retry cap per interval: generous enough that hitting it means the
  // configuration cannot make progress (the analytical model would have
  // rejected it as non-absorbing).
  constexpr std::size_t kMaxAttemptsPerInterval = 1'000'000;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    double time = 0.0;
    bool corrupted = false;

    for (std::size_t i = 0; i < params.intervals; ++i) {
      const double t_ici = params.interval_time(i);
      const double p_fault = 1.0 - std::exp(-params.lambda_per_us * t_ici);

      bool interval_done = false;
      for (std::size_t attempt = 0;
           attempt < kMaxAttemptsPerInterval && !interval_done; ++attempt) {
        // Useful execution plus the always-on detection pass.
        time += t_ici + params.detection_time_us;

        if (!rng.bernoulli(p_fault)) {
          interval_done = true;  // clean execution
          break;
        }
        total_faults += 1.0;

        // Hardware spatial redundancy out-votes the fault?
        if (rng.bernoulli(params.hw_masking)) {
          interval_done = true;
          break;
        }
        // Implicit system-software masking?
        if (rng.bernoulli(params.implicit_ssw_masking)) {
          interval_done = true;
          break;
        }
        // Detection.
        if (rng.bernoulli(params.detection_coverage)) {
          time += params.tolerance_time_us;
          if (rng.bernoulli(params.tolerance_success)) {
            total_rollbacks += 1.0;
            continue;  // roll back: re-execute this interval
          }
        }
        // Undetected or tolerance failed: the ASW layer is the last line.
        if (!rng.bernoulli(params.asw_masking)) {
          corrupted = true;
        }
        interval_done = true;  // execution proceeds either way
      }
      if (!interval_done) {
        // Retry cap exhausted — treat as a failed run.
        corrupted = true;
        break;
      }

      // Checkpoint between intervals.
      if (i + 1 < params.intervals) {
        time += params.checkpoint_time_us;
        if (rng.bernoulli(params.checkpoint_error_prob)) {
          corrupted = true;  // snapshot corrupted (Fig. 3b dotted edge)
        }
      }
    }

    total_time += time;
    if (corrupted) total_errors += 1.0;
  }

  result.mean_exec_time_us = total_time / static_cast<double>(trials);
  result.error_rate = total_errors / static_cast<double>(trials);
  result.mean_faults_injected = total_faults / static_cast<double>(trials);
  result.mean_rollbacks = total_rollbacks / static_cast<double>(trials);
  return result;
}

}  // namespace clrearly::reliability
