#include "reliability/weibull.hpp"

#include <cmath>
#include <stdexcept>

namespace clrearly::reliability {

namespace {
constexpr double kBoltzmannEvPerK = 8.617333262e-5;
constexpr double kCelsiusToKelvin = 273.15;
}  // namespace

Weibull::Weibull(double eta, double beta) : eta_(eta), beta_(beta) {
  if (eta <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("Weibull: eta and beta must be positive");
  }
}

double Weibull::reliability(double t) const {
  if (t < 0.0) throw std::invalid_argument("Weibull::reliability: t < 0");
  return std::exp(-std::pow(t / eta_, beta_));
}

double Weibull::cdf(double t) const { return 1.0 - reliability(t); }

double Weibull::pdf(double t) const {
  if (t < 0.0) throw std::invalid_argument("Weibull::pdf: t < 0");
  if (t == 0.0) {
    // Limit handling: density is 0 for beta > 1, 1/eta for beta == 1,
    // +inf for beta < 1; report the right limit for the common cases.
    if (beta_ > 1.0) return 0.0;
    if (beta_ == 1.0) return 1.0 / eta_;
  }
  const double z = t / eta_;
  return (beta_ / eta_) * std::pow(z, beta_ - 1.0) * std::exp(-std::pow(z, beta_));
}

double Weibull::hazard(double t) const {
  if (t < 0.0) throw std::invalid_argument("Weibull::hazard: t < 0");
  if (t == 0.0 && beta_ < 1.0) {
    throw std::domain_error("Weibull::hazard: infinite at t=0 for beta<1");
  }
  return (beta_ / eta_) * std::pow(t / eta_, beta_ - 1.0);
}

double Weibull::mttf() const { return eta_ * std::tgamma(1.0 + 1.0 / beta_); }

double Weibull::quantile(double p) const {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Weibull::quantile: p must be in [0,1)");
  }
  return eta_ * std::pow(-std::log(1.0 - p), 1.0 / beta_);
}

double ArrheniusAging::scale_eta(double eta_ref, double temp_c) const {
  if (eta_ref <= 0.0) {
    throw std::invalid_argument("ArrheniusAging: eta_ref must be positive");
  }
  const double t_k = temp_c + kCelsiusToKelvin;
  const double t_ref_k = reference_temp_c + kCelsiusToKelvin;
  if (t_k <= 0.0) {
    throw std::invalid_argument("ArrheniusAging: temperature below 0K");
  }
  const double exponent =
      (activation_energy_ev / kBoltzmannEvPerK) * (1.0 / t_k - 1.0 / t_ref_k);
  return eta_ref * std::exp(exponent);
}

}  // namespace clrearly::reliability
