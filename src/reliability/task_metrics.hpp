// Task-level performance metrics of an implementation under a CLR
// configuration (TABLE II, right column): minimum and average execution
// time, error probability, MTTF (via the Weibull scale parameter eta as a
// thermal-stress indicator), average power — plus energy and peak
// temperature, which TABLE IV's objective ladder also sweeps.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "platform/pe.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "reliability/clr_config.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/weibull.hpp"

namespace clrearly::reliability {

/// Characterization of one base implementation Impl(t,i) of a task at the
/// *nominal* DVFS point, before any CLR method is applied. In the paper this
/// comes from Gem5/McPAT runs; here from app::ImplCharacterizer. An
/// implementation targets a PE *class*: a binary compiled for the embedded
/// cores runs on any of them (their AVF masking differs, the code does not),
/// a bitstream only on a reconfigurable region.
struct BaseImpl {
  std::string name;
  platform::PeClass target = platform::PeClass::kEmbeddedProcessor;
  double base_exec_time_us = 0;   ///< nominal-DVFS execution time
  double base_power_w = 0;        ///< nominal-DVFS dynamic power

  /// Program-level SEU derating: kernels differ in how much of their
  /// architectural state is live (a strike on dead data is harmless). The
  /// effective fault rate is multiplied by this factor.
  double vulnerability = 1.0;

  /// Relative cost of system-software mechanisms for this kernel: detection
  /// (result checking) and checkpointing (state size) overheads scale with
  /// it. Distinguishes streaming kernels (small state, cheap checkpoints)
  /// from buffered ones.
  double ssw_overhead_factor = 1.0;

  /// Local-memory footprint in KB (code + working buffers); checked against
  /// the hosting PE's capacity when the storage constraint is enabled.
  double footprint_kb = 0.0;

  /// True when this implementation can execute on a PE of type `pe`.
  bool runs_on(const platform::PeType& pe) const noexcept {
    return pe.pe_class == target;
  }

  void validate() const;
};

/// The task-level metrics of TABLE II (plus energy / peak temperature).
struct TaskMetrics {
  double min_exec_time_us = 0;  ///< MinExT: error-free execution time
  double avg_exec_time_us = 0;  ///< AvgExT: Markov-chain expectation
  double exec_time_stddev_us = 0;  ///< spread of the execution-time law
  double error_prob = 0;        ///< ErrProb: P[uncorrected error]
  double avg_power_w = 0;       ///< W: average power during execution
  double energy_uj = 0;         ///< J: AvgExT * W
  double peak_temp_c = 0;       ///< steady-state junction temperature
  double eta_hours = 0;         ///< Weibull scale (stress indicator)
  double mttf_hours = 0;        ///< eta * Gamma(1 + 1/beta)
  double footprint_kb = 0;      ///< local-memory need (incl. checkpoint buffers)
};

/// Evaluates TaskMetrics for (implementation, PE type, CLR configuration)
/// triples by composing the fault/thermal/aging models with the Fig. 3
/// Markov chains. Stateless apart from model parameters; cheap to copy.
class TaskAnalyzer {
 public:
  TaskAnalyzer(ClrSpace space, FaultEnvironment env, ThermalModel thermal,
               ArrheniusAging aging);

  /// All-defaults analyzer matching the paper's evaluation setup.
  static TaskAnalyzer paper_default();

  /// Copy of this analyzer operating under a different environmental
  /// fault-rate multiplier (same catalogs, thermal and aging models) — the
  /// building block of multi-scenario analysis.
  TaskAnalyzer with_environment_factor(double factor) const;

  const ClrSpace& space() const noexcept { return space_; }
  const FaultEnvironment& environment() const noexcept { return env_; }

  /// Override the SSW implicit-masking of every evaluation (the Fig. 6b
  /// ImplMask sweep). A negative value (default) defers to each SswMethod's
  /// own implicit_masking.
  void set_implicit_masking_override(double m);

  /// Evaluate the metrics of `impl` running on PE type `pe` under `config`.
  /// Throws std::invalid_argument when the implementation does not run on
  /// `pe` (class mismatch) and on out-of-range configuration indices.
  TaskMetrics evaluate(const BaseImpl& impl, const platform::PeType& pe,
                       const ClrConfig& config) const;

  /// One (implementation, PE type, configuration) evaluation request for
  /// the batched paths. The pointees must outlive the evaluate_jobs call.
  struct EvalJob {
    const BaseImpl* impl = nullptr;
    const platform::PeType* pe = nullptr;
    ClrConfig config;
  };

  /// Batched evaluate(): bit-identical results to calling evaluate() on
  /// each job in order, but every chain solve is collected and dispatched
  /// through analyze_clr_chain_batch — cache hits are served individually,
  /// misses are deduped, padded to size classes and solved W lanes at a
  /// time by the SIMD kernel.
  std::vector<TaskMetrics> evaluate_jobs(std::span<const EvalJob> jobs) const;

  /// The common sweep shape — one (impl, pe) pair under many
  /// configurations — batched the same way.
  std::vector<TaskMetrics> evaluate_batch(const BaseImpl& impl,
                                          const platform::PeType& pe,
                                          std::span<const ClrConfig> configs) const;

  /// The fully resolved Fig. 3 chain inputs for (impl, pe, config) — exactly
  /// what evaluate() solves analytically. Exposed so simulation oracles
  /// (reliability::inject_faults, the sim/ Monte Carlo scheduler) can replay
  /// the identical fault process instead of re-deriving the scaling.
  ClrChainParams chain_params(const BaseImpl& impl, const platform::PeType& pe,
                              const ClrConfig& config) const;

 private:
  /// The non-chain half of evaluate(): power / thermal / aging / footprint
  /// derived from (impl, pe, config) plus the already-solved chain
  /// analysis. Shared verbatim by the scalar and batched paths so they can
  /// only ever differ in how the chain was solved — which is bit-identical
  /// by the kernel contract.
  TaskMetrics metrics_from_analysis(const BaseImpl& impl,
                                    const platform::PeType& pe,
                                    const ClrConfig& config,
                                    const ClrChainAnalysis& chain) const;

  ClrSpace space_;
  FaultEnvironment env_;
  ThermalModel thermal_;
  ArrheniusAging aging_;
  double implicit_masking_override_ = -1.0;
};

}  // namespace clrearly::reliability
