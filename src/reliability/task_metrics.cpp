#include "reliability/task_metrics.hpp"

#include <stdexcept>
#include <utility>

#include "reliability/clr_chain_builder.hpp"

namespace clrearly::reliability {

void BaseImpl::validate() const {
  if (name.empty()) throw std::invalid_argument("BaseImpl: empty name");
  if (base_exec_time_us <= 0.0) {
    throw std::invalid_argument("BaseImpl: execution time must be positive");
  }
  if (base_power_w <= 0.0) {
    throw std::invalid_argument("BaseImpl: power must be positive");
  }
  if (vulnerability <= 0.0) {
    throw std::invalid_argument("BaseImpl: vulnerability must be positive");
  }
  if (ssw_overhead_factor <= 0.0) {
    throw std::invalid_argument(
        "BaseImpl: SSW overhead factor must be positive");
  }
  if (footprint_kb < 0.0) {
    throw std::invalid_argument("BaseImpl: footprint must be non-negative");
  }
}

TaskAnalyzer::TaskAnalyzer(ClrSpace space, FaultEnvironment env,
                           ThermalModel thermal, ArrheniusAging aging)
    : space_(std::move(space)), env_(env), thermal_(thermal), aging_(aging) {
  env_.validate();
  thermal_.validate();
}

TaskAnalyzer TaskAnalyzer::paper_default() {
  FaultEnvironment env;
  env.dvfs_sensitivity = 1.2;  // keeps the slowest mode's ErrProb in the
                               // tens of percent, matching Fig. 6's range
  return TaskAnalyzer(ClrSpace::paper_default(), env, ThermalModel{},
                      ArrheniusAging{});
}

TaskAnalyzer TaskAnalyzer::with_environment_factor(double factor) const {
  TaskAnalyzer copy = *this;
  copy.env_.environment_factor = factor;
  copy.env_.validate();
  return copy;
}

void TaskAnalyzer::set_implicit_masking_override(double m) {
  if (m > 1.0) {
    throw std::invalid_argument("implicit masking override must be <= 1");
  }
  implicit_masking_override_ = m;
}

ClrChainParams TaskAnalyzer::chain_params(const BaseImpl& impl,
                                          const platform::PeType& pe,
                                          const ClrConfig& config) const {
  impl.validate();
  if (!impl.runs_on(pe)) {
    throw std::invalid_argument("TaskAnalyzer: implementation " + impl.name +
                                " does not target PE class " +
                                platform::to_string(pe.pe_class));
  }
  space_.check(config, pe.dvfs.size());

  const HwMethod& hw = space_.hw(config);
  const SswMethod& ssw = space_.ssw(config);
  const AswMethod& asw = space_.asw(config);

  // --- Time: DVFS slowdown, then HW (voting) and ASW (encode/verify) work.
  const double time_scale =
      pe.dvfs.time_scale(config.dvfs) * hw.time_factor * asw.time_factor;
  const double exec_time = impl.base_exec_time_us * time_scale;

  // --- Effective SEU rate on this PE at this operating point, derated by
  // the kernel's program-level vulnerability.
  const double lambda =
      effective_seu_rate(env_, pe, config.dvfs) * impl.vulnerability;

  // --- Chain inputs. Detection runs once per interval on 1/intervals of the
  // work; tolerance restores one interval; each checkpoint snapshots state.
  ClrChainParams params;
  params.exec_time_us = exec_time;
  params.lambda_per_us = lambda;
  params.hw_masking = hw.masking;
  params.implicit_ssw_masking = implicit_masking_override_ >= 0.0
                                    ? implicit_masking_override_
                                    : ssw.implicit_masking;
  params.detection_coverage = ssw.detection_coverage;
  params.tolerance_success = ssw.tolerance_success;
  params.asw_masking = asw.masking;
  params.intervals = ssw.intervals;
  const double interval_time = exec_time / static_cast<double>(ssw.intervals);
  const double ssw_cost = impl.ssw_overhead_factor;
  params.detection_time_us = ssw.detection_time_frac * interval_time * ssw_cost;
  params.tolerance_time_us = ssw.tolerance_time_frac * exec_time * ssw_cost;
  params.checkpoint_time_us =
      ssw.checkpoint_time_frac * exec_time * ssw_cost;
  params.checkpoint_error_prob = ssw.checkpoint_error_prob;
  return params;
}

TaskMetrics TaskAnalyzer::metrics_from_analysis(
    const BaseImpl& impl, const platform::PeType& pe, const ClrConfig& config,
    const ClrChainAnalysis& chain) const {
  const SswMethod& ssw = space_.ssw(config);
  const HwMethod& hw = space_.hw(config);
  const AswMethod& asw = space_.asw(config);

  // --- Power / energy / thermals.
  const double power = impl.base_power_w * pe.dvfs.power_scale(config.dvfs) *
                           hw.power_factor * asw.power_factor +
                       pe.idle_power_w;
  const double temp_c = thermal_.junction_temperature_c(power);
  const double eta = aging_.scale_eta(pe.weibull_eta_base_hours, temp_c);

  TaskMetrics out;
  out.min_exec_time_us = chain.min_exec_time_us;
  out.avg_exec_time_us = chain.avg_exec_time_us;
  out.exec_time_stddev_us = chain.exec_time_stddev_us;
  out.error_prob = chain.error_prob;
  out.avg_power_w = power;
  out.energy_uj = chain.avg_exec_time_us * power;
  out.peak_temp_c = temp_c;
  out.eta_hours = eta;
  out.mttf_hours = Weibull(eta, pe.weibull_beta).mttf();
  // Storage: each checkpoint needs a state buffer (~1/4 of the working set).
  out.footprint_kb =
      impl.footprint_kb *
      (1.0 + 0.25 * static_cast<double>(ssw.intervals - 1));
  return out;
}

TaskMetrics TaskAnalyzer::evaluate(const BaseImpl& impl,
                                   const platform::PeType& pe,
                                   const ClrConfig& config) const {
  const ClrChainParams params = chain_params(impl, pe, config);
  return metrics_from_analysis(impl, pe, config, analyze_clr_chain(params));
}

std::vector<TaskMetrics> TaskAnalyzer::evaluate_jobs(
    std::span<const EvalJob> jobs) const {
  // Resolve every job to its chain inputs first (this is also where all
  // argument validation fires, before any solve), then hand the whole set
  // to the batched analyzer: cache hits come back individually, misses get
  // deduped, padded into size classes and solved W lanes at a time.
  std::vector<ClrChainParams> params;
  params.reserve(jobs.size());
  for (const EvalJob& job : jobs) {
    params.push_back(chain_params(*job.impl, *job.pe, job.config));
  }
  const std::vector<ClrChainAnalysis> chains = analyze_clr_chain_batch(params);

  std::vector<TaskMetrics> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back(metrics_from_analysis(*jobs[i].impl, *jobs[i].pe,
                                        jobs[i].config, chains[i]));
  }
  return out;
}

std::vector<TaskMetrics> TaskAnalyzer::evaluate_batch(
    const BaseImpl& impl, const platform::PeType& pe,
    std::span<const ClrConfig> configs) const {
  std::vector<ClrChainParams> params;
  params.reserve(configs.size());
  for (const ClrConfig& config : configs) {
    params.push_back(chain_params(impl, pe, config));
  }
  const std::vector<ClrChainAnalysis> chains = analyze_clr_chain_batch(params);

  std::vector<TaskMetrics> out;
  out.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    out.push_back(metrics_from_analysis(impl, pe, configs[i], chains[i]));
  }
  return out;
}

}  // namespace clrearly::reliability
