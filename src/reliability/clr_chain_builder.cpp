#include "reliability/clr_chain_builder.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "markov/chain_builder.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace clrearly::reliability {

namespace {

void check_prob(double p, const char* what) {
  if (p < 0.0 || p > 1.0 || std::isnan(p)) {
    throw std::invalid_argument(std::string("ClrChainParams: ") + what +
                                " outside [0,1]");
  }
}

// Per-interval state block of the dense assemblers. Offsets mirror the
// registration order of the ChainBuilder reference path exactly, so both
// paths produce the same state indexing: 7 states per interval (the last
// interval has no checkpoint, hence t = 7n - 1 transient states total).
constexpr std::size_t kExec = 0;
constexpr std::size_t kHw = 1;
constexpr std::size_t kSswImpl = 2;
constexpr std::size_t kSswDet = 3;
constexpr std::size_t kSswTol = 4;
constexpr std::size_t kAsw = 5;
constexpr std::size_t kChk = 6;
constexpr std::size_t kBlock = 7;

/// Dense shared-topology assembler: writes Q, R and the residence vector
/// directly into workspace storage by index, skipping the string-keyed
/// ChainBuilder entirely. Mirrors build_chain_reference edge for edge; each
/// (row, col) cell is touched by exactly one edge, so += from the zeroed
/// matrices reproduces the builder's accumulation bit for bit.
void assemble_chain(const ClrChainParams& p, bool functional,
                    markov::ChainWorkspace& ws) {
  const std::size_t n = p.intervals;
  const std::size_t t = kBlock * n - 1;
  {
    // A warm workspace (same transient count as the previous chain on this
    // thread) means assign() below zeroes in place with no reallocation —
    // the allocation-free property the kernel PR bought. The counter pair
    // (assembles vs reuse) makes regressions visible in a snapshot.
    static util::Counter& assembles_metric =
        util::metric_counter("chain.assembles");
    static util::Counter& reuse_metric =
        util::metric_counter("chain.workspace_reuse");
    assembles_metric.add();
    if (ws.q.rows() == t && ws.q.cols() == t) reuse_metric.add();
  }
  ws.note_configure(t, functional ? 2 : 1);
  ws.q.assign(t, t);
  ws.r.assign(t, functional ? 2 : 1);
  ws.residence.assign(t, 0.0);

  const std::size_t done = functional ? kAbsorbNoError : 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = kBlock * i;
    const std::size_t exec = base + kExec;
    const std::size_t hw = base + kHw;
    const std::size_t ssw_impl = base + kSswImpl;
    const std::size_t ssw_det = base + kSswDet;
    const std::size_t ssw_tol = base + kSswTol;
    const std::size_t asw = base + kAsw;
    const std::size_t chk = base + kChk;
    const bool has_chk = i + 1 < n;

    ws.residence[exec] = p.interval_time(i) + p.detection_time_us;
    ws.residence[ssw_tol] = p.tolerance_time_us;
    if (has_chk) ws.residence[chk] = p.checkpoint_time_us;

    // Clean completion of interval i proceeds to the next checkpoint, or to
    // final absorption after the last interval.
    const auto to_next = [&](std::size_t from, double prob) {
      if (has_chk) {
        ws.q(from, chk) += prob;
      } else {
        ws.r(from, done) += prob;
      }
    };

    const double pne = p.pne_for_interval(i);
    to_next(exec, pne);
    ws.q(exec, hw) += 1.0 - pne;

    to_next(hw, p.hw_masking);
    ws.q(hw, ssw_impl) += 1.0 - p.hw_masking;

    to_next(ssw_impl, p.implicit_ssw_masking);
    ws.q(ssw_impl, ssw_det) += 1.0 - p.implicit_ssw_masking;

    ws.q(ssw_det, ssw_tol) += p.detection_coverage;
    ws.q(ssw_det, asw) += 1.0 - p.detection_coverage;

    // Successful tolerance rolls back to the start of the current interval;
    // failed tolerance leaves the error for the ASW layer.
    ws.q(ssw_tol, exec) += p.tolerance_success;
    ws.q(ssw_tol, asw) += 1.0 - p.tolerance_success;

    if (functional) {
      to_next(asw, p.asw_masking);
      ws.r(asw, kAbsorbError) += 1.0 - p.asw_masking;
    } else {
      // Timing: the result's correctness does not change when it is ready.
      to_next(asw, 1.0);
    }

    if (has_chk) {
      const std::size_t next_exec = kBlock * (i + 1) + kExec;
      if (functional && p.checkpoint_error_prob > 0.0) {
        ws.r(chk, kAbsorbError) += p.checkpoint_error_prob;
        ws.q(chk, next_exec) += 1.0 - p.checkpoint_error_prob;
      } else {
        ws.q(chk, next_exec) += 1.0;
      }
    }
  }
}

/// Shared topology for both chains, named-state reference path. `functional`
/// selects the Fig. 3b variant with Error/noError absorbing states;
/// otherwise everything forward-routes to the single End state (Fig. 3a).
markov::AbsorbingChain build_chain(const ClrChainParams& p, bool functional) {
  p.validate();
  markov::ChainBuilder b;

  const std::size_t n = p.intervals;

  const markov::StateId error =
      functional ? b.absorbing("Error") : markov::StateId{};
  const markov::StateId done = b.absorbing(functional ? "noError" : "End");

  // Create the per-interval state blocks first so "next interval" targets
  // exist when wiring edges.
  std::vector<markov::StateId> exec(n), hw(n), ssw_impl(n), ssw_det(n),
      ssw_tol(n), asw(n), chk(n > 1 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    exec[i] = b.transient("Exec" + suffix,
                          p.interval_time(i) + p.detection_time_us);
    hw[i] = b.transient("HWRel" + suffix, 0.0);
    ssw_impl[i] = b.transient("SSWImpl" + suffix, 0.0);
    ssw_det[i] = b.transient("SSWDet" + suffix, 0.0);
    ssw_tol[i] = b.transient("SSWTol" + suffix, p.tolerance_time_us);
    asw[i] = b.transient("ASWRel" + suffix, 0.0);
    if (i + 1 < n) {
      chk[i] = b.transient("Chkpnt" + suffix, p.checkpoint_time_us);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Clean completion of interval i proceeds to the next checkpoint, or to
    // final absorption after the last interval.
    const markov::StateId next = (i + 1 < n) ? chk[i] : done;
    const double pne = p.pne_for_interval(i);

    b.edge(exec[i], next, pne);
    b.edge(exec[i], hw[i], 1.0 - pne);

    b.edge(hw[i], next, p.hw_masking);
    b.edge(hw[i], ssw_impl[i], 1.0 - p.hw_masking);

    b.edge(ssw_impl[i], next, p.implicit_ssw_masking);
    b.edge(ssw_impl[i], ssw_det[i], 1.0 - p.implicit_ssw_masking);

    b.edge(ssw_det[i], ssw_tol[i], p.detection_coverage);
    b.edge(ssw_det[i], asw[i], 1.0 - p.detection_coverage);

    // Successful tolerance rolls back to the start of the current interval;
    // failed tolerance leaves the error for the ASW layer.
    b.edge(ssw_tol[i], exec[i], p.tolerance_success);
    b.edge(ssw_tol[i], asw[i], 1.0 - p.tolerance_success);

    if (functional) {
      b.edge(asw[i], next, p.asw_masking);
      b.edge(asw[i], error, 1.0 - p.asw_masking);
    } else {
      // Timing: the result's correctness does not change when it is ready.
      b.edge(asw[i], next, 1.0);
    }

    if (i + 1 < n) {
      if (functional && p.checkpoint_error_prob > 0.0) {
        b.edge(chk[i], error, p.checkpoint_error_prob);
        b.edge(chk[i], exec[i + 1], 1.0 - p.checkpoint_error_prob);
      } else {
        b.edge(chk[i], exec[i + 1], 1.0);
      }
    }
  }
  return b.build();
}

}  // namespace

void ClrChainParams::validate() const {
  if (exec_time_us <= 0.0 || std::isnan(exec_time_us)) {
    throw std::invalid_argument("ClrChainParams: exec_time_us must be positive");
  }
  if (lambda_per_us < 0.0 || std::isnan(lambda_per_us)) {
    throw std::invalid_argument("ClrChainParams: negative lambda");
  }
  if (intervals == 0) {
    throw std::invalid_argument("ClrChainParams: intervals must be >= 1");
  }
  check_prob(hw_masking, "hw_masking");
  check_prob(implicit_ssw_masking, "implicit_ssw_masking");
  check_prob(detection_coverage, "detection_coverage");
  check_prob(tolerance_success, "tolerance_success");
  check_prob(asw_masking, "asw_masking");
  check_prob(checkpoint_error_prob, "checkpoint_error_prob");
  for (double t : {detection_time_us, tolerance_time_us, checkpoint_time_us}) {
    if (t < 0.0 || std::isnan(t)) {
      throw std::invalid_argument("ClrChainParams: negative overhead time");
    }
  }
  if (!interval_fractions.empty()) {
    if (interval_fractions.size() != intervals) {
      throw std::invalid_argument(
          "ClrChainParams: interval_fractions size must equal intervals");
    }
    double sum = 0.0;
    for (double f : interval_fractions) {
      if (f <= 0.0 || std::isnan(f)) {
        throw std::invalid_argument(
            "ClrChainParams: interval fractions must be positive");
      }
      sum += f;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument(
          "ClrChainParams: interval fractions must sum to 1");
    }
  }
  // A detected error with certain tolerance and a zero no-error probability
  // would loop forever; the chain constructor rejects that via singularity of
  // I - Q, which surfaces as std::domain_error at build time.
}

double ClrChainParams::interval_time(std::size_t i) const {
  if (i >= intervals) {
    throw std::out_of_range("ClrChainParams::interval_time");
  }
  if (interval_fractions.empty()) {
    return exec_time_us / static_cast<double>(intervals);
  }
  return exec_time_us * interval_fractions[i];
}

double ClrChainParams::pne_for_interval(std::size_t i) const {
  return std::exp(-lambda_per_us * interval_time(i));
}

double ClrChainParams::pne_per_interval() const {
  const double t_ici = exec_time_us / static_cast<double>(intervals);
  return std::exp(-lambda_per_us * t_ici);
}

markov::AbsorbingChain build_timing_chain(const ClrChainParams& params) {
  params.validate();
  markov::ChainWorkspace& ws = markov::local_chain_workspace();
  assemble_chain(params, /*functional=*/false, ws);
  return markov::AbsorbingChain(ws.q, ws.r, ws.residence, 1e-9,
                                markov::ValidationMode::kTrusted);
}

markov::AbsorbingChain build_functional_chain(const ClrChainParams& params) {
  params.validate();
  markov::ChainWorkspace& ws = markov::local_chain_workspace();
  assemble_chain(params, /*functional=*/true, ws);
  return markov::AbsorbingChain(ws.q, ws.r, ws.residence, 1e-9,
                                markov::ValidationMode::kTrusted);
}

markov::AbsorbingChain build_chain_reference(const ClrChainParams& params,
                                             bool functional) {
  return build_chain(params, functional);
}

void assemble_timing_chain(const ClrChainParams& params,
                           markov::ChainWorkspace& ws) {
  assemble_chain(params, /*functional=*/false, ws);
}

void assemble_functional_chain(const ClrChainParams& params,
                               markov::ChainWorkspace& ws) {
  assemble_chain(params, /*functional=*/true, ws);
}

util::Key128 chain_cache_key(const ClrChainParams& p) {
  p.validate();
  util::Key128Stream key;
  key.add(p.exec_time_us)
      .add(p.lambda_per_us)
      .add(p.hw_masking)
      .add(p.implicit_ssw_masking)
      .add(p.detection_coverage)
      .add(p.tolerance_success)
      .add(p.asw_masking)
      .add(static_cast<std::uint64_t>(p.intervals))
      .add(p.detection_time_us)
      .add(p.tolerance_time_us)
      .add(p.checkpoint_time_us)
      .add(p.checkpoint_error_prob);
  // Stream the derived per-interval splits instead of interval_fractions
  // itself: representations that build the same chain share the key.
  for (std::size_t i = 0; i < p.intervals; ++i) {
    key.add(p.interval_time(i));
  }
  return key.digest();
}

namespace {

using ChainCache = util::MemoCache<util::Key128, ClrChainAnalysis,
                                   util::Key128Hash>;

struct ChainCacheState {
  std::mutex mutex;
  std::unique_ptr<ChainCache> cache;
  std::size_t built_capacity = 0;
};

/// The process-wide chain-solve cache, rebuilt (and thereby cleared) when
/// util::cache_capacity() changes — same contract as the global thread pool:
/// reconfigure between runs, not while solves are in flight.
ChainCache* chain_cache() {
  static ChainCacheState state;
  const std::size_t capacity = util::cache_capacity();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.cache || state.built_capacity != capacity) {
    state.cache.reset();
    state.cache = std::make_unique<ChainCache>(capacity, "chain_solve");
    state.built_capacity = capacity;
  }
  return state.cache->enabled() ? state.cache.get() : nullptr;
}

}  // namespace

ClrChainAnalysis analyze_clr_chain_uncached(const ClrChainParams& params) {
  params.validate();
  ClrChainAnalysis out;

  const double n = static_cast<double>(params.intervals);
  out.min_exec_time_us = params.exec_time_us + n * params.detection_time_us +
                         (n - 1.0) * params.checkpoint_time_us;

  // Cache-miss hot path: assemble both chains into the calling thread's
  // workspace and solve only for row 0 — one adjoint solve per chain plus
  // one forward solve for the timing second moment, instead of full
  // fundamental-matrix inversions. Allocation-free once the workspace is
  // warm. A non-absorbing chain still surfaces as std::domain_error from
  // the LU factorization, exactly like the eager path.
  markov::ChainWorkspace& ws = markov::local_chain_workspace();

  assemble_chain(params, /*functional=*/false, ws);
  const markov::Row0Solve timing =
      markov::solve_row0(ws, /*with_second_moment=*/true);
  out.avg_exec_time_us = timing.expected_time;
  const double variance =
      timing.second_moment - timing.expected_time * timing.expected_time;
  out.exec_time_stddev_us = std::sqrt(std::max(variance, 0.0));

  assemble_chain(params, /*functional=*/true, ws);
  markov::solve_row0(ws, /*with_second_moment=*/false);
  out.error_prob = ws.b0[kAbsorbError];
  return out;
}

ClrChainAnalysis analyze_clr_chain(const ClrChainParams& params) {
  ChainCache* cache = chain_cache();
  if (cache == nullptr) return analyze_clr_chain_uncached(params);
  return cache->get_or_compute(
      chain_cache_key(params),
      [&params] { return analyze_clr_chain_uncached(params); });
}

util::CacheStats chain_cache_stats() {
  ChainCache* cache = chain_cache();
  return cache == nullptr ? util::CacheStats{} : cache->stats();
}

void assemble_clr_chain_batch(
    std::span<const ClrChainParams* const> lanes, bool functional,
    markov::ChainBatch& batch) {
  const std::size_t width = lanes.size();
  if (width == 0) return;
  const std::size_t n = lanes[0]->intervals;
  const std::size_t t = kBlock * n - 1;
  const std::size_t a = functional ? 2 : 1;
  batch.configure(t, a, width);

  const std::size_t done = functional ? kAbsorbNoError : 0;

  // The Q cell set depends only on `n` (both checkpoint branches hit the
  // same Q cell; timing/functional differ only in values and in R), so lane
  // 0 records it once per size class. configure() and the kernel then treat
  // q as sparse: pattern-cell re-zeroing and memset+pattern I - Q assembly
  // instead of dense t*t*W streams.
  const bool record_pattern = (batch.q_pattern_t != t);
  if (record_pattern) batch.q_pattern.reserve(12 * n);

  // Per-lane scalar assembly at stride `width`: O(n) writes per lane next
  // to an O(t^3) solve, so lane-major scatter here costs nothing while the
  // values stay the literal scalar-assembler expressions.
  for (std::size_t l = 0; l < width; ++l) {
    const ClrChainParams& p = *lanes[l];
    assert(p.intervals == n && "batch lanes must share one size class");
    const auto q_at = [&](std::size_t from, std::size_t to) -> double& {
      const std::size_t cell = from * t + to;
      if (record_pattern && l == 0) {
        batch.q_pattern.push_back(static_cast<std::uint32_t>(cell));
      }
      return batch.q[cell * width + l];
    };
    const auto r_at = [&](std::size_t from, std::size_t k) -> double& {
      return batch.r[(from * a + k) * width + l];
    };

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t base = kBlock * i;
      const std::size_t exec = base + kExec;
      const std::size_t hw = base + kHw;
      const std::size_t ssw_impl = base + kSswImpl;
      const std::size_t ssw_det = base + kSswDet;
      const std::size_t ssw_tol = base + kSswTol;
      const std::size_t asw = base + kAsw;
      const std::size_t chk = base + kChk;
      const bool has_chk = i + 1 < n;

      batch.residence[exec * width + l] =
          p.interval_time(i) + p.detection_time_us;
      batch.residence[ssw_tol * width + l] = p.tolerance_time_us;
      if (has_chk) {
        batch.residence[chk * width + l] = p.checkpoint_time_us;
      }

      const auto to_next = [&](std::size_t from, double prob) {
        if (has_chk) {
          q_at(from, chk) += prob;
        } else {
          r_at(from, done) += prob;
        }
      };

      const double pne = p.pne_for_interval(i);
      to_next(exec, pne);
      q_at(exec, hw) += 1.0 - pne;

      to_next(hw, p.hw_masking);
      q_at(hw, ssw_impl) += 1.0 - p.hw_masking;

      to_next(ssw_impl, p.implicit_ssw_masking);
      q_at(ssw_impl, ssw_det) += 1.0 - p.implicit_ssw_masking;

      q_at(ssw_det, ssw_tol) += p.detection_coverage;
      q_at(ssw_det, asw) += 1.0 - p.detection_coverage;

      q_at(ssw_tol, exec) += p.tolerance_success;
      q_at(ssw_tol, asw) += 1.0 - p.tolerance_success;

      if (functional) {
        to_next(asw, p.asw_masking);
        r_at(asw, kAbsorbError) += 1.0 - p.asw_masking;
      } else {
        to_next(asw, 1.0);
      }

      if (has_chk) {
        const std::size_t next_exec = kBlock * (i + 1) + kExec;
        if (functional && p.checkpoint_error_prob > 0.0) {
          r_at(chk, kAbsorbError) += p.checkpoint_error_prob;
          q_at(chk, next_exec) += 1.0 - p.checkpoint_error_prob;
        } else {
          q_at(chk, next_exec) += 1.0;
        }
      }
    }
  }
  if (record_pattern) batch.q_pattern_t = t;
  batch.q_zero_outside_pattern = true;
}

std::vector<ClrChainAnalysis> analyze_clr_chain_batch(
    std::span<const ClrChainParams> params, const ChainBatchOptions& options,
    std::vector<ChainSolveStatus>* status) {
  const std::size_t count = params.size();
  std::vector<ClrChainAnalysis> results(count);
  if (status != nullptr) status->assign(count, ChainSolveStatus::kOk);
  if (count == 0) return results;

  const util::TraceSpan span("chain.batch.analyze");
  static util::Counter& requests_metric =
      util::metric_counter("chain.batch.requests");
  static util::Counter& cache_hits_metric =
      util::metric_counter("chain.batch.cache_hits");
  static util::Counter& dedupe_metric =
      util::metric_counter("chain.batch.dedupe_hits");
  static util::Counter& batches_metric =
      util::metric_counter("chain.batch.batches");
  static util::Counter& lanes_metric =
      util::metric_counter("chain.batch.lanes_filled");
  static util::Counter& pad_metric =
      util::metric_counter("chain.batch.pad_lanes");
  requests_metric.add(count);

  ChainCache* cache = options.use_cache ? chain_cache() : nullptr;

  // Collect: resolve each request to a cache hit, a duplicate of an
  // earlier miss, or a fresh unique miss.
  struct Miss {
    util::Key128 key;
    std::size_t first_index = 0;  // position in `params`
    ClrChainAnalysis analysis;
    ChainSolveStatus outcome = ChainSolveStatus::kOk;
  };
  constexpr std::size_t kFromCache = static_cast<std::size_t>(-1);
  std::vector<Miss> misses;
  std::vector<std::size_t> slot(count, kFromCache);
  misses.reserve(count);
  // Open-addressed dedupe table (linear probing, power-of-two size, entries
  // index into `misses`): an unordered_map pays a node allocation per unique
  // chain, which at small t costs more than the batched solve it feeds.
  constexpr std::uint32_t kEmptySlot = static_cast<std::uint32_t>(-1);
  const std::size_t table_size = std::bit_ceil(2 * count + 1);
  const std::size_t table_mask = table_size - 1;
  std::vector<std::uint32_t> dedupe_table(table_size, kEmptySlot);
  for (std::size_t i = 0; i < count; ++i) {
    const util::Key128 key = chain_cache_key(params[i]);  // validates
    std::size_t pos = util::Key128Hash{}(key)&table_mask;
    bool duplicate = false;
    while (dedupe_table[pos] != kEmptySlot) {
      if (misses[dedupe_table[pos]].key == key) {
        dedupe_metric.add();
        slot[i] = dedupe_table[pos];
        duplicate = true;
        break;
      }
      pos = (pos + 1) & table_mask;
    }
    if (duplicate) continue;
    if (cache != nullptr && cache->lookup(key, results[i])) {
      cache_hits_metric.add();
      continue;
    }
    slot[i] = misses.size();
    dedupe_table[pos] = static_cast<std::uint32_t>(misses.size());
    misses.push_back(Miss{key, i, {}, ChainSolveStatus::kOk});
  }

  // Partition unique misses into size classes (same transient count) —
  // std::map for a deterministic class order. Batches are usually one size
  // class (a sweep evaluates one candidate shape at a time), so the common
  // case skips the tree entirely.
  std::map<std::size_t, std::vector<std::size_t>> classes;
  bool single_class = true;
  for (std::size_t s = 1; s < misses.size() && single_class; ++s) {
    single_class = params[misses[s].first_index].intervals ==
                   params[misses[0].first_index].intervals;
  }
  if (single_class && !misses.empty()) {
    auto& slots = classes[params[misses[0].first_index].intervals];
    slots.resize(misses.size());
    for (std::size_t s = 0; s < misses.size(); ++s) slots[s] = s;
  } else {
    for (std::size_t s = 0; s < misses.size(); ++s) {
      classes[params[misses[s].first_index].intervals].push_back(s);
    }
  }

  const std::size_t width = options.group_width != 0
                                ? options.group_width
                                : markov::preferred_batch_width();
  markov::ChainBatch& batch = markov::local_chain_batch();
  std::vector<const ClrChainParams*> lane_params(width);
  std::vector<double> timing_et(width), timing_sm(width);
  std::vector<std::uint8_t> timing_singular(width);

  for (const auto& [intervals, slots] : classes) {
    (void)intervals;
    for (std::size_t off = 0; off < slots.size(); off += width) {
      const std::size_t real = std::min(width, slots.size() - off);
      for (std::size_t l = 0; l < real; ++l) {
        lane_params[l] = &params[misses[slots[off + l]].first_index];
      }
      // Pad lanes repeat lane 0: same size class, results discarded.
      for (std::size_t l = real; l < width; ++l) lane_params[l] = lane_params[0];
      batches_metric.add();
      lanes_metric.add(real);
      pad_metric.add(width - real);

      // Timing chain (Fig. 3a): expected time + second moment. Outputs are
      // copied out before the batch is reconfigured for the functional pass.
      assemble_clr_chain_batch({lane_params.data(), width}, /*functional=*/false,
                               batch);
      markov::solve_row0_batch(batch, /*with_second_moment=*/true);
      std::copy_n(batch.expected_time.begin(), width, timing_et.begin());
      std::copy_n(batch.second_moment.begin(), width, timing_sm.begin());
      std::copy_n(batch.singular.begin(), width, timing_singular.begin());

      // Functional chain (Fig. 3b): error probability.
      assemble_clr_chain_batch({lane_params.data(), width}, /*functional=*/true,
                               batch);
      markov::solve_row0_batch(batch, /*with_second_moment=*/false);

      for (std::size_t l = 0; l < real; ++l) {
        Miss& m = misses[slots[off + l]];
        if (timing_singular[l] != 0 || batch.singular[l] != 0) {
          m.outcome = ChainSolveStatus::kSingular;
          continue;
        }
        const ClrChainParams& p = *lane_params[l];
        const double n = static_cast<double>(p.intervals);
        m.analysis.min_exec_time_us = p.exec_time_us +
                                      n * p.detection_time_us +
                                      (n - 1.0) * p.checkpoint_time_us;
        m.analysis.avg_exec_time_us = timing_et[l];
        const double variance =
            timing_sm[l] - timing_et[l] * timing_et[l];
        m.analysis.exec_time_stddev_us = std::sqrt(std::max(variance, 0.0));
        m.analysis.error_prob = batch.b0[kAbsorbError * width + l];
        if (cache != nullptr) cache->insert(m.key, m.analysis);
      }
    }
  }

  // Scatter back to request order; duplicates share their miss's result.
  for (std::size_t i = 0; i < count; ++i) {
    if (slot[i] == kFromCache) continue;
    const Miss& m = misses[slot[i]];
    if (m.outcome != ChainSolveStatus::kOk) {
      if (status == nullptr) {
        throw std::domain_error(
            "analyze_clr_chain_batch: non-absorbing chain (singular I - Q)");
      }
      (*status)[i] = m.outcome;
    }
    results[i] = m.analysis;
  }
  return results;
}

CheckpointSweepResult optimize_checkpoint_intervals(
    ClrChainParams params, std::size_t max_intervals) {
  if (max_intervals == 0) {
    throw std::invalid_argument(
        "optimize_checkpoint_intervals: max_intervals must be >= 1");
  }
  params.interval_fractions.clear();
  CheckpointSweepResult result;
  bool found = false;
  for (std::size_t n = 1; n <= max_intervals; ++n) {
    params.intervals = n;
    double avg = std::numeric_limits<double>::quiet_NaN();
    try {
      avg = analyze_clr_chain(params).avg_exec_time_us;
    } catch (const std::domain_error&) {
      // Non-absorbing at this interval count (e.g. pne underflow); record
      // NaN and keep sweeping.
    }
    result.avg_time_per_intervals.push_back(avg);
    if (!std::isnan(avg) && (!found || avg < result.best_avg_time_us)) {
      result.best_intervals = n;
      result.best_avg_time_us = avg;
      found = true;
    }
  }
  if (!found) {
    throw std::domain_error(
        "optimize_checkpoint_intervals: no interval count yields an "
        "absorbing chain");
  }
  return result;
}

}  // namespace clrearly::reliability
