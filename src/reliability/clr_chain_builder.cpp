#include "reliability/clr_chain_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "markov/chain_builder.hpp"
#include "util/metrics.hpp"

namespace clrearly::reliability {

namespace {

void check_prob(double p, const char* what) {
  if (p < 0.0 || p > 1.0 || std::isnan(p)) {
    throw std::invalid_argument(std::string("ClrChainParams: ") + what +
                                " outside [0,1]");
  }
}

// Per-interval state block of the dense assemblers. Offsets mirror the
// registration order of the ChainBuilder reference path exactly, so both
// paths produce the same state indexing: 7 states per interval (the last
// interval has no checkpoint, hence t = 7n - 1 transient states total).
constexpr std::size_t kExec = 0;
constexpr std::size_t kHw = 1;
constexpr std::size_t kSswImpl = 2;
constexpr std::size_t kSswDet = 3;
constexpr std::size_t kSswTol = 4;
constexpr std::size_t kAsw = 5;
constexpr std::size_t kChk = 6;
constexpr std::size_t kBlock = 7;

/// Dense shared-topology assembler: writes Q, R and the residence vector
/// directly into workspace storage by index, skipping the string-keyed
/// ChainBuilder entirely. Mirrors build_chain_reference edge for edge; each
/// (row, col) cell is touched by exactly one edge, so += from the zeroed
/// matrices reproduces the builder's accumulation bit for bit.
void assemble_chain(const ClrChainParams& p, bool functional,
                    markov::ChainWorkspace& ws) {
  const std::size_t n = p.intervals;
  const std::size_t t = kBlock * n - 1;
  {
    // A warm workspace (same transient count as the previous chain on this
    // thread) means assign() below zeroes in place with no reallocation —
    // the allocation-free property the kernel PR bought. The counter pair
    // (assembles vs reuse) makes regressions visible in a snapshot.
    static util::Counter& assembles_metric =
        util::metric_counter("chain.assembles");
    static util::Counter& reuse_metric =
        util::metric_counter("chain.workspace_reuse");
    assembles_metric.add();
    if (ws.q.rows() == t && ws.q.cols() == t) reuse_metric.add();
  }
  ws.q.assign(t, t);
  ws.r.assign(t, functional ? 2 : 1);
  ws.residence.assign(t, 0.0);

  const std::size_t done = functional ? kAbsorbNoError : 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = kBlock * i;
    const std::size_t exec = base + kExec;
    const std::size_t hw = base + kHw;
    const std::size_t ssw_impl = base + kSswImpl;
    const std::size_t ssw_det = base + kSswDet;
    const std::size_t ssw_tol = base + kSswTol;
    const std::size_t asw = base + kAsw;
    const std::size_t chk = base + kChk;
    const bool has_chk = i + 1 < n;

    ws.residence[exec] = p.interval_time(i) + p.detection_time_us;
    ws.residence[ssw_tol] = p.tolerance_time_us;
    if (has_chk) ws.residence[chk] = p.checkpoint_time_us;

    // Clean completion of interval i proceeds to the next checkpoint, or to
    // final absorption after the last interval.
    const auto to_next = [&](std::size_t from, double prob) {
      if (has_chk) {
        ws.q(from, chk) += prob;
      } else {
        ws.r(from, done) += prob;
      }
    };

    const double pne = p.pne_for_interval(i);
    to_next(exec, pne);
    ws.q(exec, hw) += 1.0 - pne;

    to_next(hw, p.hw_masking);
    ws.q(hw, ssw_impl) += 1.0 - p.hw_masking;

    to_next(ssw_impl, p.implicit_ssw_masking);
    ws.q(ssw_impl, ssw_det) += 1.0 - p.implicit_ssw_masking;

    ws.q(ssw_det, ssw_tol) += p.detection_coverage;
    ws.q(ssw_det, asw) += 1.0 - p.detection_coverage;

    // Successful tolerance rolls back to the start of the current interval;
    // failed tolerance leaves the error for the ASW layer.
    ws.q(ssw_tol, exec) += p.tolerance_success;
    ws.q(ssw_tol, asw) += 1.0 - p.tolerance_success;

    if (functional) {
      to_next(asw, p.asw_masking);
      ws.r(asw, kAbsorbError) += 1.0 - p.asw_masking;
    } else {
      // Timing: the result's correctness does not change when it is ready.
      to_next(asw, 1.0);
    }

    if (has_chk) {
      const std::size_t next_exec = kBlock * (i + 1) + kExec;
      if (functional && p.checkpoint_error_prob > 0.0) {
        ws.r(chk, kAbsorbError) += p.checkpoint_error_prob;
        ws.q(chk, next_exec) += 1.0 - p.checkpoint_error_prob;
      } else {
        ws.q(chk, next_exec) += 1.0;
      }
    }
  }
}

/// Shared topology for both chains, named-state reference path. `functional`
/// selects the Fig. 3b variant with Error/noError absorbing states;
/// otherwise everything forward-routes to the single End state (Fig. 3a).
markov::AbsorbingChain build_chain(const ClrChainParams& p, bool functional) {
  p.validate();
  markov::ChainBuilder b;

  const std::size_t n = p.intervals;

  const markov::StateId error =
      functional ? b.absorbing("Error") : markov::StateId{};
  const markov::StateId done = b.absorbing(functional ? "noError" : "End");

  // Create the per-interval state blocks first so "next interval" targets
  // exist when wiring edges.
  std::vector<markov::StateId> exec(n), hw(n), ssw_impl(n), ssw_det(n),
      ssw_tol(n), asw(n), chk(n > 1 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    exec[i] = b.transient("Exec" + suffix,
                          p.interval_time(i) + p.detection_time_us);
    hw[i] = b.transient("HWRel" + suffix, 0.0);
    ssw_impl[i] = b.transient("SSWImpl" + suffix, 0.0);
    ssw_det[i] = b.transient("SSWDet" + suffix, 0.0);
    ssw_tol[i] = b.transient("SSWTol" + suffix, p.tolerance_time_us);
    asw[i] = b.transient("ASWRel" + suffix, 0.0);
    if (i + 1 < n) {
      chk[i] = b.transient("Chkpnt" + suffix, p.checkpoint_time_us);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Clean completion of interval i proceeds to the next checkpoint, or to
    // final absorption after the last interval.
    const markov::StateId next = (i + 1 < n) ? chk[i] : done;
    const double pne = p.pne_for_interval(i);

    b.edge(exec[i], next, pne);
    b.edge(exec[i], hw[i], 1.0 - pne);

    b.edge(hw[i], next, p.hw_masking);
    b.edge(hw[i], ssw_impl[i], 1.0 - p.hw_masking);

    b.edge(ssw_impl[i], next, p.implicit_ssw_masking);
    b.edge(ssw_impl[i], ssw_det[i], 1.0 - p.implicit_ssw_masking);

    b.edge(ssw_det[i], ssw_tol[i], p.detection_coverage);
    b.edge(ssw_det[i], asw[i], 1.0 - p.detection_coverage);

    // Successful tolerance rolls back to the start of the current interval;
    // failed tolerance leaves the error for the ASW layer.
    b.edge(ssw_tol[i], exec[i], p.tolerance_success);
    b.edge(ssw_tol[i], asw[i], 1.0 - p.tolerance_success);

    if (functional) {
      b.edge(asw[i], next, p.asw_masking);
      b.edge(asw[i], error, 1.0 - p.asw_masking);
    } else {
      // Timing: the result's correctness does not change when it is ready.
      b.edge(asw[i], next, 1.0);
    }

    if (i + 1 < n) {
      if (functional && p.checkpoint_error_prob > 0.0) {
        b.edge(chk[i], error, p.checkpoint_error_prob);
        b.edge(chk[i], exec[i + 1], 1.0 - p.checkpoint_error_prob);
      } else {
        b.edge(chk[i], exec[i + 1], 1.0);
      }
    }
  }
  return b.build();
}

}  // namespace

void ClrChainParams::validate() const {
  if (exec_time_us <= 0.0 || std::isnan(exec_time_us)) {
    throw std::invalid_argument("ClrChainParams: exec_time_us must be positive");
  }
  if (lambda_per_us < 0.0 || std::isnan(lambda_per_us)) {
    throw std::invalid_argument("ClrChainParams: negative lambda");
  }
  if (intervals == 0) {
    throw std::invalid_argument("ClrChainParams: intervals must be >= 1");
  }
  check_prob(hw_masking, "hw_masking");
  check_prob(implicit_ssw_masking, "implicit_ssw_masking");
  check_prob(detection_coverage, "detection_coverage");
  check_prob(tolerance_success, "tolerance_success");
  check_prob(asw_masking, "asw_masking");
  check_prob(checkpoint_error_prob, "checkpoint_error_prob");
  for (double t : {detection_time_us, tolerance_time_us, checkpoint_time_us}) {
    if (t < 0.0 || std::isnan(t)) {
      throw std::invalid_argument("ClrChainParams: negative overhead time");
    }
  }
  if (!interval_fractions.empty()) {
    if (interval_fractions.size() != intervals) {
      throw std::invalid_argument(
          "ClrChainParams: interval_fractions size must equal intervals");
    }
    double sum = 0.0;
    for (double f : interval_fractions) {
      if (f <= 0.0 || std::isnan(f)) {
        throw std::invalid_argument(
            "ClrChainParams: interval fractions must be positive");
      }
      sum += f;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument(
          "ClrChainParams: interval fractions must sum to 1");
    }
  }
  // A detected error with certain tolerance and a zero no-error probability
  // would loop forever; the chain constructor rejects that via singularity of
  // I - Q, which surfaces as std::domain_error at build time.
}

double ClrChainParams::interval_time(std::size_t i) const {
  if (i >= intervals) {
    throw std::out_of_range("ClrChainParams::interval_time");
  }
  if (interval_fractions.empty()) {
    return exec_time_us / static_cast<double>(intervals);
  }
  return exec_time_us * interval_fractions[i];
}

double ClrChainParams::pne_for_interval(std::size_t i) const {
  return std::exp(-lambda_per_us * interval_time(i));
}

double ClrChainParams::pne_per_interval() const {
  const double t_ici = exec_time_us / static_cast<double>(intervals);
  return std::exp(-lambda_per_us * t_ici);
}

markov::AbsorbingChain build_timing_chain(const ClrChainParams& params) {
  params.validate();
  markov::ChainWorkspace& ws = markov::local_chain_workspace();
  assemble_chain(params, /*functional=*/false, ws);
  return markov::AbsorbingChain(ws.q, ws.r, ws.residence, 1e-9,
                                markov::ValidationMode::kTrusted);
}

markov::AbsorbingChain build_functional_chain(const ClrChainParams& params) {
  params.validate();
  markov::ChainWorkspace& ws = markov::local_chain_workspace();
  assemble_chain(params, /*functional=*/true, ws);
  return markov::AbsorbingChain(ws.q, ws.r, ws.residence, 1e-9,
                                markov::ValidationMode::kTrusted);
}

markov::AbsorbingChain build_chain_reference(const ClrChainParams& params,
                                             bool functional) {
  return build_chain(params, functional);
}

void assemble_timing_chain(const ClrChainParams& params,
                           markov::ChainWorkspace& ws) {
  assemble_chain(params, /*functional=*/false, ws);
}

void assemble_functional_chain(const ClrChainParams& params,
                               markov::ChainWorkspace& ws) {
  assemble_chain(params, /*functional=*/true, ws);
}

util::Key128 chain_cache_key(const ClrChainParams& p) {
  p.validate();
  util::Key128Stream key;
  key.add(p.exec_time_us)
      .add(p.lambda_per_us)
      .add(p.hw_masking)
      .add(p.implicit_ssw_masking)
      .add(p.detection_coverage)
      .add(p.tolerance_success)
      .add(p.asw_masking)
      .add(static_cast<std::uint64_t>(p.intervals))
      .add(p.detection_time_us)
      .add(p.tolerance_time_us)
      .add(p.checkpoint_time_us)
      .add(p.checkpoint_error_prob);
  // Stream the derived per-interval splits instead of interval_fractions
  // itself: representations that build the same chain share the key.
  for (std::size_t i = 0; i < p.intervals; ++i) {
    key.add(p.interval_time(i));
  }
  return key.digest();
}

namespace {

using ChainCache = util::MemoCache<util::Key128, ClrChainAnalysis,
                                   util::Key128Hash>;

struct ChainCacheState {
  std::mutex mutex;
  std::unique_ptr<ChainCache> cache;
  std::size_t built_capacity = 0;
};

/// The process-wide chain-solve cache, rebuilt (and thereby cleared) when
/// util::cache_capacity() changes — same contract as the global thread pool:
/// reconfigure between runs, not while solves are in flight.
ChainCache* chain_cache() {
  static ChainCacheState state;
  const std::size_t capacity = util::cache_capacity();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.cache || state.built_capacity != capacity) {
    state.cache.reset();
    state.cache = std::make_unique<ChainCache>(capacity, "chain_solve");
    state.built_capacity = capacity;
  }
  return state.cache->enabled() ? state.cache.get() : nullptr;
}

}  // namespace

ClrChainAnalysis analyze_clr_chain_uncached(const ClrChainParams& params) {
  params.validate();
  ClrChainAnalysis out;

  const double n = static_cast<double>(params.intervals);
  out.min_exec_time_us = params.exec_time_us + n * params.detection_time_us +
                         (n - 1.0) * params.checkpoint_time_us;

  // Cache-miss hot path: assemble both chains into the calling thread's
  // workspace and solve only for row 0 — one adjoint solve per chain plus
  // one forward solve for the timing second moment, instead of full
  // fundamental-matrix inversions. Allocation-free once the workspace is
  // warm. A non-absorbing chain still surfaces as std::domain_error from
  // the LU factorization, exactly like the eager path.
  markov::ChainWorkspace& ws = markov::local_chain_workspace();

  assemble_chain(params, /*functional=*/false, ws);
  const markov::Row0Solve timing =
      markov::solve_row0(ws, /*with_second_moment=*/true);
  out.avg_exec_time_us = timing.expected_time;
  const double variance =
      timing.second_moment - timing.expected_time * timing.expected_time;
  out.exec_time_stddev_us = std::sqrt(std::max(variance, 0.0));

  assemble_chain(params, /*functional=*/true, ws);
  markov::solve_row0(ws, /*with_second_moment=*/false);
  out.error_prob = ws.b0[kAbsorbError];
  return out;
}

ClrChainAnalysis analyze_clr_chain(const ClrChainParams& params) {
  ChainCache* cache = chain_cache();
  if (cache == nullptr) return analyze_clr_chain_uncached(params);
  return cache->get_or_compute(
      chain_cache_key(params),
      [&params] { return analyze_clr_chain_uncached(params); });
}

util::CacheStats chain_cache_stats() {
  ChainCache* cache = chain_cache();
  return cache == nullptr ? util::CacheStats{} : cache->stats();
}

CheckpointSweepResult optimize_checkpoint_intervals(
    ClrChainParams params, std::size_t max_intervals) {
  if (max_intervals == 0) {
    throw std::invalid_argument(
        "optimize_checkpoint_intervals: max_intervals must be >= 1");
  }
  params.interval_fractions.clear();
  CheckpointSweepResult result;
  bool found = false;
  for (std::size_t n = 1; n <= max_intervals; ++n) {
    params.intervals = n;
    double avg = std::numeric_limits<double>::quiet_NaN();
    try {
      avg = analyze_clr_chain(params).avg_exec_time_us;
    } catch (const std::domain_error&) {
      // Non-absorbing at this interval count (e.g. pne underflow); record
      // NaN and keep sweeping.
    }
    result.avg_time_per_intervals.push_back(avg);
    if (!std::isnan(avg) && (!found || avg < result.best_avg_time_us)) {
      result.best_intervals = n;
      result.best_avg_time_us = avg;
      found = true;
    }
  }
  if (!found) {
    throw std::domain_error(
        "optimize_checkpoint_intervals: no interval count yields an "
        "absorbing chain");
  }
  return result;
}

}  // namespace clrearly::reliability
