#include "reliability/fault_model.hpp"

#include <cmath>
#include <stdexcept>

namespace clrearly::reliability {

void FaultEnvironment::validate() const {
  if (base_seu_rate_per_us <= 0.0) {
    throw std::invalid_argument("FaultEnvironment: SEU rate must be positive");
  }
  if (dvfs_sensitivity < 0.0) {
    throw std::invalid_argument(
        "FaultEnvironment: DVFS sensitivity must be non-negative");
  }
  if (environment_factor <= 0.0) {
    throw std::invalid_argument(
        "FaultEnvironment: environment factor must be positive");
  }
}

double effective_seu_rate(const FaultEnvironment& env,
                          const platform::PeType& pe,
                          std::size_t dvfs_index) {
  const double dvfs_scale = pe.dvfs.seu_scale(dvfs_index, env.dvfs_sensitivity);
  const double exposure = 1.0 - pe.masking_factor;
  return env.base_seu_rate_per_us * env.environment_factor * dvfs_scale *
         exposure;
}

double error_probability(double lambda, double exec_time_us) {
  if (lambda < 0.0 || exec_time_us < 0.0) {
    throw std::invalid_argument("error_probability: negative argument");
  }
  return 1.0 - std::exp(-lambda * exec_time_us);
}

double ThermalModel::junction_temperature_c(double power_w) const {
  if (power_w < 0.0) {
    throw std::invalid_argument("ThermalModel: negative power");
  }
  return ambient_c + theta_c_per_w * power_w;
}

void ThermalModel::validate() const {
  if (theta_c_per_w <= 0.0) {
    throw std::invalid_argument("ThermalModel: theta must be positive");
  }
}

}  // namespace clrearly::reliability
