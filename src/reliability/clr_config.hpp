// Cross-layer reliability configuration space (Section V-A).
//
// For each task the paper forms Ct = HWRel_t x SSWRel_t x ASWRel_t — the
// Cartesian product of the per-layer method choices — and jointly explores it
// with the DVFS mode. ClrSpace owns the per-layer catalogs; ClrConfig is one
// point of the product, stored as catalog indices so GA genomes stay compact.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reliability/methods.hpp"

namespace clrearly::reliability {

/// One point of the CLR decision space: indices into a ClrSpace's catalogs
/// plus the DVFS mode index of the target PE.
struct ClrConfig {
  std::size_t hw = 0;    ///< HWRel method index
  std::size_t ssw = 0;   ///< SSWRel method index
  std::size_t asw = 0;   ///< ASWRel method index
  std::size_t dvfs = 0;  ///< DVFS mode index on the mapped PE

  bool operator==(const ClrConfig&) const noexcept = default;
};

/// Which decision axes are free to vary — used to restrict the space for the
/// single-layer ("other-layer-agnostic") baselines of Fig. 7.
struct ClrAxes {
  bool hw = true;
  bool ssw = true;
  bool asw = true;
  bool dvfs = true;

  static ClrAxes all() { return {}; }
  static ClrAxes none() { return {false, false, false, false}; }
  static ClrAxes only_hw() { return {true, false, false, false}; }
  static ClrAxes only_ssw() { return {false, true, false, false}; }
  static ClrAxes only_asw() { return {false, false, true, false}; }
  static ClrAxes only_dvfs() { return {false, false, false, true}; }
};

/// The per-layer method catalogs shared by all tasks.
class ClrSpace {
 public:
  /// Space over explicit catalogs; all must be non-empty and entry 0 of each
  /// catalog must be the "no method" baseline (the agnostic baselines pin
  /// non-explored layers to index 0).
  ClrSpace(std::vector<HwMethod> hw, std::vector<SswMethod> ssw,
           std::vector<AswMethod> asw);

  /// The default catalogs of methods.hpp.
  static ClrSpace paper_default();

  const std::vector<HwMethod>& hw_methods() const noexcept { return hw_; }
  const std::vector<SswMethod>& ssw_methods() const noexcept { return ssw_; }
  const std::vector<AswMethod>& asw_methods() const noexcept { return asw_; }

  const HwMethod& hw(const ClrConfig& c) const;
  const SswMethod& ssw(const ClrConfig& c) const;
  const AswMethod& asw(const ClrConfig& c) const;

  /// |Ct| for a PE exposing `dvfs_modes` operating points, under free axes
  /// `axes` (pinned axes contribute a factor of 1).
  std::size_t size(std::size_t dvfs_modes, ClrAxes axes = ClrAxes::all()) const;

  /// Enumerate every configuration for a PE with `dvfs_modes` operating
  /// points; pinned axes stay at index 0. Order is deterministic
  /// (hw-major, then ssw, asw, dvfs).
  std::vector<ClrConfig> enumerate(std::size_t dvfs_modes,
                                   ClrAxes axes = ClrAxes::all()) const;

  /// Bounds-check a configuration against the catalogs; throws on violation.
  void check(const ClrConfig& c, std::size_t dvfs_modes) const;

  /// Human-readable description, e.g. "HW:TMR + SSW:chkpnt-2 + ASW:none".
  std::string describe(const ClrConfig& c) const;

 private:
  std::vector<HwMethod> hw_;
  std::vector<SswMethod> ssw_;
  std::vector<AswMethod> asw_;
};

}  // namespace clrearly::reliability
