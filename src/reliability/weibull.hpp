// Weibull wear-out / lifetime model (TABLE III, Eq. 2).
//
// Each PE type carries a shape parameter beta; each task implementation
// induces a scale parameter eta that reflects the thermal stress of running
// it (hot implementations age the PE faster). The paper computes
//   MTTF(t,i,p) = eta(t,i) * Gamma(1 + 1/beta_p)
// and aggregates per-PE MTTF over the tasks mapped to the PE.
#pragma once

namespace clrearly::reliability {

/// Two-parameter Weibull distribution.
class Weibull {
 public:
  /// eta = scale (same unit as t), beta = shape; both must be positive.
  Weibull(double eta, double beta);

  double eta() const noexcept { return eta_; }
  double beta() const noexcept { return beta_; }

  /// Survival (reliability) function R(t) = exp(-(t/eta)^beta).
  double reliability(double t) const;

  /// Failure CDF F(t) = 1 - R(t).
  double cdf(double t) const;

  /// Probability density f(t).
  double pdf(double t) const;

  /// Hazard rate h(t) = f(t)/R(t) = (beta/eta) (t/eta)^{beta-1}.
  double hazard(double t) const;

  /// Mean time to failure: eta * Gamma(1 + 1/beta).
  double mttf() const;

  /// Quantile: time by which fraction p has failed.
  double quantile(double p) const;

 private:
  double eta_;
  double beta_;
};

/// Arrhenius-style thermal acceleration of the Weibull scale parameter.
/// eta(T) = eta_ref * exp( (Ea/k) * (1/T - 1/T_ref) ) with temperatures in
/// Kelvin — hotter than the reference shrinks eta (faster aging).
struct ArrheniusAging {
  double activation_energy_ev = 0.48;  ///< typical electromigration Ea
  double reference_temp_c = 60.0;      ///< temperature at which eta_ref holds

  /// Scale eta_ref quoted at reference_temp_c to operating temperature
  /// `temp_c`. Monotonically decreasing in temp_c.
  double scale_eta(double eta_ref, double temp_c) const;
};

}  // namespace clrearly::reliability
