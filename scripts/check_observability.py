#!/usr/bin/env python3
"""Validate the files written by --metrics-out / --trace-out.

Usage: check_observability.py METRICS_JSON [TRACE_JSON]

Asserts the structural contract the docs promise and CI relies on:

* the metrics snapshot parses and has the counters/gauges/histograms/
  caches/manifest sections with sane types;
* histogram bucket counts sum to the histogram count;
* each cache entry's hit_rate matches hits / (hits + misses);
* the manifest is complete;
* the trace (when given) is valid Chrome trace-event JSON: every event has
  name/ph/ts/pid/tid, complete events have durations, counter events carry
  args.value, and dropped_events is reported.

Exits non-zero with a message on the first violation.
"""

import json
import math
import sys


def fail(message: str) -> None:
    print(f"check_observability: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)

    for section in ("counters", "gauges", "histograms", "caches", "manifest"):
        if section not in snapshot:
            fail(f"metrics: missing section '{section}'")

    for name, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"metrics: counter '{name}' has bad value {value!r}")
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)) or math.isnan(value):
            fail(f"metrics: gauge '{name}' has bad value {value!r}")

    for name, hist in snapshot["histograms"].items():
        for key in ("count", "sum", "min", "max", "buckets"):
            if key not in hist:
                fail(f"metrics: histogram '{name}' missing '{key}'")
        total = 0
        previous_bound = -math.inf
        for bucket in hist["buckets"]:
            total += bucket["count"]
            if "le" in bucket:
                if bucket["le"] <= previous_bound:
                    fail(f"metrics: histogram '{name}' bounds not ascending")
                previous_bound = bucket["le"]
            elif not bucket.get("overflow"):
                fail(f"metrics: histogram '{name}' bucket lacks le/overflow")
        if total != hist["count"]:
            fail(
                f"metrics: histogram '{name}' buckets sum to {total}, "
                f"count says {hist['count']}"
            )

    for name, cache in snapshot["caches"].items():
        for key in ("hits", "misses", "evictions", "entries", "capacity",
                    "hit_rate"):
            if key not in cache:
                fail(f"metrics: cache '{name}' missing '{key}'")
        lookups = cache["hits"] + cache["misses"]
        expected = cache["hits"] / lookups if lookups else 0.0
        if abs(cache["hit_rate"] - expected) > 1e-9:
            fail(
                f"metrics: cache '{name}' hit_rate {cache['hit_rate']} "
                f"inconsistent with hits/misses (expected {expected})"
            )

    manifest = snapshot["manifest"]
    for key in ("program", "args", "seed", "threads", "cache_capacity",
                "build_type", "log_level"):
        if key not in manifest:
            fail(f"metrics: manifest missing '{key}'")
    if not manifest["program"]:
        fail("metrics: manifest has an empty program")
    if manifest["build_type"] not in ("Release", "Debug"):
        fail(f"metrics: manifest build_type {manifest['build_type']!r}")

    print(
        f"check_observability: metrics OK — "
        f"{len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms, "
        f"{len(snapshot['caches'])} caches"
    )


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)

    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        fail("trace: bad or missing displayTimeUnit")
    other = trace.get("otherData")
    if not isinstance(other, dict) or "dropped_events" not in other:
        fail("trace: otherData.dropped_events missing")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace: traceEvents missing or empty")

    for index, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"trace: event {index} missing '{key}'")
        phase = event["ph"]
        if phase == "X":
            if "dur" not in event or event["dur"] < 0:
                fail(f"trace: complete event {index} has bad duration")
        elif phase == "C":
            if "value" not in event.get("args", {}):
                fail(f"trace: counter event {index} lacks args.value")
        elif phase != "i":
            fail(f"trace: event {index} has unexpected phase {phase!r}")

    spans = sum(1 for e in events if e["ph"] == "X")
    print(
        f"check_observability: trace OK — {len(events)} events "
        f"({spans} spans), {other['dropped_events']} dropped"
    )


def main(argv: list[str]) -> None:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_metrics(argv[1])
    if len(argv) == 3:
        check_trace(argv[2])


if __name__ == "__main__":
    main(sys.argv)
