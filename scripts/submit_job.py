#!/usr/bin/env python3
"""Submit a DSE job to a running `clrearly serve` daemon and wait for it.

Stdlib-only client for the v1 wire format (docs/SERVER.md). Builds a
JobSpec from flags (or posts --spec FILE verbatim), POSTs it to
/v1/jobs, streams per-generation progress events while polling, fetches
the result, and optionally checks it:

  --compare-csv FRONT.csv   the result front must equal the CSV written
                            by the offline `clrearly dse --csv` run, value
                            for value (both sides print shortest-round-trip
                            doubles, so parsed floats compare exactly);
  --expect-min-fitness-hits N / --expect-min-chain-hits N
                            assert cross-request cache sharing happened.

429 rejections (queue full or over the per-client quota) are retried with
capped exponential backoff seeded from the server's Retry-After header.
--sse streams progress over Server-Sent Events instead of cursor polling;
--submit-only / --wait-job ID split submission from waiting (the CI
restart-replay smoke submits, SIGKILLs the daemon, restarts it on the same
spool, and waits for the journal-replayed job by id).

Exits non-zero if the job fails, is cancelled, or any check fails.

Example (the CI smoke lane):
  clrearly serve --port 0 --port-file /tmp/port &
  submit_job.py --port-file /tmp/port --app sobel --flow proposed \
      --seed 1 --pop 16 --gens 4 --compare-csv build/offline_front.csv
"""

import argparse
import http.client
import json
import sys
import time
import urllib.error
import urllib.request

RETRY_AFTER_CAP = 5.0  # seconds: never honor a Retry-After beyond this


def fail(message: str) -> None:
    print(f"submit_job: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_port(args: argparse.Namespace) -> int:
    if args.port is not None:
        return args.port
    if not args.port_file:
        fail("need --port or --port-file")
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        try:
            with open(args.port_file, encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.05)
    fail(f"port file {args.port_file} did not appear within {args.timeout}s")
    return 0  # unreachable


def request(base: str, method: str, path: str, body: dict | None = None,
            headers: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return (response.status, json.loads(response.read() or b"{}"),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}"), dict(error.headers)


def submit_with_backoff(base: str, spec: dict, headers: dict,
                        timeout: float) -> dict:
    """POST the spec, honoring 429 Retry-After with capped exponential
    backoff: the wait starts from the server's Retry-After hint and doubles
    per consecutive rejection, never exceeding RETRY_AFTER_CAP seconds."""
    deadline = time.monotonic() + timeout
    attempt = 0
    while True:
        status, accepted, response_headers = request(
            base, "POST", "/v1/jobs", spec, headers)
        if status == 202:
            return accepted
        if status != 429:
            fail(f"submit returned {status}: {accepted}")
        try:
            retry_after = float(response_headers.get("Retry-After", 1))
        except ValueError:
            retry_after = 1.0
        delay = min(retry_after * (2 ** attempt), RETRY_AFTER_CAP)
        attempt += 1
        if time.monotonic() + delay > deadline:
            fail(f"daemon still rejecting (429) after {timeout}s: {accepted}")
        print(f"submit_job: 429 (Retry-After {retry_after:g}s), "
              f"backing off {delay:.2f}s")
        time.sleep(delay)


def stream_sse(host: str, port: int, job_id: str, deadline: float) -> bool:
    """Stream progress over SSE; returns True once the terminal `state`
    frame arrived, False if the stream ended early (caller falls back to
    polling)."""
    conn = http.client.HTTPConnection(host, port,
                                      timeout=max(1.0, deadline - time.monotonic()))
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/events?from=0",
                     headers={"Accept": "text/event-stream"})
        response = conn.getresponse()
        if response.status != 200:
            print(f"submit_job: SSE unavailable ({response.status}), "
                  f"falling back to polling")
            return False
        event, data = "", ""
        while time.monotonic() < deadline:
            raw = response.readline()
            if not raw:
                return False  # server drained before the job finished
            line = raw.decode().rstrip("\n").rstrip("\r")
            if line.startswith(":"):
                continue  # heartbeat comment
            if line.startswith("event:"):
                event = line[6:].strip()
            elif line.startswith("data:"):
                data = line[5:].strip()
            elif not line and data:
                payload = json.loads(data)
                if event == "state":
                    print(f"submit_job: SSE stream closed, job "
                          f"{payload.get('state')}")
                    return True
                print(f"submit_job: [sse] {payload['stage']} generation "
                      f"{payload['generation']}/{payload['generations']} "
                      f"(front {payload['front_size']}, "
                      f"evals {payload['evaluations']})")
                event, data = "", ""
        return False
    except (OSError, http.client.HTTPException) as error:
        print(f"submit_job: SSE stream error ({error}), falling back")
        return False
    finally:
        conn.close()


def build_spec(args: argparse.Namespace) -> dict:
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            return json.load(handle)
    spec = {
        "format_version": 1,
        "flow": args.flow,
        "seed": args.seed,
        "ga": {"population_size": args.pop, "generations": args.gens},
        "application": args.app,
    }
    if args.threads is not None:
        spec["threads"] = args.threads
    if args.qos_max_makespan_us is not None:
        spec["qos"] = {"max_makespan_us": args.qos_max_makespan_us}
    if args.islands is not None:
        islands = {"count": args.islands}
        if args.migration_interval is not None:
            islands["migration_interval"] = args.migration_interval
        if args.migration_size is not None:
            islands["migration_size"] = args.migration_size
        spec["islands"] = islands
    return spec


def compare_csv(result: dict, path: str) -> None:
    """The offline CSV holds the first two objectives of every front point."""
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    rows = [[float(cell) for cell in line.split(",")] for line in lines[1:]]
    front = result["front"]
    if len(rows) != len(front):
        fail(f"front size mismatch: CSV has {len(rows)} points, "
             f"server returned {len(front)}")
    for i, (row, point) in enumerate(zip(rows, front)):
        if row[0] != point[0] or row[1] != point[1]:
            fail(f"front[{i}] differs: CSV ({row[0]}, {row[1]}) vs "
                 f"server ({point[0]}, {point[1]}) — the serve path is "
                 f"not bit-identical to the offline run")
    print(f"submit_job: front matches {path} exactly ({len(rows)} points)")


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file", help="file the daemon wrote its port to")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to wait for the port file / the job")
    parser.add_argument("--spec", help="JobSpec JSON file to post verbatim")
    parser.add_argument("--app", default="sobel")
    parser.add_argument("--flow", default="proposed",
                        choices=("fcclr", "pfclr", "proposed"))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--pop", type=int, default=16)
    parser.add_argument("--gens", type=int, default=4)
    parser.add_argument("--threads", type=int)
    parser.add_argument("--islands", type=int,
                        help="island-model shard count (docs/SCALING.md; "
                        "part of the model key)")
    parser.add_argument("--migration-interval", type=int,
                        help="generations between island migrations")
    parser.add_argument("--migration-size", type=int,
                        help="emigrants per island per migration")
    parser.add_argument("--qos-max-makespan-us", type=float,
                        help="adds a QoS bound (changes the model key)")
    parser.add_argument("--out", help="write the result JSON here")
    parser.add_argument("--compare-csv",
                        help="offline `clrearly dse --csv` file to match")
    parser.add_argument("--expect-min-fitness-hits", type=int)
    parser.add_argument("--expect-min-chain-hits", type=int)
    parser.add_argument("--client-key",
                        help="X-Client-Key admission-quota bucket")
    parser.add_argument("--priority", choices=("high", "normal"),
                        help="X-Priority scheduling level")
    parser.add_argument("--sse", action="store_true",
                        help="stream progress over Server-Sent Events "
                        "instead of cursor polling")
    parser.add_argument("--submit-only", action="store_true",
                        help="submit and print the job id without waiting "
                        "(restart-replay testing)")
    parser.add_argument("--wait-job",
                        help="skip submission; wait for this existing job id "
                        "(e.g. one replayed from the journal)")
    args = parser.parse_args()

    port = wait_for_port(args)
    base = f"http://{args.host}:{port}"

    if args.wait_job:
        job_id = args.wait_job
    else:
        headers = {}
        if args.client_key:
            headers["X-Client-Key"] = args.client_key
        if args.priority:
            headers["X-Priority"] = args.priority
        accepted = submit_with_backoff(base, build_spec(args), headers,
                                       args.timeout)
        job_id = accepted["id"]
        print(f"submit_job: {job_id} accepted "
              f"(queue position {accepted.get('queue_position')})")
        if args.submit_only:
            print(f"submit_job: submitted {job_id}")
            return

    deadline = time.monotonic() + args.timeout
    if args.sse:
        stream_sse(args.host, port, job_id, deadline)
        # The terminal state (and result) is always re-read via the plain
        # API: the SSE path streams progress, it is not the source of truth.
    next_event = 0
    while True:
        if not args.sse:
            status, events, _ = request(
                base, "GET", f"/v1/jobs/{job_id}/events?from={next_event}")
            if status == 200:
                for event in events.get("events", []):
                    print(f"submit_job: {event['stage']} generation "
                          f"{event['generation']}/{event['generations']} "
                          f"(front {event['front_size']}, "
                          f"evals {event['evaluations']})")
                next_event = events.get("next", next_event)
        status, job = request(base, "GET", f"/v1/jobs/{job_id}")[:2]
        if status != 200:
            fail(f"status poll returned {status}: {job}")
        state = job["state"]
        if state in ("done", "failed", "cancelled"):
            break
        if time.monotonic() > deadline:
            fail(f"{job_id} still {state} after {args.timeout}s")
        time.sleep(0.05)
    if state != "done":
        fail(f"{job_id} ended {state}: {job.get('error', '')}")

    status, result, _ = request(base, "GET", f"/v1/jobs/{job_id}/result")
    if status != 200:
        fail(f"result fetch returned {status}: {result}")
    cache = result["cache"]
    print(f"submit_job: {job_id} done — {len(result['front'])} front points, "
          f"{result['evaluations']} evaluations in "
          f"{result['wall_seconds'] * 1e3:.1f} ms; cache "
          f"fitness {cache['fitness_hits']}h/{cache['fitness_misses']}m, "
          f"chain {cache['chain_hits']}h/{cache['chain_misses']}m")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"submit_job: wrote {args.out}")
    if args.compare_csv:
        compare_csv(result, args.compare_csv)
    if args.expect_min_fitness_hits is not None:
        if cache["fitness_hits"] < args.expect_min_fitness_hits:
            fail(f"expected >= {args.expect_min_fitness_hits} fitness-cache "
                 f"hits, saw {cache['fitness_hits']} — cross-request "
                 f"session sharing regressed")
        print(f"submit_job: fitness-cache sharing OK "
              f"({cache['fitness_hits']} hits)")
    if args.expect_min_chain_hits is not None:
        if cache["chain_hits"] < args.expect_min_chain_hits:
            fail(f"expected >= {args.expect_min_chain_hits} chain-cache "
                 f"hits, saw {cache['chain_hits']} — the process-wide "
                 f"chain cache is not shared across sessions")
        print(f"submit_job: chain-cache sharing OK "
              f"({cache['chain_hits']} hits)")


if __name__ == "__main__":
    main()
