#!/usr/bin/env python3
"""Plot the CSVs the benches write under results/ into paper-style figures.

Usage:
    python3 scripts/plot_results.py [--results results] [--out plots]

Regenerates (when the corresponding CSV exists):
    fig6a.png   task-level Pareto fronts per DVFS mode
    fig6b.png   task-level fronts under implicit-masking sweep
    fig7.png    CLR vs single-layer / agnostic fronts (20 tasks)
    fig8.png    proposed vs fcCLR fronts (50 tasks)
    fig9.png    task-level Pareto implementation counts per tDSE run
    fig10.png   proposed_k vs pfCLR_k fronts (30 tasks)
    table5.png  hypervolume gain bars, CLR over agnostic
    table6.png  hypervolume gain bars, proposed over fcCLR
    scale_hv.png  hypervolume-vs-evaluations convergence curves, single
                  population vs islands per graph size (BENCH_scale.json,
                  looked for in the repo root and under --results)

Requires matplotlib; every plot is optional and skipped with a note when its
input CSV is missing.
"""
from __future__ import annotations

import argparse
import csv
import math
import sys
from collections import defaultdict
from pathlib import Path


def read_series(path: Path):
    """CSV with a leading 'series' column -> {series: [(x, y), ...]}."""
    series = defaultdict(list)
    with path.open() as fh:
        reader = csv.reader(fh)
        next(reader)  # header
        for row in reader:
            if len(row) < 3:
                continue
            series[row[0]].append((float(row[1]), float(row[2])))
    for points in series.values():
        points.sort()
    return dict(series)


def read_rows(path: Path):
    with path.open() as fh:
        reader = csv.DictReader(fh)
        return list(reader)


def plot_fronts(plt, series, title, xlabel, ylabel, out_path):
    fig, ax = plt.subplots(figsize=(6.5, 4.5))
    markers = ["o", "s", "^", "v", "D", "x", "*", "P"]
    for i, (name, points) in enumerate(sorted(series.items())):
        if not points:
            continue
        xs, ys = zip(*points)
        ax.plot(xs, ys, marker=markers[i % len(markers)], markersize=4,
                linewidth=1.0, label=name)
    ax.set_title(title)
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def plot_gain_bars(plt, rows, gain_key, title, out_path):
    tasks, gains = [], []
    for row in rows:
        try:
            gain = float(row[gain_key])
        except (ValueError, KeyError):
            continue
        if not math.isfinite(gain):
            continue
        tasks.append(row["tasks"])
        gains.append(gain)
    if not tasks:
        print(f"skipping {out_path}: no finite gains")
        return
    fig, ax = plt.subplots(figsize=(6.5, 4.0))
    ax.bar(tasks, gains)
    ax.set_title(title)
    ax.set_xlabel("#tasks")
    ax.set_ylabel("% increase in hypervolume")
    ax.grid(True, axis="y", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def plot_fig9(plt, rows, out_path):
    names = [row["task_type"] for row in rows]
    runs = ["tdse_1", "tdse_2", "tdse_3"]
    fig, ax = plt.subplots(figsize=(7.5, 4.0))
    width = 0.27
    for i, run in enumerate(runs):
        values = [float(row[run]) for row in rows]
        positions = [x + (i - 1) * width for x in range(len(names))]
        ax.bar(positions, values, width, label=run)
    ax.set_xticks(range(len(names)))
    ax.set_xticklabels(names, rotation=30, fontsize=8)
    ax.set_ylabel("# Pareto implementations")
    ax.set_title("Fig. 9: task-level Pareto implementations per tDSE run")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def plot_scale_curves(plt, report, out_path):
    """Hypervolume-vs-evaluations curves from BENCH_scale.json: one panel
    per graph size, single population vs islands under the shared reference
    (docs/SCALING.md)."""
    sizes = report.get("sizes", [])
    if not sizes:
        print(f"skipping {out_path}: no sizes in report")
        return
    fig, axes = plt.subplots(1, len(sizes), figsize=(4.2 * len(sizes), 3.8),
                             squeeze=False)
    for ax, entry in zip(axes[0], sizes):
        for label, run, style in (("1 population", entry["single"], "-o"),
                                  (f"{report['islands']} islands",
                                   entry["islands"], "-s")):
            points = [(p["evaluations"], p["hypervolume"])
                      for p in run["curve"] if p["hypervolume"] > 0]
            if not points:
                continue
            xs, ys = zip(*points)
            ax.plot(xs, ys, style, markersize=3, linewidth=1.0, label=label)
        ax.set_title(f"{entry['tasks']} tasks "
                     f"(speedup {entry['speedup_wall_to_single_hv']:.2f}x)")
        ax.set_xlabel("evaluations")
        ax.set_ylabel("hypervolume (shared reference)")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=8)
    fig.suptitle("Island-model convergence at equal evaluation budget")
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="results", type=Path)
    parser.add_argument("--out", default="plots", type=Path)
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib",
              file=sys.stderr)
        return 1

    args.out.mkdir(parents=True, exist_ok=True)

    front_specs = [
        ("fig6a_dvfs_fronts.csv", "fig6a.png",
         "Fig. 6a: task-level fronts per DVFS mode",
         "average execution time (us)", "error probability (%)"),
        ("fig6b_implicit_masking.csv", "fig6b.png",
         "Fig. 6b: fronts under implicit masking",
         "average execution time (us)", "error probability (%)"),
        ("fig7_clr_vs_agnostic.csv", "fig7.png",
         "Fig. 7: CLR vs other-layer-agnostic (20 tasks)",
         "average makespan (us)", "application error probability"),
        ("fig8_proposed_vs_fcclr.csv", "fig8.png",
         "Fig. 8: proposed vs fcCLR (50 tasks)",
         "average makespan (us)", "application error probability"),
        ("fig10_tdse_run_fronts.csv", "fig10.png",
         "Fig. 10: proposed_k vs pfCLR_k (30 tasks)",
         "average makespan (us)", "application error probability"),
    ]
    for csv_name, png_name, title, xlabel, ylabel in front_specs:
        path = args.results / csv_name
        if not path.exists():
            print(f"skipping {png_name}: {path} not found")
            continue
        plot_fronts(plt, read_series(path), title, xlabel, ylabel,
                    args.out / png_name)

    table5 = args.results / "table5_clr_vs_agnostic.csv"
    if table5.exists():
        plot_gain_bars(plt, read_rows(table5), "hv_gain_pct",
                       "TABLE V: CLR over agnostic", args.out / "table5.png")
    table6 = args.results / "table6_proposed_vs_fcclr.csv"
    if table6.exists():
        plot_gain_bars(plt, read_rows(table6), "hv_gain_pct",
                       "TABLE VI: proposed over fcCLR",
                       args.out / "table6.png")
    fig9 = args.results / "fig9_pareto_impl_counts.csv"
    if fig9.exists():
        plot_fig9(plt, read_rows(fig9), args.out / "fig9.png")

    import json
    for candidate in (Path("BENCH_scale.json"),
                      args.results / "BENCH_scale.json"):
        if candidate.exists():
            with candidate.open(encoding="utf-8") as fh:
                plot_scale_curves(plt, json.load(fh),
                                  args.out / "scale_hv.png")
            break
    else:
        print("skipping scale_hv.png: BENCH_scale.json not found")
    return 0


if __name__ == "__main__":
    sys.exit(main())
