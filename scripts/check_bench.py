#!/usr/bin/env python3
"""Validate the JSON emitted by the self-describing benchmarks.

Usage: check_bench.py BENCH_JSON

Dispatches on the top-level "benchmark" id:

* "chain_kernel" (bench_chain_kernel) — the structural contract below;
* "serve" (bench_serve) — the daemon throughput report: jobs ran,
  latency percentiles are ordered, the cache hit-rate is a rate, every
  job completed and the identical-spec jobs produced identical fronts.
* "resilience" (bench_resilience) — the permanent-fault lane: a
  non-empty k-resilient front, every point's analytic availability and
  error inside the injected Wilson interval, injection bit-identical
  across thread counts, and a sane resilience-agnostic baseline.

For chain_kernel the contract CI archives and the docs describe:

* the file parses and identifies itself as the chain_kernel benchmark;
* the scalar-vs-scalar section ("sizes") has the memoized-kernel fields
  with positive timings and the correctness flag set;
* the batched section has one record per (size class, dispatch level)
  with the full field set — intervals, transient_states, width, simd,
  scalar_ns_per_chain, ns_per_chain, chains_per_sec, speedup_vs_scalar,
  pad_waste_pct — and each record is internally consistent
  (chains_per_sec ~ 1e9 / ns_per_chain, speedup ~ scalar/batched);
* the batched lanes were bit-identical to the scalar solver
  (batched_agree, batched_max_rel_err == 0).

Speedups are a soft gate: a worst-case batched speedup below the warning
threshold prints a WARN (shared CI runners are noisy) but does not fail
the job. Structural violations exit non-zero on the first one found.
"""

import json
import sys

# Warn (don't fail) below this batched speedup — the acceptance target is
# 3x on quiet AVX2 hardware, but CI runners share cores and throttle.
SOFT_SPEEDUP_WARN = 2.0

# Warn (don't fail) below this island-model time-to-quality speedup — the
# target is 2x on the 1000-task graph, but the search is seed-sensitive and
# single-core runners cannot overlap the islands.
SCALE_SOFT_SPEEDUP_WARN = 2.0

BATCHED_FIELDS = (
    "intervals",
    "transient_states",
    "width",
    "simd",
    "scalar_ns_per_chain",
    "ns_per_chain",
    "chains_per_sec",
    "speedup_vs_scalar",
    "pad_waste_pct",
)


def fail(message: str) -> None:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def warn(message: str) -> None:
    print(f"check_bench: WARN: {message}")


def check_sizes(report: dict) -> None:
    sizes = report.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        fail("'sizes' missing or empty")
    for entry in sizes:
        for key in ("intervals", "transient_states", "old_ns_per_eval",
                    "new_ns_per_eval", "speedup", "new_allocs_per_eval"):
            if key not in entry:
                fail(f"sizes entry missing '{key}': {entry}")
        if entry["old_ns_per_eval"] <= 0 or entry["new_ns_per_eval"] <= 0:
            fail(f"sizes entry has non-positive timing: {entry}")
        if entry["new_allocs_per_eval"] != 0:
            fail(
                f"warm evaluation allocated "
                f"({entry['new_allocs_per_eval']} allocs/eval at "
                f"t={entry['transient_states']}) — workspace reuse regressed"
            )
    if report.get("agree") is not True:
        fail("scalar kernel results diverged from the reference (agree=false)")


def check_batched(report: dict) -> None:
    batched = report.get("batched")
    if not isinstance(batched, list) or not batched:
        fail("'batched' missing or empty")

    seen = set()
    for entry in batched:
        for key in BATCHED_FIELDS:
            if key not in entry:
                fail(f"batched entry missing '{key}': {entry}")
        if entry["simd"] not in ("scalar", "avx2", "avx512"):
            fail(f"batched entry has unknown simd level {entry['simd']!r}")
        if entry["width"] not in (1, 4, 8):
            fail(f"batched entry has unexpected width {entry['width']}")
        if entry["ns_per_chain"] <= 0 or entry["scalar_ns_per_chain"] <= 0:
            fail(f"batched entry has non-positive timing: {entry}")
        if not 0 <= entry["pad_waste_pct"] <= 100:
            fail(f"batched entry pad_waste_pct out of range: {entry}")

        combo = (entry["transient_states"], entry["simd"], entry["width"])
        if combo in seen:
            fail(f"duplicate batched record for t/simd/width {combo}")
        seen.add(combo)

        throughput = 1e9 / entry["ns_per_chain"]
        if abs(entry["chains_per_sec"] - throughput) > 1e-3 * throughput:
            fail(
                f"chains_per_sec {entry['chains_per_sec']} inconsistent with "
                f"ns_per_chain {entry['ns_per_chain']}"
            )
        ratio = entry["scalar_ns_per_chain"] / entry["ns_per_chain"]
        if abs(entry["speedup_vs_scalar"] - ratio) > 1e-3 * ratio:
            fail(
                f"speedup_vs_scalar {entry['speedup_vs_scalar']} inconsistent "
                f"with the per-chain timings (expected {ratio})"
            )

    if report.get("batched_agree") is not True:
        fail("batched lanes diverged from the scalar solver "
             "(batched_agree=false)")
    if report.get("batched_max_rel_err", 1.0) != 0:
        fail(
            f"batched lanes are not bit-identical to scalar "
            f"(batched_max_rel_err={report.get('batched_max_rel_err')})"
        )

    worst = min(e["speedup_vs_scalar"] for e in batched)
    if worst < SOFT_SPEEDUP_WARN:
        slowest = min(batched, key=lambda e: e["speedup_vs_scalar"])
        warn(
            f"worst batched speedup {worst:.2f}x "
            f"(t={slowest['transient_states']}, {slowest['simd']} "
            f"w{slowest['width']}) is below the {SOFT_SPEEDUP_WARN}x soft "
            f"gate — likely a noisy runner, investigate if persistent"
        )

    print(
        f"check_bench: batched OK — {len(batched)} records, "
        f"worst speedup {worst:.2f}x, max divergence "
        f"{report.get('batched_max_rel_err')}"
    )


def check_chain_kernel(report: dict) -> str:
    for key in ("reps", "evals_per_rep", "simd_detected"):
        if key not in report:
            fail(f"missing top-level key '{key}'")
    check_sizes(report)
    check_batched(report)
    return f"simd={report['simd_detected']}"


def check_serve(report: dict) -> str:
    for key in ("jobs", "workers", "queue_depth", "jobs_per_sec",
                "p50_job_latency_ms", "p99_job_latency_ms", "cache_hit_rate",
                "fitness_hits", "chain_hits", "all_completed",
                "identical_fronts_agree"):
        if key not in report:
            fail(f"missing top-level key '{key}'")
    if report["jobs"] <= 0:
        fail(f"no jobs ran (jobs={report['jobs']})")
    if report["jobs_per_sec"] <= 0:
        fail(f"non-positive throughput (jobs_per_sec={report['jobs_per_sec']})")
    if report["p50_job_latency_ms"] <= 0:
        fail(f"non-positive p50 latency ({report['p50_job_latency_ms']})")
    if report["p50_job_latency_ms"] > report["p99_job_latency_ms"]:
        fail(
            f"latency percentiles out of order: p50 "
            f"{report['p50_job_latency_ms']} > p99 "
            f"{report['p99_job_latency_ms']}"
        )
    if not 0 <= report["cache_hit_rate"] <= 1:
        fail(f"cache_hit_rate out of range: {report['cache_hit_rate']}")
    if report["all_completed"] is not True:
        fail("not every submitted job completed (all_completed=false)")
    if report["identical_fronts_agree"] is not True:
        fail("identical-spec jobs produced different fronts — the serve "
             "path broke determinism (identical_fronts_agree=false)")
    if report["fitness_hits"] <= 0:
        fail("no cross-request fitness-cache hits — session sharing "
             f"regressed (fitness_hits={report['fitness_hits']})")

    if "keepalive" not in report:
        fail("missing 'keepalive' section (HTTP front-end benchmark)")
    ka = report["keepalive"]
    for key in ("requests", "http_ok", "keepalive_rps", "per_connection_rps",
                "keepalive_p50_ms", "keepalive_p99_ms",
                "per_connection_p50_ms", "per_connection_p99_ms", "speedup"):
        if key not in ka:
            fail(f"missing keepalive key '{key}'")
    if ka["http_ok"] is not True:
        fail("HTTP keep-alive section hit a socket failure (http_ok=false)")
    if ka["keepalive_rps"] <= 0 or ka["per_connection_rps"] <= 0:
        fail("non-positive HTTP throughput "
             f"(keepalive {ka['keepalive_rps']}, "
             f"per-connection {ka['per_connection_rps']})")
    for prefix in ("keepalive", "per_connection"):
        if ka[f"{prefix}_p50_ms"] > ka[f"{prefix}_p99_ms"]:
            fail(f"{prefix} latency percentiles out of order")
    # Soft gate: shared CI runners are too noisy for a hard perf assertion,
    # but a persistent connection should comfortably beat a fresh TCP
    # handshake per request.
    if ka["speedup"] < 1.3:
        warn(f"keep-alive speedup {ka['speedup']:.2f}x below the expected "
             "1.3x over one-connection-per-request")

    return (
        f"{report['jobs']} jobs at {report['jobs_per_sec']:.1f}/s, "
        f"p50 {report['p50_job_latency_ms']:.2f} ms, "
        f"hit-rate {100 * report['cache_hit_rate']:.1f}%, "
        f"keep-alive {ka['speedup']:.2f}x"
    )


def check_resilience(report: dict) -> str:
    for key in ("max_failures", "mission_hours", "trials_per_point",
                "front_points", "points", "availability_covered",
                "error_covered", "covered", "deterministic",
                "baseline_front_points", "baseline_survivors",
                "baseline_survivor_fraction"):
        if key not in report:
            fail(f"missing top-level key '{key}'")
    n = report["front_points"]
    if n <= 0:
        fail(f"empty k-resilient front (front_points={n})")
    points = report["points"]
    if not isinstance(points, list) or len(points) != n:
        fail(f"'points' missing or inconsistent with front_points={n}")
    for point in points:
        for key in ("analytic_availability", "injected_availability",
                    "availability_ci_lo", "availability_ci_hi",
                    "availability_covered", "analytic_error_prob",
                    "injected_error_prob", "error_ci_lo", "error_ci_hi",
                    "error_covered", "available_trials"):
            if key not in point:
                fail(f"points entry missing '{key}': {point}")
        if not 0 <= point["analytic_availability"] <= 1:
            fail(f"analytic availability out of range: {point}")
        if point["availability_ci_lo"] > point["availability_ci_hi"]:
            fail(f"availability CI inverted: {point}")
        if point["error_ci_lo"] > point["error_ci_hi"]:
            fail(f"error CI inverted: {point}")
        if point["available_trials"] <= 0:
            fail(f"no available trials — injection never found a surviving "
                 f"configuration: {point}")
    if report["deterministic"] is not True:
        fail("injection diverged across thread counts (deterministic=false)")
    if report["covered"] is not True:
        fail(
            f"Monte Carlo oracle disagrees with the analytic degraded-mode "
            f"prediction (availability {report['availability_covered']}/{n}, "
            f"error {report['error_covered']}/{n} covered)"
        )
    if not 0 <= report["baseline_survivor_fraction"] <= 1:
        fail(f"baseline_survivor_fraction out of range: "
             f"{report['baseline_survivor_fraction']}")
    return (
        f"k={report['max_failures']}, {n} front points covered at "
        f"{report['trials_per_point']} trials, baseline survivors "
        f"{100 * report['baseline_survivor_fraction']:.0f}%"
    )


def check_scale_run(entry: dict, label: str) -> None:
    for key in ("wall_seconds", "evaluations", "hypervolume", "curve"):
        if key not in entry:
            fail(f"{label} run missing '{key}': {entry}")
    if entry["wall_seconds"] <= 0:
        fail(f"{label} run has non-positive wall_seconds: {entry}")
    if entry["evaluations"] <= 0:
        fail(f"{label} run has non-positive evaluations: {entry}")
    curve = entry["curve"]
    if not isinstance(curve, list) or not curve:
        fail(f"{label} run has missing/empty 'curve'")
    last_evals = -1
    for point in curve:
        for key in ("evaluations", "wall_seconds", "front_size",
                    "hypervolume"):
            if key not in point:
                fail(f"{label} curve point missing '{key}': {point}")
        if point["evaluations"] < last_evals:
            fail(f"{label} curve evaluations not monotone: {curve}")
        last_evals = point["evaluations"]
    if curve[-1]["evaluations"] != entry["evaluations"]:
        fail(
            f"{label} curve ends at {curve[-1]['evaluations']} evaluations "
            f"but the run reports {entry['evaluations']}"
        )


def check_scale(report: dict) -> str:
    for key in ("flow", "population", "generations", "islands",
                "migration_interval", "migration_size", "seed", "fast_mode",
                "islands1_bit_identical", "speedup_wall_to_single_hv",
                "hv_ratio", "sizes"):
        if key not in report:
            fail(f"missing top-level key '{key}'")
    if report["islands1_bit_identical"] is not True:
        fail("--islands 1 diverged from the plain run_nsga2 path "
             "(islands1_bit_identical=false)")
    sizes = report["sizes"]
    if not isinstance(sizes, list) or not sizes:
        fail("'sizes' missing or empty")
    for entry in sizes:
        for key in ("tasks", "single", "islands", "equal_budget",
                    "wall_ratio_equal_budget", "hv_ratio",
                    "time_to_single_hv_seconds", "evaluations_to_single_hv",
                    "speedup_wall_to_single_hv"):
            if key not in entry:
                fail(f"sizes entry missing '{key}': {list(entry)}")
        if entry["equal_budget"] is not True:
            fail(
                f"{entry['tasks']}-task comparison ran unequal evaluation "
                f"budgets — the island layer re-evaluated migrants"
            )
        check_scale_run(entry["single"], f"{entry['tasks']}-task single")
        check_scale_run(entry["islands"], f"{entry['tasks']}-task islands")
        if entry["single"]["evaluations"] != entry["islands"]["evaluations"]:
            fail(f"{entry['tasks']}-task runs report different budgets")

    # Convergence quality is a soft gate: the headline targets come from a
    # quiet dedicated box; shared CI runners are noisy and the search is
    # seed-sensitive. Structural violations above are the hard contract.
    speedup = report["speedup_wall_to_single_hv"]
    hv_ratio = report["hv_ratio"]
    if speedup < SCALE_SOFT_SPEEDUP_WARN:
        warn(
            f"islands matched the single-population hypervolume at "
            f"{speedup:.2f}x wall-clock speedup, below the "
            f"{SCALE_SOFT_SPEEDUP_WARN}x soft gate — seed-sensitive, "
            f"investigate if persistent"
        )
    if hv_ratio < 1.0:
        warn(
            f"final island front hypervolume is {hv_ratio:.3f}x the "
            f"single-population run (soft gate at 1.0)"
        )
    return (
        f"{len(sizes)} sizes, {report['islands']} islands, "
        f"speedup-to-single-hv {speedup:.2f}x, hv ratio {hv_ratio:.3f}"
    )


CHECKERS = {
    "chain_kernel": check_chain_kernel,
    "serve": check_serve,
    "resilience": check_resilience,
    "scale": check_scale,
}


def main(argv: list[str]) -> None:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(argv[1], encoding="utf-8") as handle:
        report = json.load(handle)

    checker = CHECKERS.get(report.get("benchmark"))
    if checker is None:
        fail(f"unexpected benchmark id {report.get('benchmark')!r}")
    detail = checker(report)
    print(f"check_bench: OK — {argv[1]} ({detail})")


if __name__ == "__main__":
    main(sys.argv)
