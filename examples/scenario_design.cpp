// Operating-condition-robust design: the avionics scenario the paper's
// introduction motivates.
//
// A UAV image pipeline spends 85% of its mission at ground level (1x SEU
// flux) and 15% at high altitude (50x). This example contrasts three
// designs for the Sobel pipeline under a 99% functional-reliability floor:
//
//   * "ground specialist"   — optimized for the ground environment only,
//   * "altitude specialist" — optimized for altitude only,
//   * "robust"              — optimized over the mission profile with the
//                             scenario-aware problem (spec enforced in both
//                             conditions).
//
// The output shows the classic result: each specialist is best in its own
// condition, the ground specialist violates the reliability floor at
// altitude, and the robust design is the only one feasible everywhere.
#include <cstdio>

#include "app/sobel.hpp"
#include "core/scenario.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using namespace clrearly;

constexpr double kFrelFloor = 0.99;

/// Fastest feasible genome of a single-environment run, or nullptr-like
/// empty result when nothing is feasible.
core::MappingGenome optimize_single(const core::ClrMappingProblem& problem,
                                    std::uint64_t seed, bool* found) {
  moea::Nsga2Params ga;
  ga.population_size = 60;
  ga.generations = 40;
  util::Rng rng(seed);
  const auto result = moea::run_nsga2(ga, problem.ops(), rng);
  const core::MappingGenome* best = nullptr;
  double best_makespan = 0.0;
  for (std::size_t i : result.front) {
    if (result.population[i].eval.violation > 0.0) continue;
    const double makespan = result.population[i].eval.objectives[0];
    if (best == nullptr || makespan < best_makespan) {
      best = &result.population[i].genome;
      best_makespan = makespan;
    }
  }
  *found = best != nullptr;
  return best != nullptr ? *best : core::MappingGenome{};
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("scenario_design", "operating-condition-robust design for the UAV mission profile");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }

  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer base =
      reliability::TaskAnalyzer::paper_default();
  const core::ScenarioSet mission = core::ScenarioSet::ground_and_altitude();

  sched::QosSpec spec;
  spec.min_functional_rel = kFrelFloor;

  // Scenario-aware problem (also provides the per-scenario evaluators).
  const core::ScenarioProblem robust_problem(
      sobel, arch, base, mission, core::SystemObjectives{}, spec,
      core::ScenarioAggregation::kWeighted);

  // --- Specialists: optimize against one condition at a time.
  bool ground_ok = false, altitude_ok = false;
  const core::MappingGenome ground_design =
      optimize_single(robust_problem.problem(0), 11, &ground_ok);
  const core::MappingGenome altitude_design =
      optimize_single(robust_problem.problem(1), 12, &altitude_ok);

  // --- Robust: optimize the mission profile, spec enforced everywhere.
  moea::Nsga2Params ga;
  ga.population_size = 60;
  ga.generations = 40;
  util::Rng rng(13);
  const auto robust_run = moea::run_nsga2(ga, robust_problem.ops(), rng);
  const core::MappingGenome* robust_design = nullptr;
  double robust_makespan = 0.0;
  for (std::size_t i : robust_run.front) {
    if (robust_run.population[i].eval.violation > 0.0) continue;
    const double makespan = robust_run.population[i].eval.objectives[0];
    if (robust_design == nullptr || makespan < robust_makespan) {
      robust_design = &robust_run.population[i].genome;
      robust_makespan = makespan;
    }
  }

  // --- Report every design under every condition.
  std::printf("mission: 85%% ground (1x flux), 15%% altitude (50x flux); "
              "QoS floor Fapp >= %.2f\n\n",
              kFrelFloor);
  std::printf("%-20s %-10s %14s %12s %10s\n", "design", "condition",
              "makespan (us)", "Fapp", "meets spec");

  const struct {
    const char* name;
    const core::MappingGenome* genome;
    bool available;
  } designs[] = {
      {"ground specialist", &ground_design, ground_ok},
      {"altitude specialist", &altitude_design, altitude_ok},
      {"robust (mission)", robust_design, robust_design != nullptr},
  };

  for (const auto& design : designs) {
    if (!design.available) {
      std::printf("%-20s (no feasible design found)\n", design.name);
      continue;
    }
    const auto qos = robust_problem.per_scenario_qos(*design.genome);
    for (std::size_t s = 0; s < mission.size(); ++s) {
      std::printf("%-20s %-10s %14.1f %12.5f %10s\n", design.name,
                  mission.scenario(s).name.c_str(), qos[s].makespan_us,
                  qos[s].functional_rel,
                  qos[s].functional_rel >= kFrelFloor ? "yes" : "NO");
    }
  }

  std::printf(
      "\nExpected pattern: the ground specialist fails the floor at "
      "altitude;\nthe altitude specialist over-protects (slower) at ground; "
      "the robust\ndesign holds the floor in both conditions.\n");
  return 0;
}
