// Quickstart: the complete CL(R)Early flow on the paper's Sobel application.
//
//   1. Build the system model: the 6-PE heterogeneous MPSoC and the Sobel
//      edge-detection task graph with its implementation table.
//   2. Task-level DSE (tDSE): enumerate every CLR configuration per task
//      type through the Markov-chain models and Pareto-filter.
//   3. System-level DSE: run the proposed two-stage methodology
//      (pfCLR-seeded fcCLR) and print the resulting Pareto front of
//      (average makespan, application error probability) trade-offs.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("quickstart", "the complete CL(R)Early flow on the Sobel application");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  using namespace clrearly;

  // --- 1. System model.
  const platform::Architecture arch = platform::Architecture::paper_default();
  const app::Application sobel = app::make_sobel_application();
  std::printf("Application: %s (%zu tasks, %zu types)\n", sobel.name.c_str(),
              sobel.graph.num_tasks(), sobel.graph.num_types());
  std::printf("Platform: %zu PEs of %zu types\n\n", arch.num_pes(),
              arch.num_types());

  const core::DseMethodology dse(sobel, arch,
                                 reliability::TaskAnalyzer::paper_default());

  core::DseOptions options;
  options.ga.population_size = 60;
  options.ga.generations = 30;
  options.seed = 42;

  // --- 2. Task-level DSE.
  const auto tdse = dse.run_tdse(options);
  std::printf("Task-level DSE (objectives: AvgExT + ErrProb):\n");
  for (std::size_t type = 0; type < tdse.size(); ++type) {
    std::printf("  task type %zu: %4zu configurations -> %2zu Pareto points\n",
                type, tdse[type].enumerated.size(), tdse[type].pareto.size());
  }

  // --- 3. Proposed system-level DSE.
  const core::DseOutcome outcome = dse.run_proposed(options, tdse);
  std::printf("\nProposed DSE: %zu fitness evaluations, front size %zu\n",
              outcome.evaluations, outcome.front.size());
  std::printf("%-18s %-22s\n", "makespan (us)", "app error probability");
  for (const auto& point : outcome.front) {
    std::printf("%-18.1f %-22.5f\n", point[0], point[1]);
  }
  return 0;
}
