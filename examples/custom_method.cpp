// Extensibility example: plugging custom reliability methods into the
// framework — the paper's GenM / GenD / GenT generic methods with tunable
// parameters, plus a fully hand-rolled catalog.
//
// The example
//   1. builds a CLR space from generic methods swept over their tuning
//      parameters,
//   2. runs task-level DSE to see which tunings survive Pareto filtering,
//   3. compares two application-software methods head-to-head through the
//      Markov models (checksum vs code tripling as the fault rate grows).
#include <cstdio>

#include "core/tdse.hpp"
#include "platform/architecture.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "reliability/methods.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using namespace clrearly;

/// A CLR space built entirely from the paper's generic tunable methods:
/// GenM masking sweeps, GenD detection-only and GenT tolerance variants.
reliability::ClrSpace generic_space() {
  std::vector<reliability::HwMethod> hw;
  hw.push_back({.name = "HW:none"});
  // GenM: masking from cheap-and-weak to strong-and-expensive.
  hw.push_back(reliability::gen_masking(0.30, 0.02, 0.20));
  hw.push_back(reliability::gen_masking(0.60, 0.05, 0.60));
  hw.push_back(reliability::gen_masking(0.85, 0.10, 1.20));

  std::vector<reliability::SswMethod> ssw;
  ssw.push_back({.name = "SSW:none"});
  // GenD: detection only (flags errors, cannot repair).
  ssw.push_back(reliability::gen_detection(0.95, 0.04));
  // GenT: detection + rollback with 1..3 checkpoint intervals.
  ssw.push_back(reliability::gen_tolerance(0.90, 0.97, 1, 0.04, 0.03, 0.0));
  ssw.push_back(reliability::gen_tolerance(0.90, 0.97, 2, 0.04, 0.03, 0.05));
  ssw.push_back(reliability::gen_tolerance(0.90, 0.97, 3, 0.04, 0.03, 0.05));

  std::vector<reliability::AswMethod> asw;
  asw.push_back({.name = "ASW:none"});
  asw.push_back({.name = "ASW:gen-light",
                 .masking = 0.50,
                 .time_factor = 1.08,
                 .power_factor = 1.03});
  asw.push_back({.name = "ASW:gen-heavy",
                 .masking = 0.92,
                 .time_factor = 2.60,
                 .power_factor = 1.10});

  return reliability::ClrSpace(std::move(hw), std::move(ssw), std::move(asw));
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("custom_method", "plugging custom reliability methods into the framework");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }

  // ---- 1+2: task-level DSE over the generic-method space --------------
  reliability::FaultEnvironment env;
  env.dvfs_sensitivity = 1.2;
  env.environment_factor = 10.0;
  const reliability::TaskAnalyzer analyzer(generic_space(), env,
                                           reliability::ThermalModel{},
                                           reliability::ArrheniusAging{});
  const platform::Architecture arch = platform::Architecture::paper_default();

  reliability::BaseImpl kernel;
  kernel.name = "fir-filter";
  kernel.target = platform::PeClass::kEmbeddedProcessor;
  kernel.base_exec_time_us = 800.0;
  kernel.base_power_w = 0.42;

  const core::Tdse tdse(analyzer);
  const core::TdseResult result =
      tdse.run({kernel}, arch, core::TdseObjectives::tdse_run(1));

  std::printf("generic-method space: %zu configurations evaluated, %zu on "
              "the Pareto front\n\n",
              result.enumerated.size(), result.pareto.size());
  std::printf("%-48s %10s %10s\n", "surviving configuration",
              "AvgExT(us)", "ErrProb");
  for (const auto& point : result.pareto) {
    std::printf("%-48s %10.1f %10.6f\n",
                (analyzer.space().describe(point.config) + " @pe" +
                 std::to_string(point.pe_type))
                    .c_str(),
                point.metrics.avg_exec_time_us, point.metrics.error_prob);
  }

  // ---- 3: method duel through the raw Markov models ----------------------
  std::printf("\nchecksum vs code tripling as the fault rate grows:\n");
  std::printf("%-12s %14s %14s %14s %14s\n", "lambda(/us)", "chksum ExT",
              "chksum Err", "triple ExT", "triple Err");
  for (double lambda : {1e-5, 1e-4, 5e-4, 2e-3}) {
    reliability::ClrChainParams checksum;
    checksum.exec_time_us = 800.0 * 1.12;  // checksum time factor
    checksum.lambda_per_us = lambda;
    checksum.asw_masking = 0.60;
    const auto a = reliability::analyze_clr_chain(checksum);

    reliability::ClrChainParams tripling;
    tripling.exec_time_us = 800.0 * 3.15;  // tripling time factor
    tripling.lambda_per_us = lambda;
    tripling.asw_masking = 0.94;
    const auto b = reliability::analyze_clr_chain(tripling);

    std::printf("%-12.0e %14.1f %14.6f %14.1f %14.6f\n", lambda,
                a.avg_exec_time_us, a.error_prob, b.avg_exec_time_us,
                b.error_prob);
  }
  std::printf(
      "\n(code tripling holds its error advantage but pays ~3x time at every "
      "fault rate —\n exactly the trade-off the system-level DSE arbitrates "
      "per task)\n");
  return 0;
}
