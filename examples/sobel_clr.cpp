// Domain example: CLR-aware design of the Sobel edge-detection pipeline for
// two operating environments — ground level and high altitude (the paper's
// motivating scenario: at altitude the SEU flux is orders of magnitude
// higher, so hardware-only protection stops being enough).
//
// For each environment the example:
//   1. runs the proposed DSE under a 99.5% functional-reliability floor and
//      a frame-deadline constraint,
//   2. prints the Pareto front,
//   3. picks the fastest feasible design and shows, per task, which
//      implementation / PE / cross-layer configuration was chosen, plus the
//      realized schedule as a text Gantt chart.
#include <algorithm>
#include <cstdio>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "platform/architecture.hpp"
#include "sched/timeline.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using namespace clrearly;

reliability::TaskAnalyzer analyzer_for_environment(double flux_factor) {
  reliability::FaultEnvironment env;
  env.dvfs_sensitivity = 1.2;
  env.environment_factor = flux_factor;
  return reliability::TaskAnalyzer(reliability::ClrSpace::paper_default(), env,
                                   reliability::ThermalModel{},
                                   reliability::ArrheniusAging{});
}

void design_for(const char* label, double flux_factor) {
  std::printf("==== %s (environment factor %.0fx) ====\n", label,
              flux_factor);

  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer =
      analyzer_for_environment(flux_factor);
  const core::DseMethodology dse(sobel, arch, analyzer);

  core::DseOptions options;
  options.ga.population_size = 80;
  options.ga.generations = 60;
  options.seed = 7;
  options.spec.min_functional_rel = 0.995;   // at most 0.5% frame error rate
  options.spec.max_makespan_us = 5000.0;     // frame deadline

  const core::DseOutcome outcome = dse.run_proposed(options);
  if (outcome.front.empty()) {
    std::printf("no design meets the QoS spec in this environment\n\n");
    return;
  }

  std::printf("Pareto front (%zu designs):\n", outcome.front.size());
  std::printf("  %-16s %-12s\n", "makespan (us)", "error prob");
  std::vector<std::size_t> order(outcome.front.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return outcome.front[a][0] < outcome.front[b][0];
  });
  for (std::size_t i : order) {
    std::printf("  %-16.1f %-12.6f\n", outcome.front[i][0],
                outcome.front[i][1]);
  }

  // Inspect the fastest feasible design.
  const std::size_t fastest = order.front();
  const core::ClrMappingProblem problem(sobel, arch, analyzer,
                                        options.objectives, options.spec);
  const auto choices = problem.report(outcome.front_genomes[fastest]);
  std::printf("\nfastest design, per-task choices:\n");
  for (const auto& c : choices) {
    std::printf("  %-9s -> %-12s on PE%zu (%s)  %s\n", c.task_name.c_str(),
                c.impl_name.c_str(), c.pe, c.pe_type_name.c_str(),
                c.config_text.c_str());
    std::printf("             AvgExT %.1f us, ErrProb %.5f, %.2f W\n",
                c.metrics.avg_exec_time_us, c.metrics.error_prob,
                c.metrics.avg_power_w);
  }

  sched::Schedule schedule;
  const auto decisions = problem.decode(outcome.front_genomes[fastest]);
  sched::estimate_qos(sobel, arch, decisions,
                      outcome.front_genomes[fastest].order, &schedule);
  std::printf("%s\n",
              sched::gantt_chart(schedule, sobel.graph, arch.num_pes())
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("sobel_clr", "CLR-aware Sobel design at ground level and high altitude");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  design_for("Ground level", 1.0);
  design_for("High altitude", 50.0);
  return 0;
}
