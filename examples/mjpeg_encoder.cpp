// MJPEG encoder under a frame deadline: criticality-driven protection and
// timing reliability.
//
// The encoder mixes error-tolerant pixel stages with error-critical entropy
// stages. This example runs the proposed DSE under a functional-reliability
// floor, then analyses the fastest design:
//   * which stages received cross-layer protection (it should concentrate
//     on the entropy end of the pipeline),
//   * the makespan *distribution* (mean + critical-path spread) and the
//     probability of missing the 30 fps frame deadline,
//   * the platform's mission reliability over a one-year deployment.
#include <cstdio>

#include "app/mjpeg.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("mjpeg_encoder", "MJPEG encoder DSE under a frame deadline");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  using namespace clrearly;

  const app::Application mjpeg = app::make_mjpeg_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer = core::bench_system_analyzer();

  core::DseOptions options;
  options.ga.population_size = 80;
  options.ga.generations = 50;
  options.seed = 23;
  options.spec.min_functional_rel = 0.995;

  const core::DseMethodology dse(mjpeg, arch, analyzer);
  const core::DseOutcome outcome = dse.run_proposed(options);
  if (outcome.front.empty()) {
    std::printf("no feasible design under the reliability floor\n");
    return 1;
  }

  std::size_t fastest = 0;
  for (std::size_t i = 1; i < outcome.front.size(); ++i) {
    if (outcome.front[i][0] < outcome.front[fastest][0]) fastest = i;
  }

  const core::ClrMappingProblem problem(mjpeg, arch, analyzer,
                                        options.objectives, options.spec);
  const core::MappingGenome& genome = outcome.front_genomes[fastest];

  std::printf("fastest feasible encoder design (front of %zu):\n\n",
              outcome.front.size());
  std::printf("%-11s %-10s %-22s %-38s %9s\n", "task", "PE", "impl",
              "CLR configuration", "ErrProb");
  for (const auto& c : problem.report(genome)) {
    std::printf("%-11s PE%-8zu %-22s %-38s %9.5f\n", c.task_name.c_str(),
                c.pe, c.impl_name.c_str(), c.config_text.c_str(),
                c.metrics.error_prob);
  }

  const sched::QosMetrics qos = problem.qos(genome);
  const double frame_deadline_us = mjpeg.period_us;  // 30 fps budget
  std::printf("\nper-frame timing: mean %.1f us, spread (sigma) %.1f us\n",
              qos.makespan_us, qos.makespan_stddev_us);
  for (double deadline : {0.8 * frame_deadline_us, frame_deadline_us}) {
    std::printf("  P[frame > %.0f us] = %.3e\n", deadline,
                sched::deadline_miss_probability(qos, deadline));
  }

  const auto decisions = problem.decode(genome);
  std::printf("\nlifetime: Lapp (min PE MTTF) = %.0f hours\n", qos.mttf_hours);
  for (double years : {0.5, 1.0, 2.0}) {
    const double hours = years * 24.0 * 365.0;
    std::printf("  mission reliability over %.1f years: %.4f\n", years,
                sched::mission_reliability(mjpeg, arch, decisions, hours));
  }
  return 0;
}
