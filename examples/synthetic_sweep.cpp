// Scalability example: how the three DSE flows behave as the application
// grows (the paper's TABLE VI setting, condensed).
//
// For synthetic applications of 10..60 tasks this example runs fcCLR, pfCLR
// and the proposed two-stage flow with an identical GA configuration, then
// reports front sizes, hypervolumes against a shared reference point,
// fitness-evaluation counts and wall-clock time — the data a designer needs
// to pick a flow for a given problem size.
#include <chrono>
#include <cstdio>

#include "app/characterizer.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using namespace clrearly;

struct FlowResult {
  core::DseOutcome outcome;
  double seconds = 0.0;
};

template <typename Fn>
FlowResult timed(Fn&& flow) {
  const auto begin = std::chrono::steady_clock::now();
  FlowResult result;
  result.outcome = flow();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("synthetic_sweep", "synthetic application sweep over sizes");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  const platform::Architecture arch = platform::Architecture::paper_default();

  std::printf("%-7s %-10s %8s %8s %8s %9s %9s %7s %7s %7s\n", "#tasks",
              "flow", "front", "evals", "time(s)", "hv", "vs fcCLR", "fast",
              "slow", "minerr");

  for (std::size_t tasks : {10, 20, 40, 60}) {
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, 500 + tasks);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    core::DseOptions options = core::bench_options(/*seed=*/21);
    options.ga.population_size = 80;
    options.ga.generations = 40;

    const auto tdse = dse.run_tdse(options);
    FlowResult fc = timed([&] { return dse.run_fcclr(options); });
    FlowResult pf = timed([&] { return dse.run_pfclr(options, tdse); });
    FlowResult prop = timed([&] { return dse.run_proposed(options, tdse); });

    const auto ref = moea::common_reference(
        {fc.outcome.front, pf.outcome.front, prop.outcome.front});
    const double hv_fc = moea::hypervolume(fc.outcome.front, ref);

    const struct {
      const char* name;
      const FlowResult* run;
    } flows[] = {{"fcCLR", &fc}, {"pfCLR", &pf}, {"proposed", &prop}};

    for (const auto& [name, run] : flows) {
      const auto& front = run->outcome.front;
      const double hv = moea::hypervolume(front, ref);
      double fast = 0.0, slow = 0.0, minerr = 1.0;
      if (!front.empty()) {
        fast = slow = front[0][0];
        for (const auto& p : front) {
          fast = std::min(fast, p[0]);
          slow = std::max(slow, p[0]);
          minerr = std::min(minerr, p[1]);
        }
      }
      std::printf("%-7zu %-10s %8zu %8zu %8.2f %9.3g %+8.0f%% %7.0f %7.0f %7.4f\n",
                  tasks, name, front.size(), run->outcome.evaluations,
                  run->seconds, hv,
                  hv_fc > 0.0 ? 100.0 * (hv - hv_fc) / hv_fc : 0.0, fast,
                  slow, minerr);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading guide: 'vs fcCLR' is the hypervolume gain over the\n"
      "problem-agnostic baseline; the proposed flow pays roughly the pfCLR +\n"
      "fcCLR evaluation budget and should dominate both, increasingly so for\n"
      "larger applications.\n");
  return 0;
}
