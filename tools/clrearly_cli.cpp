// clrearly — command-line front end to the CL(R)Early toolchain.
//
//   clrearly generate --tasks 30 --types 10 --seed 5 --out app.json
//       Generate a TGFF-style synthetic application and save it.
//
//   clrearly info --app sobel [--dot graph.dot]
//       Summarize a model; optionally export the task graph as Graphviz.
//
//   clrearly tdse --app sobel --objectives 2 [--csv points.csv]
//       Task-level DSE: Pareto-filter every task type's configuration space.
//
//   clrearly dse --app synthetic:20 --flow proposed --min-frel 0.99
//                [--env 20] [--pop 100] [--gens 60] [--csv front.csv]
//                [--report] [--gantt]
//       System-level DSE with any of the paper's flows
//       (fcclr | pfclr | proposed | agnostic), or the permanent-fault
//       k-resilient flow (kresilient, with --k / --mission-hours).
//
// Application specs: "sobel", "mjpeg", "synthetic:<tasks>[:<seed>]", or a .json path
// (io/serialize format). Architecture specs: "default" or a .json path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/characterizer.hpp"
#include "app/dot.hpp"
#include "app/mjpeg.hpp"
#include "app/sobel.hpp"
#include "core/baselines.hpp"
#include "core/feasibility.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "reliability/fault_injection.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/sim_bridge.hpp"
#include "sim/validate.hpp"
#include "io/serialize.hpp"
#include "moea/hypervolume.hpp"
#include "moea/island.hpp"
#include "platform/architecture.hpp"
#include "sched/timeline.hpp"
#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/cpu_features.hpp"
#include "util/observability.hpp"
#include "util/signal_guard.hpp"
#include "util/thread_pool.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

// The full argv of the process, stashed by main() so the run manifest can
// record the complete invocation (subcommand included), not just the
// subcommand's argument slice.
int g_argc = 0;
char** g_argv = nullptr;

/// Shared option prologue of every subcommand: --help, --threads, the
/// cache options and --metrics-out/--trace-out.
void declare_common(util::ArgParser& parser) {
  parser.flag("help", "show this help");
  util::add_threads_option(parser);
  util::add_cache_options(parser);
  util::add_island_options(parser);
  util::add_observability_options(parser);
}

/// Parse and apply the common options. Returns false when --help was
/// requested (the help text has then already been printed; return 0).
bool apply_common(util::ArgParser& parser,
                  const std::vector<std::string>& args) {
  parser.parse(args);
  if (parser.has("help")) {
    std::printf("%s", parser.help().c_str());
    return false;
  }
  if (parser.has("threads")) {
    util::set_thread_count(parser.get_uint("threads"));
  }
  util::apply_cache_options(parser);
  util::apply_observability_options(parser, g_argc, g_argv);
  return true;
}

// Spec-string resolution lives in the library (io/serialize, core/scenario)
// so the serve daemon's wire format and the CLI accept the same spellings
// and build bit-identical models.
app::Application resolve_app(const std::string& spec) {
  return io::resolve_application(spec);
}

platform::Architecture resolve_arch(const std::string& spec) {
  return io::resolve_architecture(spec);
}

reliability::TaskAnalyzer resolve_analyzer(double env_factor) {
  return core::make_condition_analyzer(env_factor);
}

int cmd_generate(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly generate",
                         "generate a synthetic application model");
  declare_common(parser);
  parser.option("tasks", "number of tasks", "20")
      .option("types", "number of task types", "10")
      .option("seed", "generator seed", "1")
      .option("out", "output JSON path", "app.json");
  if (!apply_common(parser, args)) return 0;

  const app::Application syn = app::make_synthetic_application(
      parser.get_uint("tasks"), parser.get_uint("types"),
      parser.get_uint("seed"));
  io::save_application(parser.get("out"), syn);
  std::printf("wrote %s: %zu tasks, %zu types, %zu edges\n",
              parser.get("out").c_str(), syn.graph.num_tasks(),
              syn.graph.num_types(), syn.graph.num_edges());
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly info", "summarize a system model");
  declare_common(parser);
  parser.option("app", "application spec", "sobel")
      .option("arch", "architecture spec", "default")
      .option("dot", "write the task graph as Graphviz DOT to this path", "");
  if (!apply_common(parser, args)) return 0;

  const app::Application application = resolve_app(parser.get("app"));
  const platform::Architecture arch = resolve_arch(parser.get("arch"));

  std::printf("application %s: %zu tasks, %zu types, %zu edges, period %.0f us\n",
              application.name.c_str(), application.graph.num_tasks(),
              application.graph.num_types(), application.graph.num_edges(),
              application.period_us);
  std::printf("  critical path: %zu tasks\n",
              application.graph.critical_path_length());
  for (std::size_t type = 0; type < application.impls.size(); ++type) {
    std::printf("  type %zu: %zu implementation(s)\n", type,
                application.impls[type].size());
  }
  std::printf("architecture: %zu PEs, %zu types\n", arch.num_pes(),
              arch.num_types());
  for (std::size_t t = 0; t < arch.num_types(); ++t) {
    const platform::PeType& type = arch.type(t);
    std::printf("  %-16s %-20s masking %.2f, beta %.1f, %zu DVFS mode(s), "
                "%zu instance(s)\n",
                type.name.c_str(), to_string(type.pe_class).c_str(),
                type.masking_factor, type.weibull_beta, type.dvfs.size(),
                arch.pes_of_type(t).size());
  }
  if (arch.interconnect().models_communication()) {
    std::printf("  interconnect: %.2f KB/us, %.2f us latency\n",
                arch.interconnect().bandwidth_kb_per_us,
                arch.interconnect().latency_us);
  }

  if (!parser.get("dot").empty()) {
    std::ofstream out(parser.get("dot"));
    app::write_dot(out, application.graph, application.name);
    std::printf("wrote %s\n", parser.get("dot").c_str());
  }
  return 0;
}

int cmd_tdse(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly tdse", "task-level design-space exploration");
  declare_common(parser);
  parser.option("app", "application spec", "sobel")
      .option("arch", "architecture spec", "default")
      .option("objectives", "TABLE IV ladder row (1-6)", "2")
      .option("env", "environmental fault-rate factor", "1")
      .option("csv", "write Pareto points to this CSV", "");
  if (!apply_common(parser, args)) return 0;

  const app::Application application = resolve_app(parser.get("app"));
  const platform::Architecture arch = resolve_arch(parser.get("arch"));
  const core::Tdse tdse(resolve_analyzer(parser.get_number("env")));
  const core::TdseObjectives objectives = core::TdseObjectives::table4_row(
      static_cast<int>(parser.get_uint("objectives")));

  const auto results = tdse.run_application(application, arch, objectives);
  util::TextTable table;
  table.header({"type", "enumerated", "pareto"});
  for (std::size_t type = 0; type < results.size(); ++type) {
    table.row(type, results[type].enumerated.size(),
              results[type].pareto.size());
  }
  table.print(std::cout);

  if (!parser.get("csv").empty()) {
    util::CsvWriter csv(parser.get("csv"));
    csv.row({"type", "impl", "pe_type", "hw", "ssw", "asw", "dvfs",
             "avg_exec_time_us", "err_prob", "mttf_hours", "power_w"});
    for (std::size_t type = 0; type < results.size(); ++type) {
      for (const core::TaskDesignPoint& p : results[type].pareto) {
        csv.field(type)
            .field(p.impl_index)
            .field(p.pe_type)
            .field(p.config.hw)
            .field(p.config.ssw)
            .field(p.config.asw)
            .field(p.config.dvfs)
            .field(p.metrics.avg_exec_time_us)
            .field(p.metrics.error_prob)
            .field(p.metrics.mttf_hours)
            .field(p.metrics.avg_power_w);
        csv.end_row();
      }
    }
    std::printf("wrote %s\n", parser.get("csv").c_str());
  }
  return 0;
}

int cmd_dse(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly dse", "system-level CLR-aware task mapping");
  declare_common(parser);
  parser.option("app", "application spec", "sobel")
      .option("arch", "architecture spec", "default")
      .option("flow", "fcclr | pfclr | proposed | agnostic | kresilient",
              "proposed")
      .option("pop", "GA population size", "100")
      .option("gens", "GA generations", "60")
      .option("seed", "GA seed", "1")
      .option("env", "environmental fault-rate factor", "1")
      .option("min-frel", "minimum functional reliability (0 disables)", "0")
      .option("max-makespan", "makespan limit in us (0 disables)", "0")
      .option("k", "kresilient: tolerated PE failures", "1")
      .option("mission-hours", "kresilient: mission time for the Weibull "
              "failure probabilities", "20000")
      .option("csv", "write the front to this CSV", "")
      .flag("report", "print per-task choices of the fastest design")
      .flag("gantt", "print the fastest design's schedule");
  if (!apply_common(parser, args)) return 0;

  const app::Application application = resolve_app(parser.get("app"));
  const platform::Architecture arch = resolve_arch(parser.get("arch"));
  const reliability::TaskAnalyzer analyzer =
      resolve_analyzer(parser.get_number("env"));
  const core::DseMethodology dse(application, arch, analyzer);

  core::DseOptions options;
  options.ga.population_size = parser.get_uint("pop");
  options.ga.generations = parser.get_uint("gens");
  options.seed = parser.get_uint("seed");
  options.island = moea::island_params_from_args(parser);
  if (parser.get_number("min-frel") > 0.0) {
    options.spec.min_functional_rel = parser.get_number("min-frel");
  }
  if (parser.get_number("max-makespan") > 0.0) {
    options.spec.max_makespan_us = parser.get_number("max-makespan");
  }

  const std::string flow = parser.get("flow");
  core::DseOutcome outcome;
  if (flow == "fcclr") {
    outcome = dse.run_fcclr(options);
  } else if (flow == "pfclr") {
    outcome = dse.run_pfclr(options);
  } else if (flow == "proposed") {
    outcome = dse.run_proposed(options);
  } else if (flow == "agnostic") {
    const core::AgnosticOutcome agnostic = core::run_agnostic(dse, options);
    outcome.front = agnostic.combined_front;
    outcome.evaluations = agnostic.evaluations;
  } else if (flow == "kresilient") {
    options.resilience.max_failures = parser.get_uint("k");
    options.resilience.mission_hours = parser.get_number("mission-hours");
    options.resilience.degraded_spec = options.spec;
    outcome = dse.run_kresilient(options);
  } else {
    std::fprintf(stderr, "unknown flow '%s'\n", flow.c_str());
    return 2;
  }

  std::printf("%s: %zu front points, %zu evaluations\n", flow.c_str(),
              outcome.front.size(), outcome.evaluations);
  util::TextTable table;
  table.header({"makespan (us)", "error prob"});
  std::size_t fastest = 0;
  for (std::size_t i = 0; i < outcome.front.size(); ++i) {
    table.row(outcome.front[i][0], outcome.front[i][1]);
    if (outcome.front[i][0] < outcome.front[fastest][0]) fastest = i;
  }
  table.print(std::cout);

  if (!parser.get("csv").empty()) {
    util::CsvWriter csv(parser.get("csv"));
    csv.row({"avg_makespan_us", "app_error_prob"});
    for (const auto& p : outcome.front) {
      csv.field(p[0]).field(p[1]);
      csv.end_row();
    }
    std::printf("wrote %s\n", parser.get("csv").c_str());
  }

  if ((parser.has("report") || parser.has("gantt")) &&
      !outcome.front_genomes.empty()) {
    const core::ClrMappingProblem problem(application, arch, analyzer,
                                          options.objectives, options.spec);
    if (parser.has("report")) {
      for (const auto& c : problem.report(outcome.front_genomes[fastest])) {
        std::printf("%-12s -> %-14s on PE%zu (%s)  %s\n", c.task_name.c_str(),
                    c.impl_name.c_str(), c.pe, c.pe_type_name.c_str(),
                    c.config_text.c_str());
      }
    }
    if (parser.has("gantt")) {
      sched::Schedule schedule;
      sched::estimate_qos(application, arch,
                          problem.decode(outcome.front_genomes[fastest]),
                          outcome.front_genomes[fastest].order, &schedule);
      std::printf("%s", sched::gantt_chart(schedule, application.graph,
                                           arch.num_pes())
                            .c_str());
    }
  }
  return 0;
}


int cmd_simulate(const std::vector<std::string>& args) {
  util::ArgParser parser(
      "clrearly simulate",
      "Monte Carlo schedule simulation of a DSE flow's Pareto front");
  declare_common(parser);
  parser.option("app", "application spec", "sobel")
      .option("arch", "architecture spec", "default")
      .option("flow", "fcclr | pfclr | proposed", "proposed")
      .option("pop", "GA population size", "60")
      .option("gens", "GA generations", "30")
      .option("seed", "GA seed", "1")
      .option("env", "environmental fault-rate factor", "1")
      .option("trials", "Monte Carlo trials per design point", "10000")
      .option("sim-seed", "simulator seed", "7")
      .option("points", "max front points to simulate (0 = all)", "0")
      .option("deadline", "deadline in us for miss accounting (0 disables)",
              "0")
      .option("csv", "write the comparison report to this CSV", "");
  if (!apply_common(parser, args)) return 0;

  const app::Application application = resolve_app(parser.get("app"));
  const platform::Architecture arch = resolve_arch(parser.get("arch"));
  const reliability::TaskAnalyzer analyzer =
      resolve_analyzer(parser.get_number("env"));
  const core::DseMethodology dse(application, arch, analyzer);

  core::DseOptions options;
  options.ga.population_size = parser.get_uint("pop");
  options.ga.generations = parser.get_uint("gens");
  options.seed = parser.get_uint("seed");
  options.island = moea::island_params_from_args(parser);

  // Run the flow and build a problem in the *same encoding* as the returned
  // genomes (pfCLR fronts decode against the pfCLR problem over the same
  // tDSE points; fcclr and proposed fronts are full-configuration genomes).
  const std::string flow = parser.get("flow");
  core::DseOutcome outcome;
  std::unique_ptr<core::ClrMappingProblem> problem;
  if (flow == "fcclr" || flow == "proposed") {
    outcome = flow == "fcclr" ? dse.run_fcclr(options)
                              : dse.run_proposed(options);
    problem = std::make_unique<core::ClrMappingProblem>(
        application, arch, analyzer, options.objectives, options.spec);
  } else if (flow == "pfclr") {
    const std::vector<core::TdseResult> tdse = dse.run_tdse(options);
    outcome = dse.run_pfclr(options, tdse);
    std::vector<std::vector<core::TaskDesignPoint>> points;
    points.reserve(tdse.size());
    for (const core::TdseResult& r : tdse) points.push_back(r.pareto);
    problem = std::make_unique<core::ClrMappingProblem>(
        application, arch, analyzer, options.objectives, options.spec,
        std::move(points));
  } else {
    std::fprintf(stderr, "unknown flow '%s'\n", flow.c_str());
    return 2;
  }
  if (outcome.front_genomes.empty()) {
    std::fprintf(stderr, "flow produced no feasible front points\n");
    return 1;
  }

  sim::SimOptions sim_options;
  sim_options.trials = parser.get_uint("trials");
  sim_options.seed = parser.get_uint("sim-seed");
  sim_options.deadline_us = parser.get_number("deadline");
  std::size_t count = outcome.front_genomes.size();
  if (parser.get_uint("points") > 0) {
    count = std::min<std::size_t>(count, parser.get_uint("points"));
  }

  sim::ValidationReport report;
  for (std::size_t i = 0; i < count; ++i) {
    const core::MappingGenome& genome = outcome.front_genomes[i];
    const sched::QosMetrics analytic = problem->qos(genome);
    const sim::SimResult simulated =
        core::simulate_design_point(*problem, genome, sim_options);
    report.rows.push_back(sim::compare_design_point(
        flow + "#" + std::to_string(i), analytic, simulated));
  }

  util::TextTable table;
  table.header({"point", "makespan an/sim (us)", "delta", "ok",
                "err prob an/sim", "ok"});
  char buffer[64];
  for (const sim::ValidationRow& row : report.rows) {
    std::snprintf(buffer, sizeof buffer, "%.1f / %.1f",
                  row.analytic.makespan_us, row.simulated.makespan_mean_us);
    const std::string makespans = buffer;
    std::snprintf(buffer, sizeof buffer, "%.4g / %.4g",
                  row.analytic.error_prob, row.simulated.error_prob);
    table.row(row.label, makespans, row.makespan_delta_us,
              row.makespan_agrees ? "yes" : "NO", std::string(buffer),
              row.error_agrees ? "yes" : "NO");
  }
  table.print(std::cout);
  std::printf(
      "agreement: makespan %.0f%%, error prob %.0f%% (%zu points, %zu "
      "trials each)\n",
      100.0 * report.makespan_agreement(), 100.0 * report.error_agreement(),
      report.rows.size(), sim_options.trials);

  if (!parser.get("csv").empty()) {
    sim::write_validation_csv(parser.get("csv"), report);
    std::printf("wrote %s\n", parser.get("csv").c_str());
  }
  return 0;
}

int cmd_check(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly check",
                         "early-stage feasibility certificates (no GA)");
  declare_common(parser);
  parser.option("app", "application spec", "sobel")
      .option("arch", "architecture spec", "default")
      .option("env", "environmental fault-rate factor", "1")
      .option("min-frel", "minimum functional reliability (0 disables)", "0")
      .option("max-makespan", "makespan limit in us (0 disables)", "0");
  if (!apply_common(parser, args)) return 0;

  const app::Application application = resolve_app(parser.get("app"));
  const platform::Architecture arch = resolve_arch(parser.get("arch"));
  sched::QosSpec spec;
  if (parser.get_number("min-frel") > 0.0) {
    spec.min_functional_rel = parser.get_number("min-frel");
  }
  if (parser.get_number("max-makespan") > 0.0) {
    spec.max_makespan_us = parser.get_number("max-makespan");
  }

  const core::FeasibilityReport report = core::assess_feasibility(
      application, arch, resolve_analyzer(parser.get_number("env")), spec);

  util::TextTable table;
  table.header({"layer(s)", "max Fapp", "min makespan (us)",
                "Fapp floor ok", "deadline ok"});
  for (const auto& layer : report.layers) {
    table.row(layer.layer, layer.max_functional_rel, layer.min_makespan_us,
              layer.reliability_possible ? "yes" : "NO",
              layer.deadline_possible ? "yes" : "NO");
  }
  table.print(std::cout);
  std::printf("\nverdict: %s\n",
              report.possibly_feasible
                  ? "possibly feasible (bounds pass; run `clrearly dse`)"
                  : "INFEASIBLE (certified by mapping-independent bounds)");
  return report.possibly_feasible ? 0 : 3;
}


int cmd_export(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly export",
                         "write the built-in models as JSON files");
  declare_common(parser);
  parser.option("dir", "output directory", "models");
  if (!apply_common(parser, args)) return 0;
  const std::string dir = parser.get("dir");
  std::filesystem::create_directories(dir);
  io::save_architecture(dir + "/paper_platform.json",
                        platform::Architecture::paper_default());
  io::save_application(dir + "/sobel.json", app::make_sobel_application());
  io::save_application(dir + "/mjpeg.json", app::make_mjpeg_application());
  std::printf("wrote %s/{paper_platform,sobel,mjpeg}.json\n", dir.c_str());
  return 0;
}


int cmd_chain(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly chain",
                         "evaluate one CLR configuration through the Fig. 3 "
                         "Markov models");
  declare_common(parser);
  parser.option("exec-time", "useful execution time (us)", "1000")
      .option("lambda", "effective SEU rate (/us)", "3e-4")
      .option("hw-masking", "spatial-redundancy masking m_HW", "0")
      .option("impl-masking", "implicit SSW masking", "0")
      .option("coverage", "detection coverage cov_Det", "0")
      .option("tolerance", "tolerance success m_Tol", "0")
      .option("asw-masking", "information-redundancy masking m_ASW", "0")
      .option("intervals", "inter-checkpoint intervals", "1")
      .option("det-time", "detection time per interval (us)", "0")
      .option("tol-time", "tolerance/rollback time (us)", "0")
      .option("chk-time", "checkpoint time (us)", "0")
      .option("chk-err", "checkpoint corruption probability", "0")
      .flag("validate", "cross-check with 100k fault-injection runs")
      .flag("sweep", "also sweep 1..10 intervals for the optimal count");
  if (!apply_common(parser, args)) return 0;

  reliability::ClrChainParams params;
  params.exec_time_us = parser.get_number("exec-time");
  params.lambda_per_us = parser.get_number("lambda");
  params.hw_masking = parser.get_number("hw-masking");
  params.implicit_ssw_masking = parser.get_number("impl-masking");
  params.detection_coverage = parser.get_number("coverage");
  params.tolerance_success = parser.get_number("tolerance");
  params.asw_masking = parser.get_number("asw-masking");
  params.intervals = parser.get_uint("intervals");
  params.detection_time_us = parser.get_number("det-time");
  params.tolerance_time_us = parser.get_number("tol-time");
  params.checkpoint_time_us = parser.get_number("chk-time");
  params.checkpoint_error_prob = parser.get_number("chk-err");

  const reliability::ClrChainAnalysis analysis =
      reliability::analyze_clr_chain(params);
  std::printf("min execution time : %.3f us\n", analysis.min_exec_time_us);
  std::printf("avg execution time : %.3f us\n", analysis.avg_exec_time_us);
  std::printf("time spread (sigma): %.3f us\n", analysis.exec_time_stddev_us);
  std::printf("error probability  : %.6g\n", analysis.error_prob);

  if (parser.has("validate")) {
    const reliability::InjectionResult sim =
        reliability::inject_faults(params, 100000, 42);
    std::printf("fault injection    : avg time %.3f us, error rate %.6g "
                "(%zu runs, %.2f faults/run)\n",
                sim.mean_exec_time_us, sim.error_rate, sim.trials,
                sim.mean_faults_injected);
  }
  if (parser.has("sweep")) {
    const auto sweep = reliability::optimize_checkpoint_intervals(params, 10);
    std::printf("optimal intervals  : %zu (avg time %.3f us)\n",
                sweep.best_intervals, sweep.best_avg_time_us);
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  util::ArgParser parser("clrearly serve",
                         "run the DSE-as-a-service HTTP daemon");
  declare_common(parser);
  parser.option("host", "listen address", "127.0.0.1")
      .option("port", "listen port (0 = pick an ephemeral port)", "8080")
      .option("workers", "concurrent DSE jobs", "2")
      .option("queue-depth", "max waiting jobs before 429", "16")
      .option("max-sessions", "model sessions kept warm (LRU)", "8")
      .option("spool", "spool job specs/results into this directory", "")
      .option("port-file", "write the bound port to this file once listening",
              "")
      .option("journal-compact-bytes",
              "journal size that triggers compaction (0 = never)", "1048576")
      .option("quota-rate",
              "per-client submissions/second before 429 (0 = no quotas)", "0")
      .option("quota-burst", "per-client submission burst allowance", "8")
      .option("keepalive-requests",
              "max requests served per keep-alive connection", "100")
      .option("idle-timeout-ms",
              "keep-alive idle timeout between requests", "5000");
  if (!apply_common(parser, args)) return 0;

  server::ServiceOptions service_options;
  service_options.workers = parser.get_uint("workers");
  service_options.queue_depth = parser.get_uint("queue-depth");
  service_options.max_sessions = parser.get_uint("max-sessions");
  service_options.spool_dir = parser.get("spool");
  service_options.journal_compact_bytes =
      parser.get_uint("journal-compact-bytes");
  service_options.quota_rate = parser.get_number("quota-rate");
  service_options.quota_burst = parser.get_number("quota-burst");
  server::DseService service(service_options);

  server::ServerOptions server_options;
  server_options.host = parser.get("host");
  server_options.port = static_cast<int>(parser.get_uint("port"));
  server_options.max_requests_per_connection =
      parser.get_uint("keepalive-requests");
  server_options.idle_timeout_ms =
      static_cast<int>(parser.get_uint("idle-timeout-ms"));
  server::HttpServer http(service, server_options);

  // A daemon drains on SIGINT/SIGTERM instead of dying mid-job; this
  // overrides the kFlushAndExit handler the common options may have
  // installed (the drain path below flushes via the normal exit hooks).
  util::install_signal_handlers(util::SignalMode::kNotifyOnly);

  http.start();
  std::printf("clrearly serve: listening on %s:%d (workers %zu, queue %zu)\n",
              server_options.host.c_str(), http.port(),
              service_options.workers, service_options.queue_depth);
  std::fflush(stdout);
  if (!parser.get("port-file").empty()) {
    std::ofstream out(parser.get("port-file"));
    out << http.port() << '\n';
  }

  while (!service.shutdown_requested() && !util::termination_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("clrearly serve: %s received, draining\n",
              service.shutdown_requested() ? "shutdown request" : "signal");
  std::fflush(stdout);
  http.stop();             // stop accepting connections
  service.shutdown(true);  // cancel queued jobs, drain running ones
  std::printf("clrearly serve: drained, exiting\n");
  return 0;
}

int cmd_version(const std::vector<std::string>&) {
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::printf("clrearly (CL(R)Early reference implementation)\n");
  std::printf("  build        : %s, C++%ld\n", build_type,
              __cplusplus / 100 % 100);
  std::printf("  wire format  : v%d\n", io::kWireFormatVersion);
  std::printf("  simd detected: %s\n",
              util::to_string(util::detected_simd_level()));
  std::printf("  simd active  : %s\n",
              util::to_string(util::active_simd_level()));
  return 0;
}

void print_usage() {
  std::printf(
      "clrearly — cross-layer reliability-aware early-stage DSE\n\n"
      "usage: clrearly <command> [options]\n\n"
      "commands:\n"
      "  generate   create a synthetic application model (JSON)\n"
      "  info       summarize an application/architecture (+DOT export)\n"
      "  tdse       task-level DSE with Pareto filtering\n"
      "  check      feasibility certificates for a QoS spec (no GA)\n"
      "  export     dump the built-in models as editable JSON\n"
      "  chain      Markov-model calculator for one CLR configuration\n"
      "  dse        system-level DSE (fcclr | pfclr | proposed | agnostic |\n"
      "             kresilient)\n"
      "  simulate   Monte Carlo schedule simulation of a flow's front\n"
      "  serve      DSE-as-a-service HTTP daemon (docs/SERVER.md)\n"
      "  version    build, SIMD and wire-format versions\n"
      "\nrun 'clrearly <command> --help' for per-command options\n");
}

}  // namespace

int main(int argc, char** argv) {
  g_argc = argc;
  g_argv = argv;
  util::set_log_level(util::LogLevel::Warn);
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "info") return cmd_info(args);
    if (command == "tdse") return cmd_tdse(args);
    if (command == "check") return cmd_check(args);
    if (command == "export") return cmd_export(args);
    if (command == "chain") return cmd_chain(args);
    if (command == "dse") return cmd_dse(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "version" || command == "--version") {
      return cmd_version(args);
    }
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
