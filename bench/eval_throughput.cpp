// Eval-throughput benchmark for the parallel evaluation engine and the
// memoization layer: NSGA-II fitness throughput (genomes/sec) and the dense
// Markov-table build of ClrMappingProblem, serial (1 thread) vs the
// configured thread count, and cached vs uncached at the configured thread
// count, on the paper's Sobel fcCLR problem. Emits BENCH_eval.json so the
// perf trajectory is tracked across PRs; docs/PERFORMANCE.md and
// docs/CACHING.md explain the fields. Serial/parallel and uncached/cached
// fronts are cross-checked — a speedup that changed the search would be a
// bug, not a result.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "util/cli.hpp"
#include "util/memo_cache.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Wall time of one fcCLR problem construction (dominated by
/// build_full_config_tables), best of `reps`.
double table_build_seconds(const app::Application& application,
                           const platform::Architecture& arch,
                           const reliability::TaskAnalyzer& analyzer,
                           int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const core::ClrMappingProblem problem(application, arch, analyzer,
                                          core::SystemObjectives{},
                                          sched::QosSpec{});
    best = std::min(best, seconds_since(start));
  }
  return best;
}

struct GaRun {
  double seconds = 0.0;
  std::size_t evaluations = 0;
  std::vector<moea::Objectives> front;
};

/// Throughput (genomes/sec) of raw fitness evaluation over a fixed genome
/// batch; best of `reps` passes. With a cache this measures the hit path
/// once warm. Work is dispatched in blocks so the pool's per-item claim
/// overhead (identical cached and uncached) doesn't dilute the evaluation
/// cost being compared.
double eval_batch_rate(const moea::Nsga2Ops<core::MappingGenome>& ops,
                       const std::vector<core::MappingGenome>& genomes,
                       std::vector<moea::Evaluation>& evals, int reps) {
  const std::size_t block = 64;
  const std::size_t blocks = (genomes.size() + block - 1) / block;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    util::parallel_for(blocks, [&](std::size_t b) {
      const std::size_t end = std::min(genomes.size(), (b + 1) * block);
      for (std::size_t i = b * block; i < end; ++i) {
        evals[i] = ops.evaluate(genomes[i]);
      }
    });
    best = std::min(best, seconds_since(start));
  }
  return static_cast<double>(genomes.size()) / best;
}

GaRun ga_run(const core::ClrMappingProblem& problem,
             const moea::Nsga2Params& params, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto start = Clock::now();
  const auto result = moea::run_nsga2(params, problem.ops(), rng);
  GaRun run;
  run.seconds = seconds_since(start);
  run.evaluations = result.evaluations;
  run.front = result.front_objectives();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_eval_throughput",
                       "NSGA-II fitness and Markov-table-build throughput, "
                       "serial vs parallel (emits BENCH_eval.json)");
  args.option("population", "GA population size", "100")
      .option("generations", "GA generations", "60")
      .option("seed", "GA seed", "11")
      .option("out", "output JSON path", "BENCH_eval.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  moea::Nsga2Params params;
  params.population_size = args.get_uint("population");
  params.generations = args.get_uint("generations");
  if (core::fast_mode()) {
    params.population_size = std::min<std::size_t>(params.population_size, 24);
    params.generations = std::min<std::size_t>(params.generations, 10);
  }
  const std::uint64_t seed = args.get_uint("seed");
  const std::size_t threads = util::effective_thread_count();
  // Capacity for the cached-vs-uncached section; --no-cache would make the
  // comparison degenerate, so fall back to the built-in default then.
  std::size_t cache_entries = util::cache_capacity();
  if (cache_entries == 0) cache_entries = util::kDefaultCacheCapacity;

  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer =
      reliability::TaskAnalyzer::paper_default();

  std::printf("=== eval throughput: sobel fcCLR, pop %zu x %zu generations ===\n",
              params.population_size, params.generations);
  std::printf("threads: serial 1 vs parallel %zu\n\n", threads);

  // ---- Markov-table build (ClrMappingProblem construction) ----
  // Thread-scaling sections run cache-off so they measure the pool, not the
  // memo layer; the cache section below measures the memo layer alone.
  util::set_cache_capacity(0);
  const int reps = core::fast_mode() ? 2 : 5;
  util::set_thread_count(1);
  const double table_serial = table_build_seconds(sobel, arch, analyzer, reps);
  util::set_thread_count(threads);
  const double table_parallel =
      table_build_seconds(sobel, arch, analyzer, reps);
  std::printf("table build: serial %.3f ms, %zu threads %.3f ms (%.2fx)\n",
              table_serial * 1e3, threads, table_parallel * 1e3,
              table_serial / table_parallel);

  // ---- NSGA-II fitness throughput ----
  util::set_thread_count(1);
  const core::ClrMappingProblem problem(sobel, arch, analyzer,
                                        core::SystemObjectives{},
                                        sched::QosSpec{});
  const GaRun serial = ga_run(problem, params, seed);
  util::set_thread_count(threads);
  const GaRun parallel = ga_run(problem, params, seed);

  // Fixed random genome batch for the raw evaluation-throughput sections:
  // whole-GA genomes/sec blends evaluation with the serial variation and
  // sorting phases, so the cache's effect on evaluation itself is measured
  // on this batch alone (dispatched through parallel_for, like a
  // generation's offspring).
  const std::size_t batch_size = core::fast_mode() ? 512 : 4096;
  std::vector<core::MappingGenome> batch;
  {
    util::Rng batch_rng(seed + 1);
    const auto ops = problem.ops();
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(ops.create(batch_rng));
    }
  }
  std::vector<moea::Evaluation> evals_uncached(batch.size());
  const double batch_uncached =
      eval_batch_rate(problem.ops(), batch, evals_uncached, reps);

  const double serial_rate = static_cast<double>(serial.evaluations) /
                             serial.seconds;
  const double parallel_rate = static_cast<double>(parallel.evaluations) /
                               parallel.seconds;
  const bool identical = serial.front == parallel.front &&
                         serial.evaluations == parallel.evaluations;
  std::printf(
      "nsga2: serial %.0f genomes/s, %zu threads %.0f genomes/s (%.2fx), "
      "%zu evaluations, fronts %s\n",
      serial_rate, threads, parallel_rate, parallel_rate / serial_rate,
      serial.evaluations, identical ? "identical" : "DIVERGED");

  // ---- Memoization: cached vs uncached at the configured thread count ----
  // The cache-off `parallel` run above is the uncached baseline. Switching
  // the capacity on rebuilds (clears) the global chain-solve cache, so the
  // first construction is a cold cached build and later ones are warm.
  util::set_cache_capacity(cache_entries);
  const auto cold_start = Clock::now();
  { const core::ClrMappingProblem warmup(sobel, arch, analyzer,
                                         core::SystemObjectives{},
                                         sched::QosSpec{}); }
  const double table_cold = seconds_since(cold_start);
  const double table_warm = table_build_seconds(sobel, arch, analyzer, reps);
  const core::ClrMappingProblem cached_problem(sobel, arch, analyzer,
                                               core::SystemObjectives{},
                                               sched::QosSpec{});
  // Cold: the first cached run pays every miss while it fills the cache.
  // Warm: the rerun (same seed, so the identical genome stream) finds every
  // genome resident — the steady-state throughput of a cache-backed search,
  // which is what repeated-seed experiments and the proposed flow's
  // re-evaluations actually see.
  const GaRun cached_cold = ga_run(cached_problem, params, seed);
  const util::CacheStats after_cold = cached_problem.fitness_cache_stats();
  const GaRun cached_warm = ga_run(cached_problem, params, seed);
  const util::CacheStats after_warm = cached_problem.fitness_cache_stats();

  // Raw evaluation throughput on the fixed batch: one pass fills the cache,
  // the measured passes run against a warm cache (the steady state a
  // cache-backed search converges to).
  std::vector<moea::Evaluation> evals_cached(batch.size());
  eval_batch_rate(cached_problem.ops(), batch, evals_cached, 1);
  const double batch_cached =
      eval_batch_rate(cached_problem.ops(), batch, evals_cached, reps);
  util::set_thread_count(0);
  bool batch_identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch_identical = batch_identical &&
                      evals_uncached[i].objectives == evals_cached[i].objectives &&
                      evals_uncached[i].violation == evals_cached[i].violation;
  }

  const util::CacheStats fitness = cached_problem.fitness_cache_stats();
  const util::CacheStats chain = reliability::chain_cache_stats();
  const double warm_hits =
      static_cast<double>(after_warm.hits - after_cold.hits);
  const double warm_lookups =
      static_cast<double>(after_warm.hits - after_cold.hits +
                          after_warm.misses - after_cold.misses);
  const double warm_hit_rate = warm_lookups > 0 ? warm_hits / warm_lookups : 0;
  const double cold_rate = static_cast<double>(cached_cold.evaluations) /
                           cached_cold.seconds;
  const double cached_rate = static_cast<double>(cached_warm.evaluations) /
                             cached_warm.seconds;
  const double cache_speedup = batch_cached / batch_uncached;
  const bool cache_identical = batch_identical &&
                               cached_cold.front == parallel.front &&
                               cached_warm.front == parallel.front &&
                               cached_cold.evaluations == parallel.evaluations &&
                               cached_warm.evaluations == parallel.evaluations;
  std::printf(
      "cache, raw evaluation: uncached %.0f genomes/s, warm cached %.0f "
      "genomes/s (%.2fx)\n",
      batch_uncached, batch_cached, cache_speedup);
  std::printf(
      "cache, whole GA: uncached %.0f genomes/s, cached cold %.0f genomes/s "
      "(%.2fx, hit rate %.1f%%), warm %.0f genomes/s (%.2fx, hit rate "
      "%.1f%%), %llu evictions, results %s\n",
      parallel_rate, cold_rate, cold_rate / parallel_rate,
      100.0 * after_cold.hit_rate(), cached_rate, cached_rate / parallel_rate,
      100.0 * warm_hit_rate,
      static_cast<unsigned long long>(fitness.evictions),
      cache_identical ? "identical" : "DIVERGED");
  std::printf(
      "chain-solve cache: table build cold %.3f ms, warm %.3f ms (%.2fx), "
      "hit rate %.1f%%\n",
      table_cold * 1e3, table_warm * 1e3, table_cold / table_warm,
      100.0 * chain.hit_rate());

  util::JsonObject report;
  report["benchmark"] = "eval_throughput";
  report["application"] = "sobel";
  report["mode"] = "fcCLR";
  report["population"] = params.population_size;
  report["generations"] = params.generations;
  report["threads"] = threads;
  report["evaluations"] = serial.evaluations;
  report["eval_seconds_serial"] = serial.seconds;
  report["eval_seconds_parallel"] = parallel.seconds;
  report["genomes_per_sec_serial"] = serial_rate;
  report["genomes_per_sec_parallel"] = parallel_rate;
  report["eval_speedup"] = parallel_rate / serial_rate;
  report["table_build_seconds_serial"] = table_serial;
  report["table_build_seconds_parallel"] = table_parallel;
  report["table_build_speedup"] = table_serial / table_parallel;
  report["deterministic"] = identical;
  report["cache_capacity"] = cache_entries;
  report["eval_batch_size"] = batch.size();
  report["eval_batch_genomes_per_sec_uncached"] = batch_uncached;
  report["eval_batch_genomes_per_sec_cached"] = batch_cached;
  report["cache_speedup"] = cache_speedup;
  report["genomes_per_sec_uncached"] = parallel_rate;
  report["genomes_per_sec_cached_cold"] = cold_rate;
  report["genomes_per_sec_cached"] = cached_rate;
  report["ga_cache_speedup_cold"] = cold_rate / parallel_rate;
  report["ga_cache_speedup"] = cached_rate / parallel_rate;
  report["fitness_cache_hit_rate_cold"] = after_cold.hit_rate();
  report["fitness_cache_hit_rate"] = warm_hit_rate;
  report["fitness_cache_hits"] = static_cast<std::size_t>(fitness.hits);
  report["fitness_cache_misses"] = static_cast<std::size_t>(fitness.misses);
  report["fitness_cache_evictions"] =
      static_cast<std::size_t>(fitness.evictions);
  report["chain_cache_hit_rate"] = chain.hit_rate();
  report["table_build_seconds_cached_cold"] = table_cold;
  report["table_build_seconds_cached_warm"] = table_warm;
  report["table_build_cache_speedup"] = table_cold / table_warm;
  report["cache_deterministic"] = cache_identical;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return (identical && cache_identical) ? 0 : 1;
}
