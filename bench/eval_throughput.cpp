// Eval-throughput benchmark for the parallel evaluation engine: NSGA-II
// fitness throughput (genomes/sec) and the dense Markov-table build of
// ClrMappingProblem, serial (1 thread) vs the configured thread count, on
// the paper's Sobel fcCLR problem. Emits BENCH_eval.json so the perf
// trajectory is tracked across PRs; docs/PERFORMANCE.md explains the
// fields. The serial and parallel fronts are cross-checked — a speedup that
// changed the search would be a bug, not a result.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Wall time of one fcCLR problem construction (dominated by
/// build_full_config_tables), best of `reps`.
double table_build_seconds(const app::Application& application,
                           const platform::Architecture& arch,
                           const reliability::TaskAnalyzer& analyzer,
                           int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const core::ClrMappingProblem problem(application, arch, analyzer,
                                          core::SystemObjectives{},
                                          sched::QosSpec{});
    best = std::min(best, seconds_since(start));
  }
  return best;
}

struct GaRun {
  double seconds = 0.0;
  std::size_t evaluations = 0;
  std::vector<moea::Objectives> front;
};

GaRun ga_run(const core::ClrMappingProblem& problem,
             const moea::Nsga2Params& params, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto start = Clock::now();
  const auto result = moea::run_nsga2(params, problem.ops(), rng);
  GaRun run;
  run.seconds = seconds_since(start);
  run.evaluations = result.evaluations;
  run.front = result.front_objectives();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_eval_throughput",
                       "NSGA-II fitness and Markov-table-build throughput, "
                       "serial vs parallel (emits BENCH_eval.json)");
  args.option("population", "GA population size", "100")
      .option("generations", "GA generations", "60")
      .option("seed", "GA seed", "11")
      .option("out", "output JSON path", "BENCH_eval.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  moea::Nsga2Params params;
  params.population_size = args.get_uint("population");
  params.generations = args.get_uint("generations");
  if (core::fast_mode()) {
    params.population_size = std::min<std::size_t>(params.population_size, 24);
    params.generations = std::min<std::size_t>(params.generations, 10);
  }
  const std::uint64_t seed = args.get_uint("seed");
  const std::size_t threads = util::effective_thread_count();

  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer =
      reliability::TaskAnalyzer::paper_default();

  std::printf("=== eval throughput: sobel fcCLR, pop %zu x %zu generations ===\n",
              params.population_size, params.generations);
  std::printf("threads: serial 1 vs parallel %zu\n\n", threads);

  // ---- Markov-table build (ClrMappingProblem construction) ----
  const int reps = core::fast_mode() ? 2 : 5;
  util::set_thread_count(1);
  const double table_serial = table_build_seconds(sobel, arch, analyzer, reps);
  util::set_thread_count(threads);
  const double table_parallel =
      table_build_seconds(sobel, arch, analyzer, reps);
  std::printf("table build: serial %.3f ms, %zu threads %.3f ms (%.2fx)\n",
              table_serial * 1e3, threads, table_parallel * 1e3,
              table_serial / table_parallel);

  // ---- NSGA-II fitness throughput ----
  util::set_thread_count(1);
  const core::ClrMappingProblem problem(sobel, arch, analyzer,
                                        core::SystemObjectives{},
                                        sched::QosSpec{});
  const GaRun serial = ga_run(problem, params, seed);
  util::set_thread_count(threads);
  const GaRun parallel = ga_run(problem, params, seed);
  util::set_thread_count(0);

  const double serial_rate = static_cast<double>(serial.evaluations) /
                             serial.seconds;
  const double parallel_rate = static_cast<double>(parallel.evaluations) /
                               parallel.seconds;
  const bool identical = serial.front == parallel.front &&
                         serial.evaluations == parallel.evaluations;
  std::printf(
      "nsga2: serial %.0f genomes/s, %zu threads %.0f genomes/s (%.2fx), "
      "%zu evaluations, fronts %s\n",
      serial_rate, threads, parallel_rate, parallel_rate / serial_rate,
      serial.evaluations, identical ? "identical" : "DIVERGED");

  util::JsonObject report;
  report["benchmark"] = "eval_throughput";
  report["application"] = "sobel";
  report["mode"] = "fcCLR";
  report["population"] = params.population_size;
  report["generations"] = params.generations;
  report["threads"] = threads;
  report["evaluations"] = serial.evaluations;
  report["eval_seconds_serial"] = serial.seconds;
  report["eval_seconds_parallel"] = parallel.seconds;
  report["genomes_per_sec_serial"] = serial_rate;
  report["genomes_per_sec_parallel"] = parallel_rate;
  report["eval_speedup"] = parallel_rate / serial_rate;
  report["table_build_seconds_serial"] = table_serial;
  report["table_build_seconds_parallel"] = table_parallel;
  report["table_build_speedup"] = table_serial / table_parallel;
  report["deterministic"] = identical;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return identical ? 0 : 1;
}
