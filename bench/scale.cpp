// Scaling benchmark for the island-model NSGA-II layer (docs/SCALING.md):
// fcCLR on synthetic TGFF graphs at 500/1000/2000 tasks, single population
// vs 4 islands at the *same* logical evaluation budget (pop x gens; island
// migration copies evaluated individuals, it never re-evaluates). For each
// configuration the per-generation/per-epoch progress hook records true
// hypervolume-vs-evaluations (and vs wall-clock) curves under a reference
// point shared by both runs, so the JSON answers the two questions that
// matter at scale:
//   * throughput — total wall-clock at equal budget (wall_ratio_equal_budget)
//   * convergence — wall-clock for the island run to first match the
//     single-population run's final hypervolume (speedup_wall_to_single_hv),
//     the Quan & Pimentel bias-elitist effect the island model exists for.
// Emits BENCH_scale.json; scripts/check_bench.py validates the schema and
// soft-gates the headline speedup, scripts/plot_results.py renders the
// curves. The smallest size also cross-checks that --islands 1 through the
// island entry point is bit-identical to the plain run_nsga2 path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "app/characterizer.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "core/heuristics.hpp"
#include "moea/hypervolume.hpp"
#include "moea/island.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kAppSeedBase = 900;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CurvePoint {
  std::size_t evaluations = 0;
  double wall_seconds = 0.0;
  std::vector<moea::Objectives> front;  ///< feasible first front at snapshot
  double hypervolume = 0.0;             ///< filled once the reference is known
};

struct ScaleRun {
  double wall_seconds = 0.0;
  std::size_t evaluations = 0;
  std::vector<CurvePoint> curve;
};

/// One timed fcCLR search. The problem (Markov-table construction) is built
/// outside the timed region — construction cost is identical for both
/// configurations and is reported separately by bench_eval_throughput — so
/// the clock measures the search itself.
ScaleRun timed_run(const core::DseMethodology& methodology,
                   core::DseOptions options, std::size_t islands) {
  options.island.islands = islands;
  const core::ClrMappingProblem problem =
      methodology.build_fcclr_problem(options);
  ScaleRun run;
  Clock::time_point start;  // set immediately before the search below
  options.ga.on_generation = [&](const moea::GenerationProgress& progress) {
    CurvePoint point;
    point.evaluations = progress.evaluations;
    point.wall_seconds = seconds_since(start);
    if (progress.front_points) point.front = *progress.front_points;
    run.curve.push_back(std::move(point));
  };
  start = Clock::now();
  const core::DseOutcome outcome = methodology.run_fcclr(options, problem);
  run.wall_seconds = seconds_since(start);
  run.evaluations = outcome.evaluations;
  return run;
}

/// Cross-check that run_island_nsga2 with islands == 1 reproduces the plain
/// run_nsga2 path bit for bit (same seeding, same RNG stream): identical
/// evaluation counts and identical final front objective vectors.
bool islands1_bit_identical(const core::DseMethodology& methodology,
                            const core::DseOptions& options) {
  const core::ClrMappingProblem problem =
      methodology.build_fcclr_problem(options);
  const auto ops = problem.ops(options.ga.mutation_indpb);
  std::vector<core::MappingGenome> seeds;
  seeds.push_back(core::heft_clr_mapping(problem).genome);

  util::Rng direct_rng(options.seed);
  const auto direct =
      moea::run_nsga2(options.ga, ops, direct_rng, {seeds[0]});

  moea::IslandParams single;
  single.islands = 1;
  util::Rng island_rng(options.seed);
  const auto via_island = moea::run_island_nsga2(options.ga, single, ops,
                                                 island_rng, std::move(seeds));
  if (direct.evaluations != via_island.evaluations) return false;
  if (direct.front_objectives() != via_island.front_objectives()) return false;
  return true;
}

util::JsonValue curve_json(const std::vector<CurvePoint>& curve) {
  util::JsonArray out;
  for (const CurvePoint& point : curve) {
    out.push_back(util::JsonValue(
        util::JsonObject{{"evaluations", point.evaluations},
                         {"wall_seconds", point.wall_seconds},
                         {"front_size", point.front.size()},
                         {"hypervolume", point.hypervolume}}));
  }
  return util::JsonValue(std::move(out));
}

util::JsonValue run_json(const ScaleRun& run, double final_hv) {
  return util::JsonValue(
      util::JsonObject{{"wall_seconds", run.wall_seconds},
                       {"evaluations", run.evaluations},
                       {"hypervolume", final_hv},
                       {"curve", curve_json(run.curve)}});
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_scale",
                       "island-model NSGA-II scaling on 500/1000/2000-task "
                       "TGFF graphs (emits BENCH_scale.json)");
  args.option("population", "GA population size (shared by both configs)",
              "256")
      .option("generations", "GA generations (shared by both configs)", "60")
      .option("compare-islands", "island count of the sharded configuration",
              "4")
      .option("tasks", "comma-separated TGFF graph sizes", "500,1000,2000")
      .option("seed", "GA seed", "11")
      .flag("no-heuristic-seed",
            "start from random populations instead of the HEFT design")
      .option("out", "output JSON path", "BENCH_scale.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  moea::Nsga2Params ga;
  ga.population_size = args.get_uint("population");
  ga.generations = args.get_uint("generations");
  std::vector<std::size_t> sizes;
  {
    const std::string& csv = args.get("tasks");
    std::size_t begin = 0;
    while (begin <= csv.size()) {
      const std::size_t comma = std::min(csv.find(',', begin), csv.size());
      if (comma > begin) {
        sizes.push_back(std::stoul(csv.substr(begin, comma - begin)));
      }
      begin = comma + 1;
    }
    if (sizes.empty()) {
      std::fprintf(stderr, "bench_scale: --tasks lists no sizes\n");
      return 2;
    }
  }
  if (core::fast_mode()) {
    // CI smoke: one 500-task graph with a budget small enough for seconds.
    sizes = {500};
    ga.population_size = std::min<std::size_t>(ga.population_size, 24);
    ga.generations = std::min<std::size_t>(ga.generations, 10);
  }
  const std::size_t compare_islands = args.get_uint("compare-islands");
  // The island run migrates at the interval/size set by the standard
  // --migration-interval/--migration-size options; the bench defaults to a
  // denser exchange than the CLI (every 5 generations, 16 emigrants) — the
  // best convergence-per-wall configuration from the docs/SCALING.md scan —
  // which also gives the epoch curves enough points.
  moea::IslandParams migration = moea::island_params_from_args(args);
  if (!args.has("migration-interval")) migration.migration_interval = 5;
  if (!args.has("migration-size")) migration.migration_size = 16;

  core::DseOptions options;
  options.ga = ga;
  options.island = migration;
  options.seed = args.get_uint("seed");
  // Both configs start from the HEFT design unless disabled.
  options.heuristic_seed = !args.has("no-heuristic-seed");

  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer =
      reliability::TaskAnalyzer::paper_default();

  std::printf(
      "=== scale: fcCLR, pop %zu x %zu generations, 1 vs %zu islands "
      "(migration every %zu gens, %zu emigrants) ===\n",
      ga.population_size, ga.generations, compare_islands,
      migration.migration_interval, migration.migration_size);

  util::JsonArray size_reports;
  bool bit_identical = true;
  double headline_speedup = 0.0;
  double headline_hv_ratio = 0.0;
  for (std::size_t tasks : sizes) {
    const app::Application application =
        app::make_synthetic_application(tasks, 10, kAppSeedBase + tasks);
    const core::DseMethodology methodology(application, arch, analyzer);

    if (tasks == sizes.front()) {
      bit_identical = islands1_bit_identical(methodology, options);
    }

    const ScaleRun single = timed_run(methodology, options, 1);
    const ScaleRun sharded = timed_run(methodology, options, compare_islands);

    // Hypervolume under one reference shared by every snapshot of both
    // runs, so curve points and final fronts are directly comparable.
    std::vector<std::vector<moea::Objectives>> fronts;
    for (const ScaleRun* run : {&single, &sharded}) {
      for (const CurvePoint& point : run->curve) {
        if (!point.front.empty()) fronts.push_back(point.front);
      }
    }
    const moea::Objectives reference = moea::common_reference(fronts);
    auto fill_hv = [&](ScaleRun& run) {
      for (CurvePoint& point : run.curve) {
        if (!point.front.empty()) {
          point.hypervolume = moea::hypervolume(point.front, reference);
        }
      }
    };
    ScaleRun single_hv = single;
    ScaleRun sharded_hv = sharded;
    fill_hv(single_hv);
    fill_hv(sharded_hv);
    const double hv_single = single_hv.curve.back().hypervolume;
    const double hv_sharded = sharded_hv.curve.back().hypervolume;

    // Convergence speedup: first island-run snapshot whose hypervolume
    // matches the single-population run's final front.
    double time_to_single_hv = -1.0;
    std::size_t evals_to_single_hv = 0;
    for (const CurvePoint& point : sharded_hv.curve) {
      if (point.hypervolume >= hv_single) {
        time_to_single_hv = point.wall_seconds;
        evals_to_single_hv = point.evaluations;
        break;
      }
    }
    const double wall_ratio = single.wall_seconds / sharded.wall_seconds;
    const double speedup = time_to_single_hv > 0.0
                               ? single.wall_seconds / time_to_single_hv
                               : 0.0;
    const double hv_ratio = hv_single > 0.0 ? hv_sharded / hv_single : 0.0;
    const bool equal_budget = single.evaluations == sharded.evaluations;

    std::printf(
        "%zu tasks: single %.2fs (%zu evals, hv %.4g) | %zu islands %.2fs "
        "(hv %.4g, ratio %.3f) | matched single's hv at %s | speedup %.2fx, "
        "budget %s\n",
        tasks, single.wall_seconds, single.evaluations, hv_single,
        compare_islands, sharded.wall_seconds, hv_sharded, hv_ratio,
        time_to_single_hv > 0.0
            ? (std::to_string(time_to_single_hv) + "s").c_str()
            : "never",
        speedup, equal_budget ? "equal" : "UNEQUAL");

    if (tasks == 1000 || sizes.size() == 1) {
      headline_speedup = speedup;
      headline_hv_ratio = hv_ratio;
    }

    size_reports.push_back(util::JsonValue(util::JsonObject{
        {"tasks", tasks},
        {"single", run_json(single_hv, hv_single)},
        {"islands", run_json(sharded_hv, hv_sharded)},
        {"equal_budget", equal_budget},
        {"wall_ratio_equal_budget", wall_ratio},
        {"hv_ratio", hv_ratio},
        {"time_to_single_hv_seconds", time_to_single_hv},
        {"evaluations_to_single_hv", evals_to_single_hv},
        {"speedup_wall_to_single_hv", speedup}}));
  }

  util::JsonObject report;
  report["benchmark"] = "scale";
  report["flow"] = "fcCLR";
  report["population"] = ga.population_size;
  report["generations"] = ga.generations;
  report["islands"] = compare_islands;
  report["migration_interval"] = migration.migration_interval;
  report["migration_size"] = migration.migration_size;
  report["seed"] = options.seed;
  report["fast_mode"] = core::fast_mode();
  report["islands1_bit_identical"] = bit_identical;
  report["speedup_wall_to_single_hv"] = headline_speedup;
  report["hv_ratio"] = headline_hv_ratio;
  report["sizes"] = std::move(size_reports);

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return bit_identical ? 0 : 1;
}
