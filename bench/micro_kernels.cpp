// Micro-benchmarks (google-benchmark) for the analytical kernels behind the
// "early-stage exploration" claim: one CLR Markov-chain evaluation, one full
// task-metric evaluation, list scheduling, QoS estimation, a whole NSGA-II
// generation, hypervolume computation and task-graph generation.
//
// These document that a single fitness evaluation costs microseconds —
// which is what makes the multi-stage GA flows tractable on a laptop.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "app/tgff.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace clrearly;

void BM_MarkovClrChainAnalyze(benchmark::State& state) {
  reliability::ClrChainParams params;
  params.exec_time_us = 1000.0;
  params.lambda_per_us = 3e-4;
  params.hw_masking = 0.7;
  params.detection_coverage = 0.92;
  params.tolerance_success = 0.98;
  params.asw_masking = 0.6;
  params.intervals = static_cast<std::size_t>(state.range(0));
  params.detection_time_us = 10.0;
  params.tolerance_time_us = 20.0;
  params.checkpoint_time_us = 30.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reliability::analyze_clr_chain(params));
  }
}
BENCHMARK(BM_MarkovClrChainAnalyze)->Arg(1)->Arg(2)->Arg(4);

void BM_TaskAnalyzerEvaluate(benchmark::State& state) {
  const reliability::TaskAnalyzer analyzer =
      reliability::TaskAnalyzer::paper_default();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const app::Application sobel = app::make_sobel_application();
  const reliability::ClrConfig config{2, 2, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyzer.evaluate(sobel.impls[0][0], arch.type(0), config));
  }
}
BENCHMARK(BM_TaskAnalyzerEvaluate);

void BM_ListSchedule(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const app::Application syn = app::make_synthetic_application(n, 10, 7);
  util::Rng rng(1);
  std::vector<sched::TaskAssignment> assignments(n);
  for (auto& a : assignments) {
    a.pe = rng.index(6);
    a.exec_time_us = rng.uniform(100.0, 1000.0);
    a.power_w = 0.4;
  }
  const auto order = moea::random_permutation(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::list_schedule(syn.graph, assignments, order, 6));
  }
}
BENCHMARK(BM_ListSchedule)->Arg(10)->Arg(50)->Arg(100);

void BM_FitnessEvaluation(benchmark::State& state) {
  // One full fcCLR fitness evaluation: decode + schedule + TABLE III.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const app::Application syn = app::make_synthetic_application(n, 10, 7);
  const core::ClrMappingProblem problem(
      syn, platform::Architecture::paper_default(),
      core::bench_system_analyzer(), core::SystemObjectives{},
      sched::QosSpec{});
  util::Rng rng(2);
  const core::MappingGenome genome = problem.layout().random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate(genome));
  }
}
BENCHMARK(BM_FitnessEvaluation)->Arg(10)->Arg(50)->Arg(100);

void BM_Nsga2Generation(benchmark::State& state) {
  // Cost of one generation = one run with generations=1 minus init; we
  // simply time a 1-generation run (init included, amortized note applies).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const app::Application syn = app::make_synthetic_application(n, 10, 7);
  const core::DseMethodology dse(syn, platform::Architecture::paper_default(),
                                 core::bench_system_analyzer());
  core::DseOptions options = core::bench_options(3);
  options.ga.population_size = 100;
  options.ga.generations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse.run_fcclr(options));
  }
}
BENCHMARK(BM_Nsga2Generation)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Hypervolume(benchmark::State& state) {
  const std::size_t points = static_cast<std::size_t>(state.range(0));
  const std::size_t dims = static_cast<std::size_t>(state.range(1));
  util::Rng rng(4);
  std::vector<moea::Objectives> front;
  for (std::size_t i = 0; i < points; ++i) {
    moea::Objectives p(dims);
    for (double& x : p) x = rng.uniform();
    front.push_back(p);
  }
  const moea::Objectives ref(dims, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moea::hypervolume(front, ref));
  }
}
BENCHMARK(BM_Hypervolume)->Args({50, 2})->Args({50, 3})->Args({30, 5});

void BM_TgffGenerate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  app::TgffOptions options;
  options.num_tasks = n;
  for (auto _ : state) {
    util::Rng rng(5);
    benchmark::DoNotOptimize(app::generate_tgff_graph(options, rng));
  }
}
BENCHMARK(BM_TgffGenerate)->Arg(20)->Arg(100);

void BM_TdseEnumerate(benchmark::State& state) {
  const core::Tdse tdse(reliability::TaskAnalyzer::paper_default());
  const platform::Architecture arch = platform::Architecture::paper_default();
  const app::Application sobel = app::make_sobel_application();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdse.enumerate(sobel.impls[0], arch));
  }
}
BENCHMARK(BM_TdseEnumerate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::set_log_level(clrearly::util::LogLevel::Warn);
  // Honour the shared --threads flag (google-benchmark owns the remaining
  // argv, so strip ours before benchmark::Initialize sees it).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      clrearly::util::set_thread_count(std::stoul(argv[++i]));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      clrearly::util::set_thread_count(std::stoul(arg + 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
