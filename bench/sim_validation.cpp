// Monte Carlo validation of the analytic QoS pipeline: run the three DSE
// flows (fcCLR, pfCLR, proposed) on the seed scenario, then simulate every
// Pareto-front design point end-to-end with src/sim and compare the
// simulated makespan / error probability / energy against the analytic
// QosMetrics the search optimized. Also cross-checks the simulator's
// determinism contract: a 10k-trial run must be bit-identical at 1 and 4
// threads. Emits BENCH_sim.json (fields explained in docs/SIMULATION.md);
// the exit code gates on determinism and on >= 90% analytic/simulated
// agreement across the fronts.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "core/sim_bridge.hpp"
#include "platform/architecture.hpp"
#include "sim/validate.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace clrearly;

struct FlowFront {
  std::string name;
  std::vector<core::MappingGenome> genomes;
  /// Problem in the same genome encoding as `genomes`.
  std::shared_ptr<const core::ClrMappingProblem> problem;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_sim_validation",
                       "Monte Carlo simulation vs analytic QoS across the "
                       "DSE flows' Pareto fronts (emits BENCH_sim.json)");
  args.option("trials", "Monte Carlo trials per design point", "10000")
      .option("sim-seed", "simulator seed", "7")
      .option("seed", "GA seed", "11")
      .option("out", "output JSON path", "BENCH_sim.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  const bool fast = core::fast_mode();
  const std::size_t trials =
      fast ? std::min<std::size_t>(args.get_uint("trials"), 2000)
           : args.get_uint("trials");
  const std::uint64_t sim_seed = args.get_uint("sim-seed");

  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer = core::bench_system_analyzer();
  const core::DseMethodology dse(sobel, arch, analyzer);
  core::DseOptions options = core::bench_options(args.get_uint("seed"));

  std::printf("=== sim validation: sobel, %zu trials/point ===\n", trials);

  // One shared tDSE feeds pfCLR and keeps its Pareto points identical to
  // the ones the pfCLR problem must decode against.
  const std::vector<core::TdseResult> tdse = dse.run_tdse(options);
  std::vector<std::vector<core::TaskDesignPoint>> points;
  points.reserve(tdse.size());
  for (const core::TdseResult& r : tdse) points.push_back(r.pareto);

  const auto fc_problem = std::make_shared<const core::ClrMappingProblem>(
      sobel, arch, analyzer, options.objectives, options.spec);
  const auto pf_problem = std::make_shared<const core::ClrMappingProblem>(
      sobel, arch, analyzer, options.objectives, options.spec,
      std::move(points));

  std::vector<FlowFront> fronts;
  {
    core::DseOutcome outcome = dse.run_fcclr(options);
    fronts.push_back({"fcclr", std::move(outcome.front_genomes), fc_problem});
  }
  {
    core::DseOutcome outcome = dse.run_pfclr(options, tdse);
    fronts.push_back({"pfclr", std::move(outcome.front_genomes), pf_problem});
  }
  {
    core::DseOutcome outcome = dse.run_proposed(options, tdse);
    fronts.push_back(
        {"proposed", std::move(outcome.front_genomes), fc_problem});
  }

  sim::ValidationReport report;
  util::JsonObject flows_json;
  for (const FlowFront& front : fronts) {
    sim::ValidationReport flow_report;
    for (std::size_t i = 0; i < front.genomes.size(); ++i) {
      const core::MappingGenome& genome = front.genomes[i];
      const sched::QosMetrics analytic = front.problem->qos(genome);

      sim::SimOptions sim_options;
      sim_options.trials = trials;
      sim_options.seed = sim_seed;
      // Deadline one analytic sigma past the mean: exercises the per-trial
      // miss accounting in a regime where both estimates are non-trivial.
      sim_options.deadline_us =
          analytic.makespan_us + analytic.makespan_stddev_us;

      const sim::SimResult simulated =
          core::simulate_design_point(*front.problem, genome, sim_options);
      flow_report.rows.push_back(sim::compare_design_point(
          front.name + "#" + std::to_string(i), analytic, simulated));
    }
    std::printf(
        "%-9s %2zu points: makespan agreement %.0f%%, error agreement "
        "%.0f%%\n",
        front.name.c_str(), flow_report.rows.size(),
        100.0 * flow_report.makespan_agreement(),
        100.0 * flow_report.error_agreement());
    flows_json[front.name] = sim::validation_report_json(flow_report);
    for (sim::ValidationRow& row : flow_report.rows) {
      report.rows.push_back(std::move(row));
    }
  }

  // ---- Determinism: 10k trials, 1 thread vs 4 threads, bit-identical ----
  bool deterministic = true;
  double serial_rate = 0.0;
  double parallel_rate = 0.0;
  if (!report.rows.empty() && !fronts.front().genomes.empty()) {
    sim::SimOptions sim_options;
    sim_options.trials = 10000;
    sim_options.seed = sim_seed;
    const core::ClrMappingProblem& problem = *fronts.front().problem;
    const core::MappingGenome& genome = fronts.front().genomes.front();
    util::set_thread_count(1);
    const sim::SimResult serial =
        core::simulate_design_point(problem, genome, sim_options);
    util::set_thread_count(4);
    const sim::SimResult parallel =
        core::simulate_design_point(problem, genome, sim_options);
    util::set_thread_count(0);
    deterministic = sim::sim_results_identical(serial, parallel);
    serial_rate = serial.trials_per_sec;
    parallel_rate = parallel.trials_per_sec;
    std::printf(
        "determinism (10k trials, 1 vs 4 threads): %s (%.0f vs %.0f "
        "trials/s)\n",
        deterministic ? "identical" : "DIVERGED", serial_rate, parallel_rate);
  }

  const double agreement = report.agreement();
  const bool agrees = agreement >= 0.9;
  std::printf("overall: %zu design points, %.0f%% full agreement%s\n",
              report.rows.size(), 100.0 * agreement,
              agrees ? "" : "  [BELOW 90% TARGET]");

  util::JsonObject out_json;
  out_json["benchmark"] = "sim_validation";
  out_json["application"] = "sobel";
  out_json["trials_per_point"] = trials;
  out_json["sim_seed"] = sim_seed;
  out_json["flows"] = std::move(flows_json);
  out_json["design_points"] = report.rows.size();
  out_json["makespan_agreement"] = report.makespan_agreement();
  out_json["error_agreement"] = report.error_agreement();
  out_json["agreement"] = agreement;
  out_json["deterministic"] = deterministic;
  out_json["trials_per_sec_serial"] = serial_rate;
  out_json["trials_per_sec_parallel"] = parallel_rate;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(out_json))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return (deterministic && agrees) ? 0 : 1;
}
