// Ablation studies for the design choices DESIGN.md calls out — not paper
// tables, but the evidence behind the methodology's moving parts:
//
//   A. Seeding:       proposed (pfCLR-seeded fcCLR) vs the same two-stage
//                     budget *without* seeding (pfCLR discarded, cold fcCLR
//                     with doubled generations). Isolates the value of the
//                     directed search, the paper's Fig. 4b arrow.
//   B. Pruning:       pfCLR vs fcCLR at equal GA budget — the value of the
//                     task-level Pareto filtering alone.
//   C. Communication: fronts with the interconnect model off vs on
//                     (the paper's future-work extension) — mapping
//                     decisions shift toward co-location, makespans rise.
//   D. Stochastic tDSE: brute-force vs GA-based task-level DSE — front
//                     quality retained vs configurations evaluated.
//   E. Checkpointing: optimal checkpoint count vs fault rate — the classic
//                     placement trade-off answered by the same chains.
#include <cstdio>
#include <iostream>

#include "app/characterizer.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "util/csv.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

constexpr std::uint64_t kAppSeedBase = 1000;

double hv_of(const std::vector<moea::Objectives>& front,
             const moea::Objectives& ref) {
  return front.empty() ? 0.0 : moea::hypervolume(front, ref);
}

void ablation_seeding_and_pruning() {
  std::printf("=== Ablation A+B: seeding and pruning value ===\n");
  util::TextTable table;
  table.header({"#Tasks", "fcCLR hv", "fcCLR-2x hv", "pfCLR hv",
                "proposed hv", "seeding gain %", "pruning gain %"});

  for (std::size_t tasks : {20u, 50u}) {
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, kAppSeedBase + tasks);
    const core::DseMethodology dse(syn,
                                   platform::Architecture::paper_default(),
                                   core::bench_system_analyzer());
    const core::DseOptions options = core::bench_options(11);

    // Cold fcCLR with the proposed flow's full evaluation budget (2x gens).
    core::DseOptions doubled = options;
    doubled.ga.generations = options.ga.generations * 2;

    const auto tdse = dse.run_tdse(options);
    const auto fc = dse.run_fcclr(options);
    const auto fc2 = dse.run_fcclr(doubled);
    const auto pf = dse.run_pfclr(options, tdse);
    const auto prop = dse.run_proposed(options, tdse);

    const auto ref = moea::common_reference(
        {fc.front, fc2.front, pf.front, prop.front});
    const double h_fc = hv_of(fc.front, ref);
    const double h_fc2 = hv_of(fc2.front, ref);
    const double h_pf = hv_of(pf.front, ref);
    const double h_prop = hv_of(prop.front, ref);

    // Seeding gain: proposed vs equal-budget unseeded fcCLR.
    const double seeding =
        h_fc2 > 0.0 ? 100.0 * (h_prop - h_fc2) / h_fc2 : 0.0;
    // Pruning gain: pfCLR vs equal-budget fcCLR.
    const double pruning = h_fc > 0.0 ? 100.0 * (h_pf - h_fc) / h_fc : 0.0;

    table.row(tasks, h_fc, h_fc2, h_pf, h_prop, seeding, pruning);
  }
  table.print(std::cout);
  std::printf("\n");
}

void ablation_communication() {
  std::printf("=== Ablation C: communication-aware extension ===\n");
  util::TextTable table;
  table.header({"interconnect", "front", "fastest (us)", "min err",
                "cross-PE edges of fastest"});

  const app::Application syn =
      app::make_synthetic_application(20, 10, kAppSeedBase + 20);
  const core::DseOptions options = core::bench_options(11);

  const struct {
    const char* name;
    double bandwidth_kb_per_us;
    double latency_us;
  } variants[] = {
      {"off (paper base)", 0.0, 0.0},
      {"fast (8 GB/s)", 8.0, 0.5},
      {"slow (0.5 GB/s)", 0.5, 3.0},
  };

  for (const auto& v : variants) {
    platform::Architecture arch = platform::Architecture::paper_default();
    platform::Interconnect icn;
    icn.bandwidth_kb_per_us = v.bandwidth_kb_per_us;
    icn.latency_us = v.latency_us;
    arch.set_interconnect(icn);

    const core::DseMethodology dse(arch.interconnect().models_communication()
                                       ? syn
                                       : syn,
                                   arch, core::bench_system_analyzer());
    const auto outcome = dse.run_proposed(options);
    if (outcome.front.empty()) {
      table.row(v.name, "0", "-", "-", "-");
      continue;
    }
    std::size_t fastest = 0;
    double fast = outcome.front[0][0], minerr = outcome.front[0][1];
    for (std::size_t i = 0; i < outcome.front.size(); ++i) {
      if (outcome.front[i][0] < fast) {
        fast = outcome.front[i][0];
        fastest = i;
      }
      minerr = std::min(minerr, outcome.front[i][1]);
    }

    // Count dependency edges crossing PEs in the fastest design.
    const core::ClrMappingProblem problem(
        syn, arch, core::bench_system_analyzer(), options.objectives,
        options.spec);
    const auto decisions = problem.decode(outcome.front_genomes[fastest]);
    std::size_t cross = 0;
    for (const app::Edge& e : syn.graph.edges()) {
      if (decisions[e.src].pe != decisions[e.dst].pe) ++cross;
    }
    table.row(v.name, outcome.front.size(), fast, minerr,
              std::to_string(cross) + "/" +
                  std::to_string(syn.graph.num_edges()));
  }
  table.print(std::cout);
  std::printf("(slower interconnects raise makespans and push the optimizer "
              "toward co-location)\n\n");
}

void ablation_stochastic_tdse() {
  std::printf("=== Ablation D: brute-force vs GA-based tDSE ===\n");
  const core::Tdse tdse(core::bench_system_analyzer());
  const platform::Architecture arch = platform::Architecture::paper_default();
  util::Rng rng(kAppSeedBase);
  const auto impls =
      app::characterize_types(4, app::CharacterizerOptions{}, rng);
  const core::TdseObjectives obj = core::TdseObjectives::tdse_run(1);

  util::TextTable table;
  table.header({"task type", "exact evals", "GA evals", "exact front",
                "GA front", "hv retained %"});
  for (std::size_t type = 0; type < 4; ++type) {
    const auto exact = tdse.run(impls[type], arch, obj);
    moea::Nsga2Params ga;
    ga.population_size = 40;
    ga.generations = 25;
    const auto approx =
        tdse.run_stochastic(impls[type], arch, obj, ga, 5 + type);

    auto vectors = [&](const std::vector<core::TaskDesignPoint>& pts) {
      std::vector<moea::Objectives> out;
      for (const auto& p : pts) out.push_back(obj.extract(p.metrics));
      return out;
    };
    const auto exact_front = vectors(exact.pareto);
    const auto approx_front = vectors(approx.pareto);
    const auto ref = moea::common_reference({exact_front, approx_front});
    const double retained = 100.0 * hv_of(approx_front, ref) /
                            hv_of(exact_front, ref);
    table.row("type" + std::to_string(type), exact.enumerated.size(),
              approx.enumerated.size(), exact.pareto.size(),
              approx.pareto.size(), retained);
  }
  table.print(std::cout);
  std::printf("\n");
}

void ablation_checkpoint_sweep() {
  std::printf("=== Ablation E: optimal checkpoint count vs fault rate ===\n");
  reliability::ClrChainParams params;
  params.exec_time_us = 1000.0;
  params.detection_coverage = 0.95;
  params.tolerance_success = 0.98;
  params.detection_time_us = 5.0;
  params.tolerance_time_us = 10.0;
  params.checkpoint_time_us = 20.0;

  util::TextTable table;
  table.header({"lambda (/us)", "best intervals", "avg time (us)",
                "vs 1 interval"});
  for (double lambda : {1e-5, 1e-4, 5e-4, 1e-3, 3e-3, 1e-2}) {
    params.lambda_per_us = lambda;
    const auto sweep =
        reliability::optimize_checkpoint_intervals(params, 10);
    const double single = sweep.avg_time_per_intervals.front();
    table.row(lambda, sweep.best_intervals, sweep.best_avg_time_us,
              util::format_compact(100.0 * (sweep.best_avg_time_us - single) /
                                   single) +
                  "%");
  }
  table.print(std::cout);
  std::printf("(higher fault rates justify more checkpoints — the classic "
              "trade-off, from the Fig. 3 chains)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("bench_ablations", "ablation studies: seeding, pruning, communication, stochastic tDSE, checkpoint sweep");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  ablation_seeding_and_pruning();
  ablation_communication();
  ablation_stochastic_tdse();
  ablation_checkpoint_sweep();
  return 0;
}
